#ifndef ITAG_ITAG_QUALITY_MANAGER_H_
#define ITAG_ITAG_QUALITY_MANAGER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "itag/ids.h"
#include "itag/notification.h"
#include "itag/project.h"
#include "itag/resource_manager.h"
#include "itag/tag_manager.h"
#include "itag/user_manager.h"
#include "quality/gain_estimator.h"
#include "quality/quality_model.h"
#include "storage/database.h"
#include "strategy/engine.h"

namespace itag::core {

/// One point in a project's live quality feed (the Fig. 5 chart).
struct QualityPoint {
  uint32_t tasks = 0;
  double quality = 0.0;
  Tick time = 0;
};

/// The Quality Manager of Fig. 2: receives the provider's budget, creates a
/// Project, "executes the best strategy to allocate resources to taggers",
/// constantly feeds quality information back, and lets the provider change
/// strategy, promote/stop individual resources, and top budget up mid-run.
class QualityManager {
 public:
  /// `db` (optional) enables write-through persistence: on a durable
  /// database every project mutation — spec, lifecycle state, engine
  /// counters, RNG position, promotions, stop flags, the quality feed and
  /// the notification inboxes — is written through, and Attach() rebuilds
  /// it all (corpora included, via the ResourceManager) on reopen.
  QualityManager(ResourceManager* resources, TagManager* tags,
                 UserManager* users, Clock* clock,
                 storage::Database* db = nullptr);

  /// Creates the backing tables (idempotent) and recovers every persisted
  /// project: corpus replay, record + engine rebuild, feed and inbox
  /// reload, and the project-id counter. No-op without a durable database.
  Status Attach();

  /// Number of projects (recovered ones included).
  size_t ProjectCount() const { return projects_.size(); }

  /// Creates a project in Draft state (and its corpus).
  Result<ProjectId> CreateProject(ProviderId provider,
                                  const ProjectSpec& spec);

  /// Project info snapshot (Fig. 3 row).
  Result<ProjectInfo> GetInfo(ProjectId project) const;

  /// All projects of one provider (or all when provider == SIZE_MAX),
  /// sorted by descending quality — the Fig. 3 listing order.
  std::vector<ProjectInfo> ListProjects(ProviderId provider) const;

  /// Starts (or resumes) task allocation. Requires at least one resource.
  Status Start(ProjectId project);

  /// Pauses allocation (ChooseNextTask refuses while paused).
  Status Pause(ProjectId project);

  /// Stops the project for good.
  Status Stop(ProjectId project);

  /// Adds budget (Fig. 3's "add budget to the project").
  Status AddBudget(ProjectId project, uint32_t tasks);

  /// Replaces the allocation strategy mid-run (Fig. 5).
  Status SwitchStrategy(ProjectId project, strategy::StrategyKind kind);

  /// Recommends a strategy from the current statistics: the paper's
  /// "we will help providers choose the best strategy given the current
  /// resources and tags statistics" (§III-A). Heuristic: if a substantial
  /// share of resources is still under-posted, FP-MU; otherwise MU.
  Result<strategy::StrategyKind> RecommendStrategy(ProjectId project) const;

  /// Recommends a platform for a resource kind — the paper's "scientific
  /// papers resources will highly likely be getting better tags with
  /// taggers from scientific communities other than MTurk" (§I): papers go
  /// to the community/social channel, mainstream media to the open market.
  static PlatformChoice RecommendPlatform(tagging::ResourceKind kind);

  /// §III-A Promote / Stop buttons on a single resource.
  Status PromoteResource(ProjectId project, tagging::ResourceId resource);
  Status StopResource(ProjectId project, tagging::ResourceId resource);
  Status ResumeResource(ProjectId project, tagging::ResourceId resource);

  /// Draws the next resource to task (the platform pump and the tagger UI
  /// both call this). Decrements budget. Fails while not Running.
  Result<tagging::ResourceId> ChooseNextTask(ProjectId project);

  /// Batched draw: up to `k` resources in one engine pass, amortizing the
  /// project lookup and state checks across the whole batch. Sequence-
  /// equivalent to `k` ChooseNextTask calls; may return fewer than `k`
  /// picks when the budget runs out mid-batch. Error statuses match
  /// ChooseNextTask (including the one-shot budget-exhausted notification).
  Result<std::vector<tagging::ResourceId>> ChooseTaskBatch(ProjectId project,
                                                           size_t k);

  /// Refunds one task of budget (rejected submission).
  Status RefundTask(ProjectId project);

  /// Records an approved post into corpus + storage, refreshes strategy
  /// state, appends to the quality feed, and emits notifications.
  Status CompletePost(ProjectId project, tagging::ResourceId resource,
                      tagging::Post post);

  /// Batched UPDATE(): records a whole tick's (or request's) worth of
  /// approved posts in one pass. Every post is linked and fed to the
  /// strategy individually (a failing post is skipped, not fatal to the
  /// rest — the returned statuses align with `posts`), but the O(corpus)
  /// quality-feed point and the new-tagging notification are emitted once
  /// per batch — the amortization that lets Step() pump heavy platform
  /// traffic. Quality-improved notifications still fire per resource.
  std::vector<Status> CompletePostBatch(
      ProjectId project,
      std::vector<std::pair<tagging::ResourceId, tagging::Post>> posts);

  /// Live quality feed (Fig. 5).
  const std::vector<QualityPoint>& QualityFeed(ProjectId project) const;

  /// Projected additional quality if the remaining budget is spent with the
  /// estimated-gain-optimal split (the "projected quality gains" shown
  /// while the provider picks a budget).
  Result<double> ProjectedGain(ProjectId project) const;

  /// Per-resource detail for Fig. 6: current quality and the posts so far.
  struct ResourceDetail {
    tagging::ResourceId resource = 0;
    uint32_t posts = 0;
    double quality = 0.0;
    double projected_gain_next_task = 0.0;
    bool stopped = false;
    std::vector<TagFrequency> top_tags;
  };
  Result<ResourceDetail> GetResourceDetail(ProjectId project,
                                           tagging::ResourceId resource) const;

  /// The provider's notification inbox.
  NotificationQueue& Notifications(ProviderId provider);

  /// The id the next CreateProject (or AdoptProject at the migration
  /// destination) will use. Shard migration reads this to pre-claim the
  /// destination slot before the copy lands.
  ProjectId next_project_id() const { return next_project_; }

  /// Serializes a project record into its storage-row form — the same row
  /// PersistProject writes, but produced regardless of persistence mode.
  /// Shard migration carries this row (plus the corpus transfer and the
  /// quality feed) to the destination shard.
  Result<storage::Row> EncodeProjectRow(ProjectId project) const;

  /// Installs a transferred project under `project` (which must be free,
  /// with its corpus already adopted): decodes the row, rebuilds the
  /// engine at the saved RNG position (running projects continue
  /// bit-exactly), installs the feed, and writes the project + feed rows
  /// through on durable databases.
  Status AdoptProject(ProjectId project, const storage::Row& row,
                      std::vector<QualityPoint> feed);

  /// Removes a project record and its persisted project/feed rows (the
  /// migration source's cleanup half). The corpus is dropped separately
  /// via ResourceManager::DropCorpus; notifications stay with the
  /// provider's inbox (they are history, not project state).
  Status DropProject(ProjectId project);

  /// Internal per-project record (exposed read-only for the facade).
  struct ProjectRec {
    ProviderId provider = 0;
    ProjectSpec spec;
    ProjectState state = ProjectState::kDraft;
    std::unique_ptr<strategy::AllocationEngine> engine;
    std::vector<QualityPoint> feed;
    uint32_t tasks_completed = 0;
    std::vector<uint8_t> stopped;  // provider's per-resource Stop flags
    bool exhausted_notified = false;  // de-dups budget-exhausted alerts
  };
  const ProjectRec* GetRec(ProjectId project) const;

 private:
  ProjectRec* Rec(ProjectId project);
  void EmitQualityPoint(ProjectId project, ProjectRec& rec);
  /// Pushes the one-shot budget-exhausted notification when `status` says so.
  void NotifyIfExhausted(ProjectId project, ProjectRec* rec,
                         const Status& status);

  /// True when mutations must be written through to storage.
  bool persist() const { return db_ != nullptr && db_->durable(); }
  /// Writes the project row (spec, state, counters, serialized engine).
  void PersistProject(ProjectId project, const ProjectRec& rec);
  /// Appends to the provider's inbox, write-through + prune beyond the
  /// queue capacity (the persisted inbox mirrors the in-memory one).
  void PushNotification(ProviderId provider, Notification n);
  /// Restores one persisted project row into projects_.
  Status RestoreProject(ProjectId project, const storage::Row& row,
                        storage::RowId rid);
  /// Decodes a project row into `rec` (engine rebuilt from the project's
  /// corpus, which must already exist). Shared by recovery and adoption.
  Status DecodeProjectRow(ProjectId project, const storage::Row& row,
                          ProjectRec* rec);

  ResourceManager* resources_;
  TagManager* tags_;
  UserManager* users_;
  Clock* clock_;
  storage::Database* db_;
  quality::StabilityQuality stability_;
  quality::EmpiricalGainEstimator gain_;
  std::map<ProjectId, ProjectRec> projects_;
  std::map<ProjectId, storage::RowId> project_rows_;
  std::map<ProviderId, NotificationQueue> inboxes_;
  std::map<ProviderId, std::deque<storage::RowId>> inbox_rows_;
  ProjectId next_project_ = 1;

  /// Resources crossing this stability-quality bar trigger a
  /// kQualityImproved notification.
  static constexpr double kNotifyQualityBar = 0.8;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_QUALITY_MANAGER_H_
