#ifndef ITAG_ITAG_RESOURCE_MANAGER_H_
#define ITAG_ITAG_RESOURCE_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "itag/ids.h"
#include "storage/database.h"
#include "tagging/corpus.h"

namespace itag::core {

/// The Resource Manager of Fig. 2: "in charge of controlling the operations
/// on resources and their related tags, and is responsible for storing
/// resource and tagging information." Each project owns a Corpus (working
/// set); the manager persists resource rows in the storage engine and hands
/// out the corpus to the Quality Manager.
class ResourceManager {
 public:
  explicit ResourceManager(storage::Database* db);

  /// Creates backing tables (idempotent).
  Status Attach();

  /// Creates the working corpus for a project.
  Status CreateProjectCorpus(ProjectId project);

  /// The project's corpus (nullptr when the project is unknown).
  tagging::Corpus* GetCorpus(ProjectId project);
  const tagging::Corpus* GetCorpus(ProjectId project) const;

  /// Uploads one resource into a project. Returns the project-local
  /// resource id.
  Result<tagging::ResourceId> UploadResource(ProjectId project,
                                             tagging::ResourceKind kind,
                                             const std::string& uri,
                                             const std::string& description);

  /// Imports a provider's pre-existing post (Upload File with "possible
  /// tags", Fig. 4). Raw tag strings are normalized and interned.
  Status ImportPost(ProjectId project, tagging::ResourceId resource,
                    const std::vector<std::string>& raw_tags);

  /// Number of resources in a project (0 for unknown projects).
  size_t ResourceCount(ProjectId project) const;

 private:
  storage::Database* db_;
  std::unordered_map<ProjectId, std::unique_ptr<tagging::Corpus>> corpora_;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_RESOURCE_MANAGER_H_
