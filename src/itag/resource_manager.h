#ifndef ITAG_ITAG_RESOURCE_MANAGER_H_
#define ITAG_ITAG_RESOURCE_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "itag/ids.h"
#include "storage/database.h"
#include "tagging/corpus.h"

namespace itag::core {

/// The Resource Manager of Fig. 2: "in charge of controlling the operations
/// on resources and their related tags, and is responsible for storing
/// resource and tagging information." Each project owns a Corpus (working
/// set); the manager persists resource rows, the tag dictionary (in intern
/// order — tag ids are positional) and imported posts in the storage
/// engine, and can rebuild a project's complete corpus from those tables on
/// recovery.
class ResourceManager {
 public:
  explicit ResourceManager(storage::Database* db);

  /// Creates backing tables (idempotent).
  Status Attach();

  /// Creates the working corpus for a project.
  Status CreateProjectCorpus(ProjectId project);

  /// Recovery: recreates the corpus of a persisted project by replaying the
  /// dictionary (restoring tag-id assignment order), the resource rows and
  /// the post log, then re-arms write-through. The rebuilt corpus is
  /// bit-equal to the one the original process held — statistics included,
  /// since TagStats is a pure fold over the post sequence.
  Status RestoreCorpus(ProjectId project);

  /// The project's corpus (nullptr when the project is unknown).
  tagging::Corpus* GetCorpus(ProjectId project);
  const tagging::Corpus* GetCorpus(ProjectId project) const;

  /// Uploads one resource into a project. Returns the project-local
  /// resource id.
  Result<tagging::ResourceId> UploadResource(ProjectId project,
                                             tagging::ResourceKind kind,
                                             const std::string& uri,
                                             const std::string& description);

  /// Imports a provider's pre-existing post (Upload File with "possible
  /// tags", Fig. 4). Raw tag strings are normalized and interned; the post
  /// is appended to the shared post log so recovery replays it in place.
  Status ImportPost(ProjectId project, tagging::ResourceId resource,
                    const std::vector<std::string>& raw_tags);

  /// Number of resources in a project (0 for unknown projects).
  size_t ResourceCount(ProjectId project) const;

  /// Self-contained, storage-free image of one project's corpus: dictionary
  /// in intern order, resources in upload order, posts with tag *texts*
  /// (ids are corpus-local and do not survive the move). Shard migration
  /// extracts this on the source shard and adopts it on the destination
  /// under a different project id; replaying it rebuilds a bit-equal corpus
  /// for the same reason RestoreCorpus does — TagStats is a pure fold over
  /// the per-resource post sequence.
  struct CorpusTransfer {
    std::vector<std::string> dict;  ///< tag texts, id order (0, 1, ...)
    struct Res {
      tagging::ResourceKind kind;
      std::string uri;
      std::string description;
    };
    std::vector<Res> resources;
    struct PostRec {
      tagging::ResourceId resource;
      tagging::TaggerId tagger;
      int64_t time;
      std::vector<std::string> tags;
    };
    std::vector<PostRec> posts;  ///< grouped by resource, in-order within
  };

  /// Serializes a project's corpus from memory (works on durable and
  /// in-memory databases alike).
  Result<CorpusTransfer> ExtractCorpus(ProjectId project) const;

  /// Installs a transferred corpus under `project` (which must be free):
  /// re-interns the dictionary in order, re-adds resources and posts, and
  /// writes the resource/post rows through to this database. The dict rows
  /// are written by the write-through hook (durable databases only, same as
  /// CreateProjectCorpus).
  Status AdoptCorpus(ProjectId project, const CorpusTransfer& transfer);

  /// Removes a project's corpus and its resource/post rows (the migration
  /// source's cleanup half; dict rows are deleted too on durable
  /// databases).
  Status DropCorpus(ProjectId project);

 private:
  /// Arms the corpus dictionary's new-tag hook to write-through into the
  /// dict table (durable databases only).
  void ArmDictHook(ProjectId project, tagging::Corpus* corpus);

  storage::Database* db_;
  std::unordered_map<ProjectId, std::unique_ptr<tagging::Corpus>> corpora_;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_RESOURCE_MANAGER_H_
