#ifndef ITAG_ITAG_RESOURCE_MANAGER_H_
#define ITAG_ITAG_RESOURCE_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "itag/ids.h"
#include "storage/database.h"
#include "tagging/corpus.h"

namespace itag::core {

/// The Resource Manager of Fig. 2: "in charge of controlling the operations
/// on resources and their related tags, and is responsible for storing
/// resource and tagging information." Each project owns a Corpus (working
/// set); the manager persists resource rows, the tag dictionary (in intern
/// order — tag ids are positional) and imported posts in the storage
/// engine, and can rebuild a project's complete corpus from those tables on
/// recovery.
class ResourceManager {
 public:
  explicit ResourceManager(storage::Database* db);

  /// Creates backing tables (idempotent).
  Status Attach();

  /// Creates the working corpus for a project.
  Status CreateProjectCorpus(ProjectId project);

  /// Recovery: recreates the corpus of a persisted project by replaying the
  /// dictionary (restoring tag-id assignment order), the resource rows and
  /// the post log, then re-arms write-through. The rebuilt corpus is
  /// bit-equal to the one the original process held — statistics included,
  /// since TagStats is a pure fold over the post sequence.
  Status RestoreCorpus(ProjectId project);

  /// The project's corpus (nullptr when the project is unknown).
  tagging::Corpus* GetCorpus(ProjectId project);
  const tagging::Corpus* GetCorpus(ProjectId project) const;

  /// Uploads one resource into a project. Returns the project-local
  /// resource id.
  Result<tagging::ResourceId> UploadResource(ProjectId project,
                                             tagging::ResourceKind kind,
                                             const std::string& uri,
                                             const std::string& description);

  /// Imports a provider's pre-existing post (Upload File with "possible
  /// tags", Fig. 4). Raw tag strings are normalized and interned; the post
  /// is appended to the shared post log so recovery replays it in place.
  Status ImportPost(ProjectId project, tagging::ResourceId resource,
                    const std::vector<std::string>& raw_tags);

  /// Number of resources in a project (0 for unknown projects).
  size_t ResourceCount(ProjectId project) const;

 private:
  /// Arms the corpus dictionary's new-tag hook to write-through into the
  /// dict table (durable databases only).
  void ArmDictHook(ProjectId project, tagging::Corpus* corpus);

  storage::Database* db_;
  std::unordered_map<ProjectId, std::unique_ptr<tagging::Corpus>> corpora_;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_RESOURCE_MANAGER_H_
