#ifndef ITAG_ITAG_SHARDED_SYSTEM_H_
#define ITAG_ITAG_SHARDED_SYSTEM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/seqlock.h"
#include "common/sharding.h"
#include "common/thread_pool.h"
#include "itag/itag_system.h"
#include "obs/metrics.h"

namespace itag::core {

/// Construction knobs for the sharded engine.
struct ShardedSystemOptions {
  /// Number of shards. Each shard owns a private ITagSystem (its own
  /// storage, clock, platforms, ledger) guarded by one mutex; projects are
  /// partitioned across shards, so shards never contend with each other.
  size_t num_shards = 4;

  /// Worker threads of the fan-out pool used by Step() and the cross-shard
  /// batch entry points. 0 picks min(num_shards, hardware_concurrency).
  size_t pool_threads = 0;

  /// Template for every shard's ITagSystem. A non-empty `db.directory`
  /// becomes `<directory>/shard-<i>` per shard; `seed` is offset per shard
  /// so the simulated worker pools differ across shards.
  ITagSystemOptions shard;
};

/// Lock-free-readable per-project quality snapshot (the monitoring hot
/// path: dashboards poll quality far more often than they mutate). All
/// fields mirror ProjectInfo; `version` counts snapshot refreshes.
struct QualitySnapshot {
  ProjectId project = 0;  ///< global id
  ProjectState state = ProjectState::kDraft;
  double quality = 0.0;
  double projected_gain = 0.0;
  uint32_t budget_remaining = 0;
  uint32_t tasks_completed = 0;
  uint32_t num_resources = 0;
  uint64_t version = 0;
};

/// Per-shard aggregate counters, published through a seqlock so monitors
/// can poll without touching any shard mutex.
struct ShardStats {
  uint64_t projects = 0;        ///< projects created on this shard
  uint64_t tasks_accepted = 0;  ///< audience tasks handed out
  uint64_t payments = 0;        ///< ledger payment records
  uint64_t paid_cents = 0;      ///< ledger grand total
};

/// The sharded, thread-safe core: partitions projects (and their
/// resources, corpora, engines, ledgers and quality state) across
/// `num_shards` private ITagSystem instances, each guarded by its own
/// mutex. Any number of caller threads may invoke any method concurrently.
///
/// Identity model:
///  - Provider/tagger registration is *broadcast*: every shard applies the
///    registration in the same order (serialized by a global user mutex),
///    so user ids are identical on every shard and valid everywhere.
///  - Project ids and task handles are *global* ids that encode the owning
///    shard in the low bits (see common/sharding.h); routing a request is a
///    modulo, not a table lookup. All ids returned by this class are global
///    and must be passed back as such.
///  - Resource ids stay project-local, exactly as in ITagSystem.
///
/// Concurrency model (see docs/concurrency.md for the full invariants):
///  - One mutex per shard serializes everything inside that shard.
///  - Cross-shard batch calls (SubmitTagsBatch, DecideBatch, Step) group
///    items per shard and fan out on an internal worker pool, then merge
///    per-item statuses back into request order.
///  - Quality reads (PeekQuality, StatsOf) bypass shard mutexes entirely:
///    snapshots live behind a shared_mutex-guarded table refreshed on every
///    mutation, and shard counters behind a seqlock.
///  - Lock ordering: users_mu_ before any shard mutex; shard mutexes are
///    never nested; snapshot locks only inside a shard lock.
class ShardedSystem {
 public:
  explicit ShardedSystem(ShardedSystemOptions options = {});
  ~ShardedSystem();

  ShardedSystem(const ShardedSystem&) = delete;
  ShardedSystem& operator=(const ShardedSystem&) = delete;

  /// Initializes every shard — in parallel on the worker pool, since a
  /// durable shard's Init is a full recovery (snapshot load + WAL replay +
  /// corpus rebuild). After recovery the cross-shard id counters
  /// (round-robin project placement, clock, per-shard stats) are re-derived
  /// from the shards' persisted state and every quality snapshot is
  /// rebuilt, so monitors work immediately. Must be called once before use.
  Status Init();

  /// Checkpoints every shard's database (snapshot + WAL truncate), each
  /// under its shard mutex, pool-parallel. Returns the aggregate info; the
  /// first shard error, if any, wins.
  Result<CheckpointInfo> Checkpoint();

  size_t num_shards() const { return shards_.size(); }

  // ------------------------------------------------------------ users
  /// Registers a provider on every shard (identical id everywhere).
  Result<ProviderId> RegisterProvider(const std::string& name);
  /// Registers a tagger on every shard (identical id everywhere).
  Result<UserTaggerId> RegisterTagger(const std::string& name);
  /// Profile with approval/earning counters summed across shards (a user's
  /// activity is recorded on the shard owning each project they touch).
  Result<ProviderProfile> GetProvider(ProviderId id) const;
  Result<TaggerProfile> GetTagger(UserTaggerId id) const;

  // ------------------------------------------------------------ provider API
  /// Creates the project on a round-robin-chosen shard; returns its global
  /// id. Errors match ITagSystem::CreateProject.
  Result<ProjectId> CreateProject(ProviderId provider,
                                  const ProjectSpec& spec);
  Result<tagging::ResourceId> UploadResource(ProjectId project,
                                             tagging::ResourceKind kind,
                                             const std::string& uri,
                                             const std::string& description);
  Status ImportPost(ProjectId project, tagging::ResourceId resource,
                    const std::vector<std::string>& raw_tags);
  /// Whole batch in one routed pass: one shard-lock acquisition and one
  /// snapshot refresh regardless of item count (vs per-item routing).
  /// Unknown projects fail every item with NotFound.
  std::vector<Status> UploadResourceBatch(
      ProjectId project, const std::vector<ResourceUpload>& items,
      std::vector<tagging::ResourceId>* ids);
  Status StartProject(ProjectId project);
  Status PauseProject(ProjectId project);
  Status StopProject(ProjectId project);
  Status AddBudget(ProjectId project, uint32_t tasks);
  Status SwitchStrategy(ProjectId project, strategy::StrategyKind kind);
  Result<strategy::StrategyKind> RecommendStrategy(ProjectId project) const;
  Status PromoteResource(ProjectId project, tagging::ResourceId resource);
  Status StopResource(ProjectId project, tagging::ResourceId resource);
  Status ResumeResource(ProjectId project, tagging::ResourceId resource);

  Result<ProjectInfo> GetProjectInfo(ProjectId project) const;
  /// All shards' projects of `provider`, merged and re-sorted by
  /// descending quality (the Fig. 3 listing order), with global ids.
  std::vector<ProjectInfo> ListProjects(ProviderId provider) const;
  /// Returns the feed by value (a reference into a shard would escape its
  /// lock) — the one signature that differs from ITagSystem.
  std::vector<QualityPoint> QualityFeed(ProjectId project) const;
  Result<QualityManager::ResourceDetail> GetResourceDetail(
      ProjectId project, tagging::ResourceId resource) const;
  /// Inboxes merged across shards, newest first, project ids globalized.
  std::vector<Notification> LatestNotifications(ProviderId provider,
                                                size_t limit);
  std::vector<PendingSubmission> PendingApprovals(ProjectId project) const;

  Status Decide(ProviderId provider, TaskHandle handle, bool approve);
  /// Cross-shard batched moderation: items are grouped by the shard their
  /// handle encodes, decided shard-parallel on the worker pool, and the
  /// per-item statuses merged back in request order.
  std::vector<Status> DecideBatch(
      ProviderId provider,
      const std::vector<std::pair<TaskHandle, bool>>& decisions);

  Result<size_t> ExportProject(ProjectId project,
                               const std::string& path) const;

  // ------------------------------------------------------------ tagger API
  std::vector<ProjectInfo> ListOpenProjects() const;
  Result<AcceptedTask> AcceptTask(UserTaggerId tagger, ProjectId project);
  /// Routes to the owning shard; returned handles/project ids are global.
  Result<std::vector<AcceptedTask>> AcceptTasks(UserTaggerId tagger,
                                                ProjectId project,
                                                size_t count);
  Status SubmitTags(UserTaggerId tagger, TaskHandle handle,
                    const std::vector<std::string>& raw_tags);
  /// Cross-shard batched submission, same grouping/fan-out/merge contract
  /// as DecideBatch.
  std::vector<Status> SubmitTagsBatch(
      const std::vector<TagSubmission>& items);

  // ------------------------------------------------------------ simulation
  /// Broadcast to every shard; the source sees *global* project ids.
  void SetPostSource(PostSource source);
  /// Broadcast to every shard; the policy sees global project/handle ids.
  void SetApprovalPolicy(ProviderId provider, ApprovalPolicy policy);
  /// Advances all shards by `ticks` in parallel on the worker pool, then
  /// the sharded clock. Returns the first shard error, if any.
  Status Step(Tick ticks);
  /// Current simulated time (all shard clocks advance in lockstep).
  Tick Now() const { return now_.load(std::memory_order_acquire); }

  // ------------------------------------------------------------ observability
  /// Lock-free-path read of a project's quality snapshot; never contends
  /// with the owning shard's mutex. NotFound for unknown projects.
  Result<QualitySnapshot> PeekQuality(ProjectId project) const;
  /// Seqlock read of one shard's aggregate counters.
  ShardStats StatsOf(size_t shard) const;
  /// Grand total paid across all shard ledgers (seqlock reads, no mutex).
  uint64_t TotalPaidCents() const;

  /// Direct access to one shard's facade for tests — unsynchronized; the
  /// caller must guarantee no concurrent use of this ShardedSystem.
  ITagSystem& shard_system(size_t shard) { return *shards_[shard]->system; }

 private:
  struct Shard {
    std::unique_ptr<ITagSystem> system;
    mutable std::mutex mu;  ///< serializes every access to `system`
    /// Snapshot table (keyed by *local* project id). Guarded by snap_mu,
    /// written only while `mu` is also held.
    mutable std::shared_mutex snap_mu;
    std::unordered_map<ProjectId, QualitySnapshot> snapshots;
    SeqLock<ShardStats> stats;
    // Counters feeding ShardStats; guarded by mu.
    uint64_t projects_created = 0;
    uint64_t tasks_accepted = 0;
    /// Registry mirror `core.shard.<i>.ops`: ops routed to this shard
    /// (single-project routes, batch-group runs, creates). Relaxed atomic,
    /// bumped outside mu by design.
    obs::Counter* ops = nullptr;
  };

  /// Registry metrics of the cross-shard layer (core.*), cached once.
  struct CoreMetrics {
    obs::Histogram* step_latency_us;   ///< wall time of one Step() fan-out
    obs::Counter* step_ticks;          ///< simulated ticks advanced
    obs::Counter* route_items;         ///< items through RouteByHandle
    obs::Counter* route_fanouts;       ///< RouteByHandle calls hitting >1 shard
    obs::Counter* route_bad_handle;    ///< items rejected before routing
  };

  size_t ShardOf(uint64_t global_id) const {
    return ShardOfId(global_id, shards_.size());
  }
  uint64_t ToLocal(uint64_t global_id) const {
    return LocalId(global_id, shards_.size());
  }
  uint64_t ToGlobal(uint64_t local_id, size_t shard) const {
    return EncodeShardedId(local_id, shard, shards_.size());
  }

  /// Locks the owning shard and invokes fn(shard_index, system, local_id).
  /// Centralizes routing + the bad-id (local == 0) guard.
  template <typename Fn>
  auto WithProject(ProjectId project, Fn&& fn) const
      -> decltype(fn(size_t{0}, static_cast<ITagSystem*>(nullptr),
                     ProjectId{0}));

  /// Shared scaffolding of the cross-shard batch entry points: groups
  /// `items` by the shard their global handle (`handle_of(item)`) encodes
  /// — items with a bogus handle get NotFound("<noun> <handle>") in place —
  /// rewrites each grouped item's handle shard-local via `relabel`, then
  /// runs `run_shard(shard_index, system, local_items, slots, &out)` under
  /// each involved shard's mutex, pool-parallel when more than one shard is
  /// involved. `slots` maps group positions back to request positions;
  /// run_shard must write its statuses through them.
  template <typename Item, typename HandleOf, typename Relabel,
            typename RunShard>
  std::vector<Status> RouteByHandle(const std::vector<Item>& items,
                                    const char* noun, HandleOf handle_of,
                                    Relabel relabel, RunShard run_shard);

  /// Refreshes the snapshot of one local project (shard mutex held).
  void RefreshSnapshot(size_t shard_index, ProjectId local) const;
  /// Refreshes every project snapshot + shard stats (shard mutex held).
  void RefreshShard(size_t shard_index) const;
  /// Publishes current ledger/project counters (shard mutex held).
  void RefreshStats(size_t shard_index) const;

  ShardedSystemOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  CoreMetrics metrics_{};
  std::mutex users_mu_;  ///< serializes broadcast registrations
  /// Serializes project placement: the round-robin cursor advances only on
  /// a *successful* create, so it stays re-derivable after recovery as the
  /// total number of persisted projects (failed creates burn nothing).
  std::mutex create_mu_;
  std::atomic<uint64_t> next_project_shard_{0};
  std::atomic<Tick> now_{0};
  bool initialized_ = false;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_SHARDED_SYSTEM_H_
