#ifndef ITAG_ITAG_SHARDED_SYSTEM_H_
#define ITAG_ITAG_SHARDED_SYSTEM_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/seqlock.h"
#include "common/sharding.h"
#include "common/thread_pool.h"
#include "itag/itag_system.h"
#include "obs/metrics.h"

namespace itag::core {

/// Construction knobs for the sharded engine.
struct ShardedSystemOptions {
  /// Number of shards. Each shard owns a private ITagSystem (its own
  /// storage, clock, platforms, ledger) guarded by one mutex; projects are
  /// partitioned across shards, so shards never contend with each other.
  size_t num_shards = 4;

  /// Worker threads of the fan-out pool used by Step() and the cross-shard
  /// batch entry points. 0 picks min(num_shards, hardware_concurrency).
  size_t pool_threads = 0;

  /// Template for every shard's ITagSystem. A non-empty `db.directory`
  /// becomes `<directory>/shard-<i>` per shard (the placement map database
  /// lives at `<directory>/placement`); `seed` is offset per shard so the
  /// simulated worker pools differ across shards.
  ITagSystemOptions shard;

  /// Sampling window of the background rebalancer, in milliseconds.
  /// 0 (the default) disables the thread entirely; placement can still be
  /// moved explicitly through MigrateProject().
  size_t rebalance_interval_ms = 0;

  /// A shard is "hot" when its share of the window's routed ops exceeds
  /// this ratio. Two consecutive hot windows (hysteresis) trigger one
  /// migration; any migration resets the streak (cool-down).
  double rebalance_hot_ratio = 0.45;

  /// Windows with fewer total routed ops than this are ignored — idle
  /// systems never migrate on noise.
  uint64_t rebalance_min_ops = 64;

  /// Replication-follower mode: the system serves reads while a
  /// repl::Follower applies shipped WAL records underneath it. Init skips
  /// everything that *writes* (migration-intent resolution, the
  /// rebalancer) — those run when Promote() flips the system writable.
  /// Requires durable shards (the stream lands in real WALs).
  bool read_only = false;
};

/// Lock-free-readable per-project quality snapshot (the monitoring hot
/// path: dashboards poll quality far more often than they mutate). All
/// fields mirror ProjectInfo; `version` counts snapshot refreshes.
struct QualitySnapshot {
  ProjectId project = 0;  ///< global id
  ProjectState state = ProjectState::kDraft;
  double quality = 0.0;
  double projected_gain = 0.0;
  uint32_t budget_remaining = 0;
  uint32_t tasks_completed = 0;
  uint32_t num_resources = 0;
  uint64_t version = 0;
};

/// Per-shard aggregate counters, published through a seqlock so monitors
/// can poll without touching any shard mutex.
struct ShardStats {
  uint64_t projects = 0;        ///< projects created on this shard
  uint64_t tasks_accepted = 0;  ///< audience tasks handed out
  uint64_t payments = 0;        ///< ledger payment records
  uint64_t paid_cents = 0;      ///< ledger grand total
};

/// The sharded, thread-safe core: partitions projects (and their
/// resources, corpora, engines, ledgers and quality state) across
/// `num_shards` private ITagSystem instances, each guarded by its own
/// mutex. Any number of caller threads may invoke any method concurrently.
///
/// Identity model:
///  - Provider/tagger registration is *broadcast*: every shard applies the
///    registration in the same order (serialized by a global user mutex),
///    so user ids are identical on every shard and valid everywhere.
///  - Project ids and task handles are *global* ids that encode the owning
///    shard in the low bits (see common/sharding.h); routing a request is a
///    modulo, not a table lookup. All ids returned by this class are global
///    and must be passed back as such.
///  - Resource ids stay project-local, exactly as in ITagSystem.
///
/// Concurrency model (see docs/concurrency.md for the full invariants):
///  - One mutex per shard serializes everything inside that shard.
///  - Cross-shard batch calls (SubmitTagsBatch, DecideBatch, Step) group
///    items per shard and fan out on an internal worker pool, then merge
///    per-item statuses back into request order.
///  - Quality reads (PeekQuality, StatsOf) bypass shard mutexes entirely:
///    snapshots live behind a shared_mutex-guarded table refreshed on every
///    mutation, and shard counters behind a seqlock.
///  - Lock ordering: users_mu_ before any shard mutex; snapshot locks only
///    inside a shard lock; placement_mu_ is a leaf (taken after a shard
///    mutex, never around one). MigrateProject is the single path that
///    holds two shard mutexes at once (std::scoped_lock, deadlock-free),
///    serialized by migrate_mu_.
///
/// Placement model: routing starts from the static id codec but consults a
/// versioned PlacementMap overlay, so a project can *move* between shards.
/// The map is persisted in its own database (WAL'd + checkpointed) and an
/// intent row makes every migration crash-atomic — see docs/rebalancing.md.
class ShardedSystem {
 public:
  explicit ShardedSystem(ShardedSystemOptions options = {});
  ~ShardedSystem();

  ShardedSystem(const ShardedSystem&) = delete;
  ShardedSystem& operator=(const ShardedSystem&) = delete;

  /// Initializes every shard — in parallel on the worker pool, since a
  /// durable shard's Init is a full recovery (snapshot load + WAL replay +
  /// corpus rebuild). After recovery the cross-shard id counters
  /// (round-robin project placement, clock, per-shard stats) are re-derived
  /// from the shards' persisted state and every quality snapshot is
  /// rebuilt, so monitors work immediately. Must be called once before use.
  Status Init();

  /// Checkpoints every shard's database (snapshot + WAL truncate), each
  /// under its shard mutex, pool-parallel. Returns the aggregate info; the
  /// first shard error, if any, wins.
  Result<CheckpointInfo> Checkpoint();

  size_t num_shards() const { return shards_.size(); }

  /// The construction options (e.g. for the replication handshake: a
  /// follower must prove its shard count and seed match the primary's).
  const ShardedSystemOptions& options() const { return options_; }

  // ------------------------------------------------------------ users
  /// Registers a provider on every shard (identical id everywhere).
  Result<ProviderId> RegisterProvider(const std::string& name);
  /// Registers a tagger on every shard (identical id everywhere).
  Result<UserTaggerId> RegisterTagger(const std::string& name);
  /// Profile with approval/earning counters summed across shards (a user's
  /// activity is recorded on the shard owning each project they touch).
  Result<ProviderProfile> GetProvider(ProviderId id) const;
  Result<TaggerProfile> GetTagger(UserTaggerId id) const;

  // ------------------------------------------------------------ provider API
  /// Creates the project on a round-robin-chosen shard; returns its global
  /// id. Errors match ITagSystem::CreateProject.
  Result<ProjectId> CreateProject(ProviderId provider,
                                  const ProjectSpec& spec);
  Result<tagging::ResourceId> UploadResource(ProjectId project,
                                             tagging::ResourceKind kind,
                                             const std::string& uri,
                                             const std::string& description);
  Status ImportPost(ProjectId project, tagging::ResourceId resource,
                    const std::vector<std::string>& raw_tags);
  /// Whole batch in one routed pass: one shard-lock acquisition and one
  /// snapshot refresh regardless of item count (vs per-item routing).
  /// Unknown projects fail every item with NotFound.
  std::vector<Status> UploadResourceBatch(
      ProjectId project, const std::vector<ResourceUpload>& items,
      std::vector<tagging::ResourceId>* ids);
  Status StartProject(ProjectId project);
  Status PauseProject(ProjectId project);
  Status StopProject(ProjectId project);
  Status AddBudget(ProjectId project, uint32_t tasks);
  Status SwitchStrategy(ProjectId project, strategy::StrategyKind kind);
  Result<strategy::StrategyKind> RecommendStrategy(ProjectId project) const;
  Status PromoteResource(ProjectId project, tagging::ResourceId resource);
  Status StopResource(ProjectId project, tagging::ResourceId resource);
  Status ResumeResource(ProjectId project, tagging::ResourceId resource);

  Result<ProjectInfo> GetProjectInfo(ProjectId project) const;
  /// All shards' projects of `provider`, merged and re-sorted by
  /// descending quality (the Fig. 3 listing order), with global ids.
  std::vector<ProjectInfo> ListProjects(ProviderId provider) const;
  /// Returns the feed by value (a reference into a shard would escape its
  /// lock) — the one signature that differs from ITagSystem.
  std::vector<QualityPoint> QualityFeed(ProjectId project) const;
  Result<QualityManager::ResourceDetail> GetResourceDetail(
      ProjectId project, tagging::ResourceId resource) const;
  /// Inboxes merged across shards, newest first, project ids globalized.
  std::vector<Notification> LatestNotifications(ProviderId provider,
                                                size_t limit);
  std::vector<PendingSubmission> PendingApprovals(ProjectId project) const;

  Status Decide(ProviderId provider, TaskHandle handle, bool approve);
  /// Cross-shard batched moderation: items are grouped by the shard their
  /// handle encodes, decided shard-parallel on the worker pool, and the
  /// per-item statuses merged back in request order.
  std::vector<Status> DecideBatch(
      ProviderId provider,
      const std::vector<std::pair<TaskHandle, bool>>& decisions);

  Result<size_t> ExportProject(ProjectId project,
                               const std::string& path) const;

  // ------------------------------------------------------------ tagger API
  std::vector<ProjectInfo> ListOpenProjects() const;
  Result<AcceptedTask> AcceptTask(UserTaggerId tagger, ProjectId project);
  /// Routes to the owning shard; returned handles/project ids are global.
  Result<std::vector<AcceptedTask>> AcceptTasks(UserTaggerId tagger,
                                                ProjectId project,
                                                size_t count);
  Status SubmitTags(UserTaggerId tagger, TaskHandle handle,
                    const std::vector<std::string>& raw_tags);
  /// Cross-shard batched submission, same grouping/fan-out/merge contract
  /// as DecideBatch.
  std::vector<Status> SubmitTagsBatch(
      const std::vector<TagSubmission>& items);

  // ------------------------------------------------------------ simulation
  /// Broadcast to every shard; the source sees *global* project ids.
  void SetPostSource(PostSource source);
  /// Broadcast to every shard; the policy sees global project/handle ids.
  void SetApprovalPolicy(ProviderId provider, ApprovalPolicy policy);
  /// Advances all shards by `ticks` in parallel on the worker pool, then
  /// the sharded clock. Returns the first shard error, if any.
  Status Step(Tick ticks);
  /// Current simulated time (all shard clocks advance in lockstep).
  Tick Now() const { return now_.load(std::memory_order_acquire); }

  // ------------------------------------------------------------ observability
  /// Lock-free-path read of a project's quality snapshot; never contends
  /// with the owning shard's mutex. NotFound for unknown projects.
  Result<QualitySnapshot> PeekQuality(ProjectId project) const;
  /// Seqlock read of one shard's aggregate counters.
  ShardStats StatsOf(size_t shard) const;
  /// Grand total paid across all shard ledgers (seqlock reads, no mutex).
  uint64_t TotalPaidCents() const;

  // ------------------------------------------------------------ placement
  /// Moves a project (record, corpus, posts, accepted/pending tasks,
  /// ledger spend) to `to_shard` under a brief write stall of both shards;
  /// reads keep serving from the snapshot path throughout. The project
  /// keeps its global id; task handles are re-minted on the destination
  /// and the old ones keep working through the placement map's handle
  /// translation. Crash-atomic: an intent row written before the copy is
  /// resolved on the next Init (pending → destination copy purged,
  /// committed → source copy purged). FailedPrecondition when the project
  /// has tasks in flight on an external platform; callers (the rebalancer)
  /// simply retry a later window. No-op OK when already on `to_shard`.
  /// `moved_ops_hint` only feeds the core.rebalance.moved_ops counter.
  Status MigrateProject(ProjectId project, size_t to_shard,
                        uint64_t moved_ops_hint = 0);

  /// Current placement-map version (bumped once per migration). Batch
  /// routers re-check this to re-route items that raced a migration.
  uint64_t placement_version() const {
    return placement_version_.load(std::memory_order_acquire);
  }

  /// Direct access to one shard's facade for tests — unsynchronized; the
  /// caller must guarantee no concurrent use of this ShardedSystem.
  ITagSystem& shard_system(size_t shard) { return *shards_[shard]->system; }

  // ----------------------------------------------------------- replication
  /// Databases a replication stream covers: one per shard, plus the
  /// placement database at stream index num_shards().
  size_t NumReplDbs() const { return shards_.size() + 1; }

  /// WAL file path of each replicated DB in stream-index order (placement
  /// last); empty strings when the system is in-memory. What a
  /// repl::Primary hands to its WalTailers.
  std::vector<std::string> ReplWalPaths() const;

  /// Last LSN appended to (primary) or applied into (follower) each
  /// replicated DB, stream-index order. A follower subscribes from these;
  /// each is read under the owning DB's lock.
  std::vector<uint64_t> ReplLsns() const;

  /// Applies one shipped WAL record into DB `db_index` under its lock
  /// (shard mutex, or migrate_mu_ for the placement DB). Errors as
  /// storage::Database::ApplyReplicated: OK on a duplicate, OutOfRange on
  /// a gap (the follower resubscribes).
  Status ApplyReplicated(size_t db_index, const storage::WalRecord& rec);

  /// Re-derives one shard's in-memory state from its database
  /// (ITagSystem::Reattach) and refreshes its counters + snapshots; a
  /// follower calls this for every shard a burst touched, once caught up.
  Status ReattachShard(size_t shard_index);

  /// Rebuilds the placement routing overlay from the placement database
  /// (follower, after placement-DB records were applied).
  Status ReloadPlacement();

  /// Follower → writable primary: resolves any replicated migration
  /// intents, re-derives the cross-shard counters, starts the rebalancer,
  /// and clears read_only(). FailedPrecondition when already writable.
  /// The caller must have stopped the replication stream first.
  Status Promote();

  /// True while this system is a replication follower (writes rejected at
  /// the service layer).
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

 private:
  struct Shard {
    std::unique_ptr<ITagSystem> system;
    mutable std::mutex mu;  ///< serializes every access to `system`
    /// Snapshot table (keyed by *local* project id). Guarded by snap_mu,
    /// written only while `mu` is also held.
    mutable std::shared_mutex snap_mu;
    std::unordered_map<ProjectId, QualitySnapshot> snapshots;
    SeqLock<ShardStats> stats;
    // Counters feeding ShardStats; guarded by mu.
    uint64_t projects_created = 0;
    uint64_t tasks_accepted = 0;
    /// Per-project routed-op attribution for the rebalancer, keyed by
    /// *global* id. Guarded by mu; snapshotted + cleared once per window.
    std::unordered_map<uint64_t, uint64_t> project_ops;
    /// Registry mirror `core.shard.<i>.ops`: ops routed to this shard
    /// (single-project routes, batch-group runs, creates). Relaxed atomic,
    /// bumped outside mu by design.
    obs::Counter* ops = nullptr;
  };

  /// Registry metrics of the cross-shard layer (core.*), cached once.
  struct CoreMetrics {
    obs::Histogram* step_latency_us;   ///< wall time of one Step() fan-out
    obs::Counter* step_ticks;          ///< simulated ticks advanced
    obs::Counter* route_items;         ///< items through RouteByHandle
    obs::Counter* route_fanouts;       ///< RouteByHandle calls hitting >1 shard
    obs::Counter* route_bad_handle;    ///< items rejected before routing
    obs::Counter* rebalance_migrations;  ///< completed migrations
    obs::Counter* rebalance_moved_ops;   ///< window ops attributed to movers
    obs::Counter* rebalance_stall_us;    ///< summed write-stall wall time
    obs::Gauge* placement_version;       ///< mirrors placement_version_
  };

  size_t ShardOf(uint64_t global_id) const {
    return ShardOfId(global_id, shards_.size());
  }
  uint64_t ToLocal(uint64_t global_id) const {
    return LocalId(global_id, shards_.size());
  }
  uint64_t ToGlobal(uint64_t local_id, size_t shard) const {
    return EncodeShardedId(local_id, shard, shards_.size());
  }
  /// Global id of the project living at (shard, local) — the placement
  /// map's slot history, falling back to the codec for never-moved slots.
  uint64_t GlobalProjectOf(size_t shard, uint64_t local) const;

  /// Resolves `project` through the placement map and locks the owning
  /// shard, re-checking under the lock (a migration may land between the
  /// lookup and the lock) and retrying on a move. Invokes
  /// fn(shard_index, system, local_id); centralizes routing + the bad-id
  /// guard + per-project op attribution.
  template <typename Fn>
  auto WithProject(ProjectId project, Fn&& fn) const
      -> decltype(fn(size_t{0}, static_cast<ITagSystem*>(nullptr),
                     ProjectId{0}));

  /// Handle-keyed twin of WithProject: translates `handle` through the
  /// placement map's handle table (migrations re-mint handles), locks the
  /// owning shard, re-checks + retries on a racing migration.
  template <typename Fn>
  auto WithHandle(TaskHandle handle, const char* noun, Fn&& fn) const
      -> decltype(fn(size_t{0}, static_cast<ITagSystem*>(nullptr),
                     TaskHandle{0}));

  /// Shared scaffolding of the cross-shard batch entry points: groups
  /// `items` by the shard their global handle (`handle_of(item)`) encodes
  /// — items with a bogus handle get NotFound("<noun> <handle>") in place —
  /// rewrites each grouped item's handle shard-local via `relabel`, then
  /// runs `run_shard(shard_index, system, local_items, slots, &out)` under
  /// each involved shard's mutex, pool-parallel when more than one shard is
  /// involved. `slots` maps group positions back to request positions;
  /// run_shard must write its statuses through them.
  template <typename Item, typename HandleOf, typename Relabel,
            typename RunShard>
  std::vector<Status> RouteByHandle(const std::vector<Item>& items,
                                    const char* noun, HandleOf handle_of,
                                    Relabel relabel, RunShard run_shard);

  /// Refreshes the snapshot of one local project (shard mutex held).
  void RefreshSnapshot(size_t shard_index, ProjectId local) const;
  /// Refreshes every project snapshot + shard stats (shard mutex held).
  void RefreshShard(size_t shard_index) const;
  /// Publishes current ledger/project counters (shard mutex held).
  void RefreshStats(size_t shard_index) const;

  /// Publishes `core.placement.project.<global>` = shard (debug surface).
  void SetPlacementGauge(uint64_t global, size_t shard) const;
  /// Opens <dir>/placement (in-memory when the shards are), creates its
  /// tables, and loads the routing overlay + persisted-row maps.
  Status OpenPlacement();
  /// (Re)builds placement_/placement_rows_/handle_rows_ from the placement
  /// tables; shared by OpenPlacement and ReloadPlacement.
  Status LoadPlacementOverlay();
  /// Replays unresolved migration intents left by a crash: pending →
  /// purge the destination copy, committed → purge the source copy.
  Status ResolveIntents();
  /// Rebalancer thread body: sleeps rebalance_interval_ms between windows.
  void RebalanceLoop();
  /// One sampling window: reads per-shard op deltas, applies the
  /// hot-ratio + hysteresis rules, migrates at most one project.
  void RebalanceOnce();

  ShardedSystemOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  CoreMetrics metrics_{};
  std::mutex users_mu_;  ///< serializes broadcast registrations
  /// Serializes project placement: the round-robin cursor advances only on
  /// a *successful* create, so it stays re-derivable after recovery as the
  /// total number of persisted projects (failed creates burn nothing).
  std::mutex create_mu_;
  std::atomic<uint64_t> next_project_shard_{0};
  std::atomic<Tick> now_{0};
  bool initialized_ = false;
  /// Replication-follower flag; cleared by Promote().
  std::atomic<bool> read_only_{false};

  /// Movable routing overlay. placement_mu_ is a leaf lock: always
  /// acquired after any shard mutex, never around one.
  mutable std::shared_mutex placement_mu_;
  PlacementMap placement_{1};  // re-built with num_shards in the ctor
  /// Mirror of placement_.version(), readable without placement_mu_.
  std::atomic<uint64_t> placement_version_{0};
  /// Placement persistence. migrate_mu_ serializes migrations and every
  /// write to placement_db_ (Checkpoint takes it too).
  mutable std::mutex migrate_mu_;
  std::unique_ptr<storage::Database> placement_db_;
  std::unordered_map<uint64_t, storage::RowId> placement_rows_;  // by project
  std::unordered_map<uint64_t, storage::RowId> handle_rows_;     // by old handle

  // Rebalancer thread state (thread-owned except the stop flag).
  std::thread rebalance_thread_;
  std::mutex rebalance_mu_;
  std::condition_variable rebalance_cv_;
  bool rebalance_stop_ = false;
  std::vector<uint64_t> last_shard_ops_;
  int hot_streak_ = 0;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_SHARDED_SYSTEM_H_
