#ifndef ITAG_ITAG_NOTIFICATION_H_
#define ITAG_ITAG_NOTIFICATION_H_

#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "itag/ids.h"

namespace itag::core {

/// Kinds of events surfaced in the provider's Notification section (Fig. 6):
/// fresh taggings awaiting approval and quality-status changes.
enum class NotificationKind : uint8_t {
  kNewTagging = 0,       ///< a post awaits approve/disapprove
  kQualityImproved = 1,  ///< a resource crossed the quality threshold
  kBudgetExhausted = 2,  ///< project ran out of budget
  kProjectStopped = 3,
};

/// One notification line.
struct Notification {
  NotificationKind kind;
  Tick time = 0;
  ProjectId project = 0;
  std::string message;
};

/// Bounded per-provider notification inbox (oldest entries are dropped once
/// `capacity` is exceeded — the UI shows only the latest anyway).
class NotificationQueue {
 public:
  explicit NotificationQueue(size_t capacity = 256) : capacity_(capacity) {}

  /// Appends a notification, evicting the oldest beyond capacity.
  void Push(Notification n) {
    items_.push_back(std::move(n));
    while (items_.size() > capacity_) items_.pop_front();
  }

  /// Latest `limit` notifications, newest first.
  std::vector<Notification> Latest(size_t limit) const {
    std::vector<Notification> out;
    size_t n = items_.size();
    for (size_t i = 0; i < limit && i < n; ++i) {
      out.push_back(items_[n - 1 - i]);
    }
    return out;
  }

  size_t size() const { return items_.size(); }

 private:
  size_t capacity_;
  std::deque<Notification> items_;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_NOTIFICATION_H_
