#ifndef ITAG_ITAG_ITAG_SYSTEM_H_
#define ITAG_ITAG_ITAG_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "crowd/ledger.h"
#include "crowd/mturk_sim.h"
#include "crowd/social_sim.h"
#include "itag/ids.h"
#include "itag/project.h"
#include "itag/quality_manager.h"
#include "itag/resource_manager.h"
#include "itag/tag_manager.h"
#include "itag/user_manager.h"
#include "sim/tagger_model.h"
#include "storage/database.h"

namespace itag::core {

/// Construction options for the whole system.
struct ITagSystemOptions {
  /// Storage configuration; empty directory = in-memory.
  storage::DatabaseOptions db;

  /// Worker pools backing the simulated MTurk and social platforms.
  crowd::WorkerPoolConfig mturk_pool;
  crowd::SocialNetSimOptions social;

  uint64_t seed = 2014;
};

/// A pending submission awaiting the provider's Approve/Disapprove decision
/// (the Notification section workflow of Fig. 6).
struct PendingSubmission {
  TaskHandle handle = 0;
  ProjectId project = 0;
  tagging::ResourceId resource = 0;
  /// Registered tagger for audience submissions; kInvalid for platform
  /// workers (those are paid through the platform's ledger instead).
  UserTaggerId tagger = static_cast<UserTaggerId>(-1);
  crowd::TaskId platform_task = 0;  ///< 0 for audience submissions
  std::vector<std::string> tags;    ///< normalized tag texts
  /// Hidden simulation hint: whether the submitting worker was
  /// conscientious. Approval policies may use it to model the provider's
  /// quality judgement; it never reaches strategies.
  bool conscientious_hint = true;
};

/// A task accepted by a human tagger through the tagger UI (Fig. 7/8).
struct AcceptedTask {
  TaskHandle handle = 0;
  ProjectId project = 0;
  tagging::ResourceId resource = 0;
  std::string uri;
  uint32_t pay_cents = 0;
};

/// One item of a batched tag submission (SubmitTagsBatch): the tagger who
/// accepted `handle` plus the raw (un-normalized) tag texts they entered.
struct TagSubmission {
  UserTaggerId tagger = 0;
  TaskHandle handle = 0;
  std::vector<std::string> tags;
};

/// One resource of a batched upload (UploadResourceBatch): the Fig. 4
/// upload joins creating the resource and importing its existing tags.
struct ResourceUpload {
  tagging::ResourceKind kind = tagging::ResourceKind::kWebUrl;
  std::string uri;
  std::string description;
  /// Imported as a provider-era post when non-empty.
  std::vector<std::string> initial_tags;
};

/// Synthesizes the content of a platform worker's submission. The simulator
/// installs a TaggerModel-backed source; the default source imitates a
/// casual tagger (samples mostly from the resource's current rfd, sometimes
/// invents a new tag), so the system is runnable standalone.
using PostSource = std::function<sim::GeneratedPost(
    ProjectId, tagging::ResourceId, double reliability, Tick, Rng*)>;

/// Decides a pending submission; used by Step() to auto-moderate platform
/// traffic. Defaults to approve-everything.
///
/// Policies (like PostSource) are *code*, not data: they cannot be
/// persisted, so an embedder that installs them must re-install them after
/// recovery (see docs/persistence.md).
using ApprovalPolicy = std::function<bool(const PendingSubmission&)>;

/// What a checkpoint covered; returned by ITagSystem::Checkpoint and
/// ShardedSystem::Checkpoint (aggregated across shards there).
struct CheckpointInfo {
  bool durable = false;  ///< false = in-memory backend, nothing to write
  uint64_t tables = 0;
  uint64_t rows = 0;
};

/// The iTag system facade (Fig. 2): wires the four managers, the storage
/// engine and the simulated crowdsourcing platforms behind the provider and
/// tagger APIs of §III. Single-threaded; time advances through Step().
class ITagSystem {
 public:
  explicit ITagSystem(ITagSystemOptions options = {});

  /// Opens storage and attaches managers. On a durable database this is
  /// also the recovery path: every manager rehydrates from its tables, the
  /// workflow maps (accepted tasks, pending approvals, in-flight platform
  /// tasks), the payment ledger, the platform simulators, the clock and the
  /// RNG stream are restored, so close-and-reopen (or crash-and-reopen; the
  /// WAL replays to the last complete record) resumes the system bit-equal
  /// to the uninterrupted run. Must be called once before use.
  Status Init();

  /// Re-derives every piece of in-memory state from the (already open)
  /// database, exactly like a fresh Init would — managers, workflow maps,
  /// ledger, clock, RNG stream, platform simulators. A replication follower
  /// calls this after applying a burst of shipped WAL records: the records
  /// update tables, Reattach rebuilds everything derived from them. Only
  /// meaningful on a durable system (FailedPrecondition otherwise — an
  /// in-memory database has no authoritative tables to re-derive from).
  /// Installed code (post source, approval policies) survives; it is code,
  /// not data.
  Status Reattach();

  /// Compacts durability state: snapshots all tables and truncates the WAL
  /// (storage::Database::Checkpoint). Every mutation is already written
  /// through, so this bounds recovery time, not durability. OK with
  /// durable=false on an in-memory system.
  Result<CheckpointInfo> Checkpoint();

  // ------------------------------------------------------------ users
  /// Registers a provider. Names need not be unique; ids are dense and
  /// assigned in registration order (the sharded layer relies on this to
  /// broadcast registrations deterministically).
  Result<ProviderId> RegisterProvider(const std::string& name);
  /// Registers a tagger; same id contract as RegisterProvider.
  Result<UserTaggerId> RegisterTagger(const std::string& name);
  /// Profile + approval statistics; NotFound for unknown ids.
  Result<ProviderProfile> GetProvider(ProviderId id) const;
  Result<TaggerProfile> GetTagger(UserTaggerId id) const;

  // ------------------------------------------------------------ provider API
  /// Creates a project in Draft state for `provider` (NotFound for unknown
  /// providers); the spec's budget/pay/platform/strategy are fixed until
  /// AddBudget/SwitchStrategy change them.
  Result<ProjectId> CreateProject(ProviderId provider,
                                  const ProjectSpec& spec);
  /// Uploads one resource; returns its project-local id. NotFound for
  /// unknown projects.
  Result<tagging::ResourceId> UploadResource(ProjectId project,
                                             tagging::ResourceKind kind,
                                             const std::string& uri,
                                             const std::string& description);
  /// Imports the provider's historical tags for a resource (Fig. 4 upload).
  /// InvalidArgument when no tag survives normalization.
  Status ImportPost(ProjectId project, tagging::ResourceId resource,
                    const std::vector<std::string>& raw_tags);

  /// Batched upload: one UploadResource (+ ImportPost when initial_tags are
  /// present) per item, one Status per item in request order — a bad item
  /// never aborts the rest. `ids` (required) is filled aligned with
  /// `items`, kInvalidResource where an item failed; an item whose resource
  /// was created but whose tag import failed keeps its id alongside the
  /// import's error status. The sharded layer overrides this with a single
  /// routed, locked pass.
  std::vector<Status> UploadResourceBatch(
      ProjectId project, const std::vector<ResourceUpload>& items,
      std::vector<tagging::ResourceId>* ids);

  /// Lifecycle transitions (§III-A). Each returns NotFound for unknown
  /// projects and FailedPrecondition for illegal transitions (e.g. Start
  /// with zero resources, controls on a stopped project).
  Status StartProject(ProjectId project);
  Status PauseProject(ProjectId project);
  Status StopProject(ProjectId project);
  /// Tops up the budget by `tasks` (clamped to uint32 max).
  Status AddBudget(ProjectId project, uint32_t tasks);
  /// Replaces the allocation strategy mid-run (Fig. 5 dropdown).
  Status SwitchStrategy(ProjectId project, strategy::StrategyKind kind);
  /// Statistics-driven strategy suggestion (§III-A).
  Result<strategy::StrategyKind> RecommendStrategy(ProjectId project) const;
  /// §III-A per-resource Promote / Stop / Resume buttons. NotFound for
  /// unknown project or resource.
  Status PromoteResource(ProjectId project, tagging::ResourceId resource);
  Status StopResource(ProjectId project, tagging::ResourceId resource);
  Status ResumeResource(ProjectId project, tagging::ResourceId resource);

  Result<ProjectInfo> GetProjectInfo(ProjectId project) const;
  std::vector<ProjectInfo> ListProjects(ProviderId provider) const;
  const std::vector<QualityPoint>& QualityFeed(ProjectId project) const;
  Result<QualityManager::ResourceDetail> GetResourceDetail(
      ProjectId project, tagging::ResourceId resource) const;
  std::vector<Notification> LatestNotifications(ProviderId provider,
                                                size_t limit);

  /// Pending submissions of one project, oldest first.
  std::vector<PendingSubmission> PendingApprovals(ProjectId project) const;

  /// The project a pending submission belongs to; NotFound when the handle
  /// has no pending submission (never issued, not yet submitted, or already
  /// decided). Lets batch routers learn which projects a decision batch
  /// touches without scanning.
  Result<ProjectId> PendingProjectOf(TaskHandle handle) const;

  /// Provider decision on a pending submission (Approve/Disapprove buttons).
  Status Decide(ProviderId provider, TaskHandle handle, bool approve);

  /// Batched moderation: decides every (handle, approve) pair, returning one
  /// Status per item in request order — a bad handle never aborts the rest.
  /// Approved posts of the same project are recorded through one
  /// CompletePostBatch pass (one quality-feed point per project per call)
  /// instead of one O(corpus) update per submission.
  std::vector<Status> DecideBatch(
      ProviderId provider,
      const std::vector<std::pair<TaskHandle, bool>>& decisions);

  /// Exports the project's resources with their top tags as CSV.
  Result<size_t> ExportProject(ProjectId project,
                               const std::string& path) const;

  // ------------------------------------------------------------ tagger API
  /// Projects a tagger can join, with pay and provider approval rate
  /// (Fig. 7). Only Running projects with budget are listed.
  std::vector<ProjectInfo> ListOpenProjects() const;

  /// Joins a project: the strategy picks the resource the tagger should tag
  /// (§III-B "they are assigned resources to tag, as decided by the
  /// strategy"). NotFound for unknown tagger/project; FailedPrecondition
  /// while the project is not Running; ResourceExhausted when the budget is
  /// spent.
  Result<AcceptedTask> AcceptTask(UserTaggerId tagger, ProjectId project);

  /// Batched join: draws up to `count` strategy-assigned tasks in one
  /// allocation pass (ChooseBatch), amortizing the project/corpus lookups.
  /// May return fewer tasks when budget runs out mid-batch; fails like
  /// AcceptTask when nothing can be drawn at all.
  Result<std::vector<AcceptedTask>> AcceptTasks(UserTaggerId tagger,
                                                ProjectId project,
                                                size_t count);

  /// Submits tags for an accepted task; they await provider approval.
  ///
  /// @param tagger  Must be the tagger that accepted `handle`
  ///                (FailedPrecondition otherwise).
  /// @param handle  An open accepted task; NotFound for never-issued or
  ///                already-submitted handles.
  /// @param raw_tags Raw texts; normalized and deduplicated here.
  ///                 InvalidArgument when nothing usable remains.
  Status SubmitTags(UserTaggerId tagger, TaskHandle handle,
                    const std::vector<std::string>& raw_tags);

  /// Batched submission: one SubmitTags per item, returning one Status per
  /// item in request order — a bad item never aborts the rest. Per-item
  /// error statuses match SubmitTags.
  std::vector<Status> SubmitTagsBatch(const std::vector<TagSubmission>& items);

  // ------------------------------------------------------------ simulation
  /// Installs the content source for platform-worker submissions.
  void SetPostSource(PostSource source) { post_source_ = std::move(source); }

  /// Installs a provider's auto-moderation policy.
  void SetApprovalPolicy(ProviderId provider, ApprovalPolicy policy);

  /// Advances simulated time by `ticks`, pumping every running
  /// platform-backed project: posting tasks, collecting submissions,
  /// auto-deciding them via the provider's policy.
  Status Step(Tick ticks);

  /// Direct manager access for tests/benchmarks.
  QualityManager& quality_manager() { return *quality_; }
  UserManager& user_manager() { return *users_; }
  TagManager& tag_manager() { return *tag_manager_; }
  ResourceManager& resource_manager() { return *resources_; }
  storage::Database& database() { return db_; }
  crowd::PaymentLedger& ledger() { return ledger_; }
  SimClock& clock() { return clock_; }

  /// Total audience tasks ever handed out through AcceptTask/AcceptTasks
  /// (persisted; the sharded layer re-derives its per-shard stats from it).
  uint64_t tasks_accepted_total() const { return tasks_accepted_total_; }

  /// The platform used by a project (nullptr for audience projects).
  crowd::CrowdPlatform* PlatformFor(ProjectId project);

  // -------------------------------------------------------- shard migration
  /// Everything one project owns, lifted out of a shard: the project row
  /// (spec, state, serialized engine), the quality feed, the corpus, the
  /// open workflow entries (accepted tasks and audience pending
  /// submissions), and the ledger spend balance. Self-contained — no
  /// storage or pointer state — so ShardedSystem can extract on one shard
  /// and adopt on another under a different local id.
  struct ProjectBundle {
    ProviderId provider = 0;
    storage::Row project_row;
    std::vector<QualityPoint> feed;
    ResourceManager::CorpusTransfer corpus;
    struct BundledAccepted {
      TaskHandle handle = 0;  ///< source-shard handle (remapped on adopt)
      tagging::ResourceId resource = 0;
      std::string uri;
      uint32_t pay_cents = 0;
      UserTaggerId tagger = 0;
    };
    std::vector<BundledAccepted> accepted;
    struct BundledPending {
      TaskHandle handle = 0;  ///< source-shard handle (remapped on adopt)
      tagging::ResourceId resource = 0;
      UserTaggerId tagger = 0;
      bool conscientious = true;
      std::vector<std::string> tags;
    };
    std::vector<BundledPending> pending;
    uint64_t ledger_spend_cents = 0;
  };

  /// Serializes project `project` (shard-local id) for migration.
  /// FailedPrecondition while the project has platform traffic in flight
  /// (posted platform tasks or platform-worker submissions awaiting
  /// decision) — those reference this shard's simulator state and cannot
  /// move; audience projects are always migratable.
  Result<ProjectBundle> ExtractProject(ProjectId project) const;

  /// Installs a bundle under the next free local project id (returned).
  /// Workflow entries are renumbered onto this shard's handle counter;
  /// `handle_map` (required) receives the (source handle, new handle)
  /// pairs so the caller can forward client-held handles.
  Result<ProjectId> AdoptProject(
      const ProjectBundle& bundle,
      std::vector<std::pair<TaskHandle, TaskHandle>>* handle_map);

  /// Removes a migrated-away project: record, corpus, workflow entries,
  /// ledger spend, and all their persisted rows. The handle counter and
  /// tasks_accepted_total() stay — they are shard history, not project
  /// state.
  Status EraseProject(ProjectId project);

 private:
  struct InFlight {
    ProjectId project = 0;
    tagging::ResourceId resource = 0;
  };

  /// One approved-but-not-yet-recorded submission of a Step tick, kept with
  /// its built post until the per-project CompletePostBatch flush; settling
  /// (payment, records) only happens after its post lands in the corpus.
  struct ApprovedItem {
    PendingSubmission sub;
    tagging::Post post;
  };
  using ApprovedPosts = std::map<ProjectId, std::vector<ApprovedItem>>;

  // ----------------------------------------------------------- persistence
  /// True when runtime state must be written through to storage.
  bool persist() const { return db_.durable(); }
  /// Everything Init does after opening the database: construct the
  /// managers in dependency order, regenerate the worker pools from the
  /// seed, restore the runtime state. Shared with Reattach.
  Status AttachManagers();
  /// Creates the workflow/ledger/sys tables and restores their contents.
  Status AttachRuntimeState();
  /// Upserts one sys key/value row.
  void PersistSys(const std::string& key, std::string value);
  /// Writes the facade scalars (next handle, accepted-task counter, clock,
  /// RNG stream) as one sys row.
  void PersistCore();
  /// Serializes one platform simulator into its sys row.
  void PersistPlatform(crowd::CrowdPlatform* platform);
  /// Write-through for the workflow maps.
  void PersistAccepted(const AcceptedTask& task, UserTaggerId tagger);
  void DeleteAccepted(TaskHandle handle);
  void PersistPending(const PendingSubmission& sub);
  void DeletePending(TaskHandle handle);
  void PersistInFlight(int platform, crowd::TaskId task,
                       const InFlight& flight);
  void DeleteInFlight(int platform, crowd::TaskId task);

  sim::GeneratedPost DefaultPostContent(ProjectId project,
                                        tagging::ResourceId resource,
                                        double reliability, Tick now);
  /// The tick loop of Step(); split out so Step can persist the runtime
  /// state after it regardless of how it returned.
  Status RunTicks(Tick target);
  Status PumpProject(ProjectId project, QualityManager::ProjectRec* rec);
  Status HandleSubmission(crowd::CrowdPlatform* platform,
                          const crowd::TaskEvent& ev, ApprovedPosts* approved);
  Status ApplyDecision(const PendingSubmission& sub, bool approve);
  /// Interns the submission's tags into a corpus post; InvalidArgument when
  /// nothing usable remains.
  Result<tagging::Post> BuildPost(const PendingSubmission& sub,
                                  tagging::Corpus* corpus);
  /// The non-corpus side of an approval: platform payout and user records.
  Status SettleApproval(const PendingSubmission& sub,
                        const QualityManager::ProjectRec* rec,
                        crowd::CrowdPlatform* platform);
  /// A rejection end-to-end: platform reject, records, refund, re-promote.
  Status ApplyRejection(const PendingSubmission& sub,
                        const QualityManager::ProjectRec* rec,
                        crowd::CrowdPlatform* platform);

  ITagSystemOptions options_;
  storage::Database db_;
  SimClock clock_;
  Rng rng_;
  crowd::PaymentLedger ledger_;
  std::unique_ptr<UserManager> users_;
  std::unique_ptr<ResourceManager> resources_;
  std::unique_ptr<TagManager> tag_manager_;
  std::unique_ptr<QualityManager> quality_;
  std::unique_ptr<crowd::MTurkSim> mturk_;
  std::unique_ptr<crowd::SocialNetSim> social_;
  PostSource post_source_;
  std::map<ProviderId, ApprovalPolicy> policies_;
  std::map<crowd::TaskId, InFlight> in_flight_mturk_;
  std::map<crowd::TaskId, InFlight> in_flight_social_;
  std::map<TaskHandle, PendingSubmission> pending_;
  std::map<TaskHandle, AcceptedTask> accepted_;
  std::map<TaskHandle, UserTaggerId> accepted_by_;
  TaskHandle next_handle_ = 1;
  uint64_t tasks_accepted_total_ = 0;
  bool initialized_ = false;

  // Write-through bookkeeping (row ids of upserted rows).
  std::map<std::pair<int, crowd::TaskId>, storage::RowId> in_flight_rows_;
  std::map<std::string, storage::RowId> sys_rows_;
  std::map<ProjectId, storage::RowId> ledger_project_rows_;
  std::map<crowd::WorkerId, storage::RowId> ledger_worker_rows_;

  /// Concurrency cap per platform-backed project.
  static constexpr size_t kMaxOpenTasksPerProject = 16;
};

}  // namespace itag::core

#endif  // ITAG_ITAG_ITAG_SYSTEM_H_
