#ifndef ITAG_QUALITY_CONVERGENCE_MODEL_H_
#define ITAG_QUALITY_CONVERGENCE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace itag::quality {

/// Online fit of the rfd convergence law for one resource.
///
/// Under multinomial posting from a fixed true distribution θ, the expected
/// distance between the empirical rfd after k posts and θ decays as
/// E[d(k)] ≈ c / sqrt(k) (CLT: each relative frequency has standard error
/// proportional to 1/sqrt(observations)). The model estimates the
/// resource-specific constant c by least squares over the observed
/// (k, d_k) pairs fed to Observe():
///
///     minimize Σ (d_j - c / sqrt(k_j))^2   =>   c = Σ d_j/√k_j / Σ 1/k_j.
///
/// From ĉ the model predicts quality at any future post count and the
/// marginal gain of one more task — the basis of iTag's "projected quality
/// gains" monitoring (§I) and of the estimated-gain greedy strategy.
class ConvergenceModel {
 public:
  ConvergenceModel() = default;

  /// Feeds one observation: after `k` posts the instability distance was
  /// `d` (in [0,1]). Observations with k < 1 are ignored.
  void Observe(uint32_t k, double d);

  /// Number of observations absorbed.
  size_t observation_count() const { return count_; }

  /// Estimated constant ĉ; falls back to `kDefaultC` until the model has at
  /// least one observation.
  double EstimateC() const;

  /// Predicted instability distance at post count k (k >= 1).
  double PredictDistance(uint32_t k) const;

  /// Predicted quality at post count k: clamp(1 - ĉ/√k).
  double PredictQuality(uint32_t k) const;

  /// Predicted gain in quality from the (k+1)-th post:
  /// PredictQuality(k+1) - PredictQuality(k). Nonnegative, decreasing in k —
  /// the diminishing-returns property the greedy allocators rely on.
  double PredictGain(uint32_t k) const;

  /// Prior constant used before any data: a fresh resource is assumed
  /// maximally unstable (d(1) = 1).
  static constexpr double kDefaultC = 1.0;

 private:
  double sum_d_over_sqrtk_ = 0.0;  // Σ d_j / sqrt(k_j)
  double sum_inv_k_ = 0.0;         // Σ 1 / k_j
  size_t count_ = 0;
};

}  // namespace itag::quality

#endif  // ITAG_QUALITY_CONVERGENCE_MODEL_H_
