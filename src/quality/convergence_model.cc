#include "quality/convergence_model.h"

#include <algorithm>
#include <cmath>

namespace itag::quality {

void ConvergenceModel::Observe(uint32_t k, double d) {
  if (k < 1) return;
  d = std::clamp(d, 0.0, 1.0);
  double sqrt_k = std::sqrt(static_cast<double>(k));
  sum_d_over_sqrtk_ += d / sqrt_k;
  sum_inv_k_ += 1.0 / static_cast<double>(k);
  ++count_;
}

double ConvergenceModel::EstimateC() const {
  if (count_ == 0 || sum_inv_k_ <= 0.0) return kDefaultC;
  return sum_d_over_sqrtk_ / sum_inv_k_;
}

double ConvergenceModel::PredictDistance(uint32_t k) const {
  if (k < 1) return 1.0;
  double d = EstimateC() / std::sqrt(static_cast<double>(k));
  return std::clamp(d, 0.0, 1.0);
}

double ConvergenceModel::PredictQuality(uint32_t k) const {
  return 1.0 - PredictDistance(k);
}

double ConvergenceModel::PredictGain(uint32_t k) const {
  double gain = PredictQuality(k + 1) - PredictQuality(k);
  return gain < 0.0 ? 0.0 : gain;
}

}  // namespace itag::quality
