#include "quality/gain_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace itag::quality {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double ExpectedQualityClosedForm(const SparseDist& theta, uint32_t k,
                                 double tags_per_post) {
  if (k == 0) return 0.0;
  double n = static_cast<double>(k) * tags_per_post;
  if (n <= 0.0) return 0.0;
  double etv = 0.0;
  for (const auto& [id, p] : theta.entries()) {
    (void)id;
    etv += 0.5 * std::sqrt(2.0 * p * (1.0 - p) / (kPi * n));
  }
  double q = 1.0 - std::min(etv, 1.0);
  return std::clamp(q, 0.0, 1.0);
}

double ExpectedQualityMonteCarlo(const SparseDist& theta, uint32_t k,
                                 uint32_t tags_per_post, uint32_t trials,
                                 Rng* rng) {
  if (k == 0 || theta.empty()) return 0.0;
  std::vector<double> weights;
  std::vector<uint32_t> ids;
  weights.reserve(theta.size());
  ids.reserve(theta.size());
  for (const auto& [id, p] : theta.entries()) {
    ids.push_back(id);
    weights.push_back(p);
  }
  AliasSampler sampler(weights);
  double acc = 0.0;
  std::vector<SparseDist::Entry> entries;
  for (uint32_t t = 0; t < trials; ++t) {
    std::vector<uint32_t> counts(ids.size(), 0);
    uint64_t draws = static_cast<uint64_t>(k) * tags_per_post;
    for (uint64_t d = 0; d < draws; ++d) {
      counts[sampler.Sample(rng)]++;
    }
    entries.clear();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (counts[i] > 0) {
        entries.emplace_back(ids[i], static_cast<double>(counts[i]));
      }
    }
    SparseDist rfd = SparseDist::FromWeights(entries);
    acc += 1.0 - TotalVariation(rfd, theta);
  }
  return acc / static_cast<double>(trials);
}

OracleGainEstimator::OracleGainEstimator(std::vector<SparseDist> truth,
                                         std::vector<uint32_t> initial_posts,
                                         double tags_per_post)
    : truth_(std::move(truth)),
      initial_posts_(std::move(initial_posts)),
      tags_per_post_(tags_per_post) {
  assert(truth_.size() == initial_posts_.size());
  assert(tags_per_post_ > 0.0);
}

double OracleGainEstimator::ExpectedQuality(uint32_t resource,
                                            uint32_t extra) const {
  assert(resource < truth_.size());
  return ExpectedQualityClosedForm(truth_[resource],
                                   initial_posts_[resource] + extra,
                                   tags_per_post_);
}

double OracleGainEstimator::MarginalGain(uint32_t resource,
                                         uint32_t extra) const {
  double g = ExpectedQuality(resource, extra + 1) -
             ExpectedQuality(resource, extra);
  return g < 0.0 ? 0.0 : g;
}

EmpiricalGainEstimator::EmpiricalGainEstimator(double alpha,
                                               double tags_per_post)
    : alpha_(alpha), tags_per_post_(tags_per_post) {
  assert(alpha_ >= 0.0);
  assert(tags_per_post_ > 0.0);
}

SparseDist EmpiricalGainEstimator::EstimateTheta(
    const tagging::TagStats& stats) const {
  const SparseDist& rfd = stats.Rfd();
  if (rfd.empty()) return rfd;
  double total = static_cast<double>(stats.tag_occurrences());
  double m = static_cast<double>(stats.distinct_tags());
  std::vector<SparseDist::Entry> entries;
  entries.reserve(rfd.size());
  for (const auto& [id, p] : rfd.entries()) {
    double count = p * total;
    entries.emplace_back(id, count + alpha_);
  }
  (void)m;
  return SparseDist::FromWeights(std::move(entries));
}

double EmpiricalGainEstimator::MarginalGain(
    const tagging::TagStats& stats) const {
  uint32_t k = stats.post_count();
  if (k == 0) return 1.0;
  SparseDist theta = EstimateTheta(stats);
  double now = ExpectedQualityClosedForm(theta, k, tags_per_post_);
  double next = ExpectedQualityClosedForm(theta, k + 1, tags_per_post_);
  double g = next - now;
  return g < 0.0 ? 0.0 : g;
}

}  // namespace itag::quality
