#ifndef ITAG_QUALITY_GAIN_ESTIMATOR_H_
#define ITAG_QUALITY_GAIN_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/distribution.h"
#include "common/random.h"
#include "tagging/tag_stats.h"

namespace itag::quality {

/// Expected ground-truth quality E[q*(k)] = 1 - E[TV(rfd_k, θ)] for a
/// resource whose posts draw `tags_per_post` tags i.i.d. from θ, computed by
/// the folded-normal closed form:
///
///   E|p̂_j - θ_j| ≈ sqrt(2 θ_j (1-θ_j) / (π N)),   N = k * tags_per_post,
///   E[TV] = 0.5 Σ_j E|p̂_j - θ_j|.
///
/// The approximation is the standard CLT estimate, accurate for N θ_j ≳ 1
/// and conservative below; it gives smooth, strictly concave quality curves.
/// Returns 0 for k == 0.
double ExpectedQualityClosedForm(const SparseDist& theta, uint32_t k,
                                 double tags_per_post);

/// Monte-Carlo estimate of the same quantity: simulates `trials` independent
/// histories of k posts with `tags_per_post` tags drawn from θ (alias
/// sampling) and averages 1 - TV(rfd, θ). Used in tests to validate the
/// closed form and by the oracle when exactness matters more than speed.
double ExpectedQualityMonteCarlo(const SparseDist& theta, uint32_t k,
                                 uint32_t tags_per_post, uint32_t trials,
                                 Rng* rng);

/// Oracle gain curves for the optimal-allocation comparison: the simulator
/// hands this estimator every resource's true θ_i; it produces the expected
/// marginal quality gain of the x-th additional task for each resource.
/// Gains are precomputed lazily and cached per resource.
class OracleGainEstimator {
 public:
  /// `truth[i]` is θ of resource i; `initial_posts[i]` is c_i;
  /// `tags_per_post` the mean tags a task contributes.
  OracleGainEstimator(std::vector<SparseDist> truth,
                      std::vector<uint32_t> initial_posts,
                      double tags_per_post);

  /// Expected quality of resource i after c_i + extra posts.
  double ExpectedQuality(uint32_t resource, uint32_t extra) const;

  /// Marginal gain of granting resource i its (extra+1)-th additional task:
  /// ExpectedQuality(i, extra+1) - ExpectedQuality(i, extra).
  double MarginalGain(uint32_t resource, uint32_t extra) const;

  size_t num_resources() const { return truth_.size(); }
  uint32_t initial_posts(uint32_t resource) const {
    return initial_posts_[resource];
  }

 private:
  std::vector<SparseDist> truth_;
  std::vector<uint32_t> initial_posts_;
  double tags_per_post_;
};

/// Data-driven gain estimator available to the live system (no ground
/// truth): plugs the observed tag counts into a Dirichlet-smoothed point
/// estimate θ̂ (counts + α over total + α·m) and applies the same closed
/// form. This powers the EstimatedGainGreedy strategy and the projected
/// quality gains shown to providers.
class EmpiricalGainEstimator {
 public:
  /// `alpha` is the Dirichlet smoothing pseudo-count per observed tag;
  /// `tags_per_post` the assumed mean tags per future post.
  explicit EmpiricalGainEstimator(double alpha = 0.5,
                                  double tags_per_post = 3.0);

  /// Expected marginal quality gain of one more post for a resource with the
  /// given statistics. Resources with no posts yet get the maximal gain 1.0
  /// (cold start: first evidence is always worth the most).
  double MarginalGain(const tagging::TagStats& stats) const;

  /// θ̂ reconstructed from observed counts (exposed for tests).
  SparseDist EstimateTheta(const tagging::TagStats& stats) const;

 private:
  double alpha_;
  double tags_per_post_;
};

}  // namespace itag::quality

#endif  // ITAG_QUALITY_GAIN_ESTIMATOR_H_
