#include "quality/quality_model.h"

#include <algorithm>
#include <cassert>

namespace itag::quality {

double QualityModel::CorpusQuality(const tagging::Corpus& corpus) const {
  if (corpus.size() == 0) return 0.0;
  double total = 0.0;
  for (tagging::ResourceId id = 0; id < corpus.size(); ++id) {
    total += ResourceQuality(id, corpus.stats(id));
  }
  return total / static_cast<double>(corpus.size());
}

size_t QualityModel::CountAboveThreshold(const tagging::Corpus& corpus,
                                         double threshold) const {
  size_t n = 0;
  for (tagging::ResourceId id = 0; id < corpus.size(); ++id) {
    if (ResourceQuality(id, corpus.stats(id)) >= threshold) ++n;
  }
  return n;
}

StabilityQuality::StabilityQuality(StabilityQualityOptions options)
    : options_(options) {
  assert(options_.min_posts >= 2);
  if (options_.window == 0) options_.window = 1;
}

double StabilityQuality::ResourceQuality(
    tagging::ResourceId /*id*/, const tagging::TagStats& stats) const {
  if (stats.post_count() < options_.min_posts) return 0.0;
  size_t max_lag = std::min<size_t>(
      {options_.window, stats.post_count() - 1, stats.history_window()});
  if (max_lag == 0) return 0.0;
  double acc = 0.0;
  for (size_t j = 1; j <= max_lag; ++j) {
    acc += stats.StabilityDistance(options_.distance, j);
  }
  double q = 1.0 - acc / static_cast<double>(max_lag);
  return std::clamp(q, 0.0, 1.0);
}

GroundTruthQuality::GroundTruthQuality(std::vector<SparseDist> truth,
                                       DistanceKind distance)
    : truth_(std::move(truth)), distance_(distance) {}

double GroundTruthQuality::ResourceQuality(
    tagging::ResourceId id, const tagging::TagStats& stats) const {
  assert(id < truth_.size());
  if (stats.post_count() == 0) return 0.0;
  double q = 1.0 - Distance(distance_, stats.Rfd(), truth_[id]);
  return std::clamp(q, 0.0, 1.0);
}

}  // namespace itag::quality
