#ifndef ITAG_QUALITY_QUALITY_MODEL_H_
#define ITAG_QUALITY_QUALITY_MODEL_H_

#include <memory>
#include <vector>

#include "common/distribution.h"
#include "tagging/corpus.h"

namespace itag::quality {

/// Interface for the per-resource quality metric q_i(k_i) of §II. A quality
/// is always in [0, 1]; corpus quality q(R, k) is the plain average over all
/// resources (the paper's definition).
class QualityModel {
 public:
  virtual ~QualityModel() = default;

  /// Quality of resource `id` given its current statistics.
  virtual double ResourceQuality(tagging::ResourceId id,
                                 const tagging::TagStats& stats) const = 0;

  /// q(R, k): average resource quality over the corpus.
  double CorpusQuality(const tagging::Corpus& corpus) const;

  /// Number of resources with quality >= threshold (the MU strategy's
  /// objective of "resources that satisfy a certain quality requirement").
  size_t CountAboveThreshold(const tagging::Corpus& corpus,
                             double threshold) const;
};

/// Options for the stability-based quality metric.
struct StabilityQualityOptions {
  /// Distance between rfd snapshots.
  DistanceKind distance = DistanceKind::kTotalVariation;

  /// Stability window: the metric averages d(rfd_k, rfd_{k-j}) over lags
  /// j = 1..window (clamped to available history).
  size_t window = 8;

  /// Resources with fewer than this many posts are pinned to quality 0 —
  /// no stability evidence exists yet. Must be >= 2.
  uint32_t min_posts = 2;
};

/// The operational quality metric of [4]: quality is the degree to which the
/// resource's relative tag-frequency distribution has stopped moving.
/// q_i(k) = 1 - mean_{j=1..w} d(rfd_i(k), rfd_i(k-j)), clamped to [0,1].
/// This is computable from observed posts alone (no ground truth), which is
/// what the live iTag system monitors and the MU strategy consumes.
class StabilityQuality : public QualityModel {
 public:
  explicit StabilityQuality(StabilityQualityOptions options = {});

  double ResourceQuality(tagging::ResourceId id,
                         const tagging::TagStats& stats) const override;

  const StabilityQualityOptions& options() const { return options_; }

 private:
  StabilityQualityOptions options_;
};

/// Evaluation-only metric available inside the simulator, where each
/// resource's true tag distribution θ_i is known:
/// q*_i(k) = 1 - d(rfd_i(k), θ_i). This is what the demo's offline Delicious
/// replay measures (held-out posts reveal the converged distribution).
class GroundTruthQuality : public QualityModel {
 public:
  /// `truth[i]` is θ for resource id i.
  GroundTruthQuality(std::vector<SparseDist> truth,
                     DistanceKind distance = DistanceKind::kTotalVariation);

  double ResourceQuality(tagging::ResourceId id,
                         const tagging::TagStats& stats) const override;

  /// The true distribution of a resource.
  const SparseDist& truth(tagging::ResourceId id) const { return truth_[id]; }

  DistanceKind distance() const { return distance_; }

 private:
  std::vector<SparseDist> truth_;
  DistanceKind distance_;
};

}  // namespace itag::quality

#endif  // ITAG_QUALITY_QUALITY_MODEL_H_
