#ifndef ITAG_CROWD_LEDGER_H_
#define ITAG_CROWD_LEDGER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "crowd/task.h"

namespace itag::crowd {

/// Double-entry-lite payment ledger: approved tasks move money from the
/// project's spend account to the worker's balance (the "unit of incentive"
/// the Quality Manager releases on approval, §III-B). Rejected tasks cost
/// nothing — the provider-side approval workflow exists precisely so
/// providers only pay for accepted tags.
class PaymentLedger {
 public:
  /// Records an approved payment of `cents` from `project` to `worker`.
  void Pay(ProjectRef project, WorkerId worker, uint32_t cents);

  /// Total paid out by a project.
  uint64_t ProjectSpend(ProjectRef project) const;

  /// Total earned by a worker.
  uint64_t WorkerEarnings(WorkerId worker) const;

  /// Grand total of all payments.
  uint64_t TotalPaid() const { return total_; }

  /// Number of payment records.
  size_t PaymentCount() const { return count_; }

  /// Observer invoked after every Pay() with the payment just applied. The
  /// iTag layer hooks this to write the updated balances through to the
  /// storage engine (the crowd layer itself stays storage-agnostic). Pass
  /// nullptr to detach.
  using PaySink = std::function<void(ProjectRef, WorkerId, uint32_t)>;
  void set_pay_sink(PaySink sink) { sink_ = std::move(sink); }

  /// Migration entry points: move a project's spend account between
  /// ledgers wholesale (shard rebalancing). DropProjectSpend removes the
  /// account and returns its balance; AdoptProjectSpend installs it on the
  /// receiving ledger. Both keep total_ consistent so TotalPaid() summed
  /// across shards is invariant under migration; count_ stays put (payment
  /// *events* are history owned by the shard where they happened). Neither
  /// fires the sink — the caller persists the transfer itself.
  uint64_t DropProjectSpend(ProjectRef project) {
    auto it = project_spend_.find(project);
    if (it == project_spend_.end()) return 0;
    uint64_t cents = it->second;
    project_spend_.erase(it);
    total_ -= cents;
    return cents;
  }
  void AdoptProjectSpend(ProjectRef project, uint64_t cents) {
    if (cents == 0) return;
    project_spend_[project] += cents;
    total_ += cents;
  }

  /// Recovery entry points: reinstate balances read back from storage.
  /// Bypass the sink (the rows being restored already exist).
  void RestoreProjectSpend(ProjectRef project, uint64_t cents) {
    project_spend_[project] = cents;
  }
  void RestoreWorkerEarnings(WorkerId worker, uint64_t cents) {
    worker_earnings_[worker] = cents;
  }
  void RestoreTotals(uint64_t total, uint64_t count) {
    total_ = total;
    count_ = count;
  }

 private:
  std::unordered_map<ProjectRef, uint64_t> project_spend_;
  std::unordered_map<WorkerId, uint64_t> worker_earnings_;
  uint64_t total_ = 0;
  size_t count_ = 0;
  PaySink sink_;
};

}  // namespace itag::crowd

#endif  // ITAG_CROWD_LEDGER_H_
