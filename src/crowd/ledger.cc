#include "crowd/ledger.h"

namespace itag::crowd {

void PaymentLedger::Pay(ProjectRef project, WorkerId worker, uint32_t cents) {
  project_spend_[project] += cents;
  worker_earnings_[worker] += cents;
  total_ += cents;
  ++count_;
  if (sink_) sink_(project, worker, cents);
}

uint64_t PaymentLedger::ProjectSpend(ProjectRef project) const {
  auto it = project_spend_.find(project);
  return it == project_spend_.end() ? 0 : it->second;
}

uint64_t PaymentLedger::WorkerEarnings(WorkerId worker) const {
  auto it = worker_earnings_.find(worker);
  return it == worker_earnings_.end() ? 0 : it->second;
}

}  // namespace itag::crowd
