#ifndef ITAG_CROWD_SIM_PLATFORM_BASE_H_
#define ITAG_CROWD_SIM_PLATFORM_BASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/binio.h"
#include "crowd/ledger.h"
#include "crowd/platform.h"

namespace itag::crowd {

/// Shared bookkeeping for the discrete-event platform simulators: task
/// records and lifecycle transitions, worker approval statistics, and the
/// payment hookup. Subclasses implement only the marketplace dynamics
/// (AdvanceTo) that decide which worker takes which task when.
class SimPlatformBase : public CrowdPlatform {
 public:
  /// `workers` seeds the pool; `ledger` (optional, may be null) receives a
  /// payment on every approval.
  SimPlatformBase(std::vector<WorkerProfile> workers, PaymentLedger* ledger);

  Result<TaskId> PostTask(const TaskSpec& spec) override;
  Status CancelTask(TaskId id) override;
  Status Approve(TaskId id) override;
  Status Reject(TaskId id) override;
  Result<TaskState> GetTaskState(TaskId id) const override;
  Result<WorkerStats> GetWorkerStats(WorkerId id) const override;
  size_t OpenTaskCount() const override { return open_.size(); }
  size_t PendingDecisionCount() const override { return pending_; }

  /// The worker pool (tests and the tagger model key off profiles).
  const std::vector<WorkerProfile>& worker_profiles() const override {
    return workers_;
  }

  /// Serializes the simulator's complete mutable state (task records,
  /// worker statistics, clock, id counter, plus whatever the subclass adds
  /// via EncodeExtra — RNG stream, exposure sets). The worker *pool* is not
  /// included: it is regenerated from the seed at construction, so a blob
  /// restored into an identically-configured simulator resumes the
  /// marketplace bit-exactly. Used by the persistence layer.
  std::string EncodeState() const;

  /// Restores a blob produced by EncodeState on an identically-configured
  /// simulator (same worker pool). False on malformed input, in which case
  /// the simulator state is unspecified and must be discarded.
  bool RestoreState(const std::string& blob);

 protected:
  /// Subclass state riding the EncodeState blob (RNG position, exposure).
  virtual void EncodeExtra(ByteWriter* w) const = 0;
  virtual bool DecodeExtra(ByteReader* r) = 0;
  struct TaskRec {
    TaskSpec spec;
    TaskState state = TaskState::kOpen;
    WorkerId worker = kNoWorker;
    Tick accepted_at = 0;
    Tick completes_at = 0;
  };

  /// Marks `id` accepted by `worker` at `now`, finishing at `completes`.
  void MarkAccepted(TaskId id, WorkerId worker, Tick now, Tick completes,
                    std::vector<TaskEvent>* events);

  /// Marks `id` submitted at `now`.
  void MarkSubmitted(TaskId id, Tick now, std::vector<TaskEvent>* events);

  /// What an accepted task's worker is doing right now. Shared by both
  /// marketplace simulators; fully derivable from `tasks_` (RestoreState
  /// rebuilds it via RebuildWorkerState).
  struct WorkerState {
    bool busy = false;
    TaskId task = 0;
    Tick busy_until = 0;
  };

  /// Recomputes `state_` (and `open_`, `pending_`) from `tasks_`.
  void RebuildWorkerState();

  std::map<TaskId, TaskRec> tasks_;
  /// Open tasks ordered by (pay descending, id ascending): the order
  /// pay-sensitive workers browse in.
  std::set<std::pair<int64_t, TaskId>> open_;
  std::vector<WorkerProfile> workers_;
  std::vector<WorkerStats> stats_;
  std::vector<WorkerState> state_;
  PaymentLedger* ledger_;
  TaskId next_task_ = 1;
  size_t pending_ = 0;
  Tick now_ = 0;
};

}  // namespace itag::crowd

#endif  // ITAG_CROWD_SIM_PLATFORM_BASE_H_
