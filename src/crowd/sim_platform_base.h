#ifndef ITAG_CROWD_SIM_PLATFORM_BASE_H_
#define ITAG_CROWD_SIM_PLATFORM_BASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "crowd/ledger.h"
#include "crowd/platform.h"

namespace itag::crowd {

/// Shared bookkeeping for the discrete-event platform simulators: task
/// records and lifecycle transitions, worker approval statistics, and the
/// payment hookup. Subclasses implement only the marketplace dynamics
/// (AdvanceTo) that decide which worker takes which task when.
class SimPlatformBase : public CrowdPlatform {
 public:
  /// `workers` seeds the pool; `ledger` (optional, may be null) receives a
  /// payment on every approval.
  SimPlatformBase(std::vector<WorkerProfile> workers, PaymentLedger* ledger);

  Result<TaskId> PostTask(const TaskSpec& spec) override;
  Status CancelTask(TaskId id) override;
  Status Approve(TaskId id) override;
  Status Reject(TaskId id) override;
  Result<TaskState> GetTaskState(TaskId id) const override;
  Result<WorkerStats> GetWorkerStats(WorkerId id) const override;
  size_t OpenTaskCount() const override { return open_.size(); }
  size_t PendingDecisionCount() const override { return pending_; }

  /// The worker pool (tests and the tagger model key off profiles).
  const std::vector<WorkerProfile>& worker_profiles() const override {
    return workers_;
  }

 protected:
  struct TaskRec {
    TaskSpec spec;
    TaskState state = TaskState::kOpen;
    WorkerId worker = kNoWorker;
    Tick accepted_at = 0;
    Tick completes_at = 0;
  };

  /// Marks `id` accepted by `worker` at `now`, finishing at `completes`.
  void MarkAccepted(TaskId id, WorkerId worker, Tick now, Tick completes,
                    std::vector<TaskEvent>* events);

  /// Marks `id` submitted at `now`.
  void MarkSubmitted(TaskId id, Tick now, std::vector<TaskEvent>* events);

  std::map<TaskId, TaskRec> tasks_;
  /// Open tasks ordered by (pay descending, id ascending): the order
  /// pay-sensitive workers browse in.
  std::set<std::pair<int64_t, TaskId>> open_;
  std::vector<WorkerProfile> workers_;
  std::vector<WorkerStats> stats_;
  PaymentLedger* ledger_;
  TaskId next_task_ = 1;
  size_t pending_ = 0;
  Tick now_ = 0;
};

}  // namespace itag::crowd

#endif  // ITAG_CROWD_SIM_PLATFORM_BASE_H_
