#ifndef ITAG_CROWD_PLATFORM_H_
#define ITAG_CROWD_PLATFORM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crowd/task.h"
#include "crowd/worker.h"

namespace itag::crowd {

/// The platform API surface iTag depends on (Fig. 1/2): post tasks, cancel
/// them, advance marketplace time collecting accept/submit events, and close
/// the loop with approve/reject decisions. MTurkSim and SocialNetSim
/// implement this; a live deployment would wire the same interface to the
/// real MTurk REST API.
class CrowdPlatform {
 public:
  virtual ~CrowdPlatform() = default;

  /// Platform display name ("mturk-sim", "social-sim").
  virtual std::string name() const = 0;

  /// Publishes a task; returns its platform id.
  virtual Result<TaskId> PostTask(const TaskSpec& spec) = 0;

  /// Withdraws an Open task (Accepted and later states cannot be recalled).
  virtual Status CancelTask(TaskId id) = 0;

  /// Advances the marketplace to `now`, returning every accept/submit event
  /// that occurred, in time order. Idempotent for now <= previous now.
  virtual std::vector<TaskEvent> AdvanceTo(Tick now) = 0;

  /// Requester decision on a Submitted task. Updates worker approval stats;
  /// approval also releases payment (recorded by the platform's ledger
  /// integration, if any).
  virtual Status Approve(TaskId id) = 0;
  virtual Status Reject(TaskId id) = 0;

  /// State inspection (monitoring, tests).
  virtual Result<TaskState> GetTaskState(TaskId id) const = 0;
  virtual Result<WorkerStats> GetWorkerStats(WorkerId id) const = 0;

  /// Number of tasks currently Open (unaccepted).
  virtual size_t OpenTaskCount() const = 0;

  /// Number of tasks currently Submitted (awaiting decision).
  virtual size_t PendingDecisionCount() const = 0;

  /// The simulated worker pool. This interface models *simulated* platforms
  /// (the tagger model needs each worker's reliability to synthesize their
  /// submissions); a live MTurk connector would return an empty pool since
  /// real humans produce the work.
  virtual const std::vector<WorkerProfile>& worker_profiles() const = 0;
};

}  // namespace itag::crowd

#endif  // ITAG_CROWD_PLATFORM_H_
