#ifndef ITAG_CROWD_TASK_H_
#define ITAG_CROWD_TASK_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace itag::crowd {

/// Platform-assigned task (HIT) identifier.
using TaskId = uint64_t;

/// Worker identifier within a platform's pool.
using WorkerId = uint32_t;

/// Sentinel for "no worker".
inline constexpr WorkerId kNoWorker = 0xFFFFFFFFu;

/// Project identifier (mirrors itag::ProjectId; kept as a raw integer here
/// so the crowd layer stays independent of the iTag layer).
using ProjectRef = uint64_t;

/// Lifecycle of a task on a crowdsourcing platform:
///   Open -> Accepted -> Submitted -> Approved | Rejected
/// with Open -> Cancelled available to the requester (Stop button) and
/// Rejected tasks being reposted by iTag if budget remains.
enum class TaskState : uint8_t {
  kOpen = 0,
  kAccepted = 1,
  kSubmitted = 2,
  kApproved = 3,
  kRejected = 4,
  kCancelled = 5,
};

/// Task state name ("open", "accepted", ...).
inline const char* TaskStateName(TaskState s) {
  switch (s) {
    case TaskState::kOpen:
      return "open";
    case TaskState::kAccepted:
      return "accepted";
    case TaskState::kSubmitted:
      return "submitted";
    case TaskState::kApproved:
      return "approved";
    case TaskState::kRejected:
      return "rejected";
    case TaskState::kCancelled:
      return "cancelled";
  }
  return "?";
}

/// What a requester posts: "tag resource X of project P for `pay_cents`".
struct TaskSpec {
  ProjectRef project = 0;
  uint32_t resource = 0;    ///< opaque to the platform
  uint32_t pay_cents = 5;   ///< incentive per task (pay/task of Fig. 4)
  double requester_approval_rate = 1.0;  ///< shown to workers (§III-A)
};

/// Events surfaced to the requester while the platform simulator advances.
enum class TaskEventKind : uint8_t {
  kAccepted = 0,   ///< a worker took the task
  kSubmitted = 1,  ///< the worker handed in work; awaiting approval
};

/// One platform event.
struct TaskEvent {
  TaskEventKind kind;
  Tick time = 0;
  TaskId task = 0;
  WorkerId worker = kNoWorker;
};

}  // namespace itag::crowd

#endif  // ITAG_CROWD_TASK_H_
