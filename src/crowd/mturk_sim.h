#ifndef ITAG_CROWD_MTURK_SIM_H_
#define ITAG_CROWD_MTURK_SIM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "crowd/sim_platform_base.h"

namespace itag::crowd {

/// Marketplace parameters of the MTurk-style simulator.
struct MTurkSimOptions {
  /// Workers whose approval rate falls below this are barred from accepting
  /// further tasks — the qualification guarantee the User Manager relies on
  /// ("approval rate of taggers from crowdsourcing platforms are at a
  /// reliable level", §III-A). A worker needs at least
  /// `qualification_min_decisions` decided tasks before the bar applies.
  double qualification_min_approval = 0.5;
  uint32_t qualification_min_decisions = 5;

  uint64_t seed = 7;
};

/// Discrete-event simulator of an MTurk-like open marketplace:
///  * per tick, each idle worker browses with probability `activity`;
///  * a browsing worker scans open tasks in descending-pay order and takes
///    the first one satisfying their pay floor and requester-approval floor
///    (pay-ranked choice is the dominant observed MTurk behaviour);
///  * an accepted task completes after an exponential service time, then
///    surfaces as a Submitted event for the requester to approve/reject.
class MTurkSim : public SimPlatformBase {
 public:
  MTurkSim(std::vector<WorkerProfile> workers, PaymentLedger* ledger,
           MTurkSimOptions options = {});

  std::string name() const override { return "mturk-sim"; }

  std::vector<TaskEvent> AdvanceTo(Tick now) override;

 protected:
  void EncodeExtra(ByteWriter* w) const override;
  bool DecodeExtra(ByteReader* r) override;

 private:
  bool WorkerQualified(WorkerId w) const;
  /// Picks the task `w` would accept at `now`, or 0 when none suits.
  TaskId BrowseFor(WorkerId w) const;

  MTurkSimOptions options_;
  Rng rng_;
};

}  // namespace itag::crowd

#endif  // ITAG_CROWD_MTURK_SIM_H_
