#include "crowd/worker.h"

#include <algorithm>

namespace itag::crowd {

std::vector<WorkerProfile> GenerateWorkerPool(const WorkerPoolConfig& config,
                                              Rng* rng) {
  std::vector<WorkerProfile> pool;
  pool.reserve(config.num_workers);
  for (uint32_t i = 0; i < config.num_workers; ++i) {
    WorkerProfile w;
    w.id = i;
    bool spammer = rng->Bernoulli(config.spammer_fraction);
    double base =
        spammer ? config.spammer_reliability : config.good_reliability;
    w.reliability = std::clamp(
        base + rng->Normal(0.0, config.reliability_jitter), 0.01, 0.999);
    // Service time and activity vary by +/-50% across the pool.
    w.mean_service_ticks =
        config.mean_service_ticks * (0.5 + rng->NextDouble());
    w.activity = std::clamp(config.activity * (0.5 + rng->NextDouble()),
                            0.01, 1.0);
    pool.push_back(w);
  }
  return pool;
}

}  // namespace itag::crowd
