#include "crowd/social_sim.h"

#include <algorithm>
#include <cmath>

namespace itag::crowd {

SocialNetSim::SocialNetSim(std::vector<WorkerProfile> workers,
                           PaymentLedger* ledger, SocialNetSimOptions options)
    : SimPlatformBase(std::move(workers), ledger),
      options_(options),
      rng_(options.seed) {
  BuildGraph();
}

void SocialNetSim::EncodeExtra(ByteWriter* w) const {
  RngState rng = rng_.SaveState();
  w->U64(rng.state);
  w->U64(rng.inc);
  // The graph is rebuilt from the seed at construction; only the viral
  // exposure state needs to travel. Unordered containers are serialized in
  // sorted order so identical states encode to identical blobs.
  std::vector<ProjectRef> seeded(seeded_.begin(), seeded_.end());
  std::sort(seeded.begin(), seeded.end());
  w->U32(static_cast<uint32_t>(seeded.size()));
  for (ProjectRef p : seeded) w->U64(p);
  std::vector<ProjectRef> projects;
  projects.reserve(exposed_.size());
  for (const auto& [project, who] : exposed_) {
    (void)who;
    projects.push_back(project);
  }
  std::sort(projects.begin(), projects.end());
  w->U32(static_cast<uint32_t>(projects.size()));
  for (ProjectRef p : projects) {
    const std::unordered_set<WorkerId>& who = exposed_.at(p);
    std::vector<WorkerId> sorted(who.begin(), who.end());
    std::sort(sorted.begin(), sorted.end());
    w->U64(p);
    w->U32(static_cast<uint32_t>(sorted.size()));
    for (WorkerId id : sorted) w->U32(id);
  }
}

bool SocialNetSim::DecodeExtra(ByteReader* r) {
  RngState rng;
  uint32_t n_seeded;
  if (!r->U64(&rng.state) || !r->U64(&rng.inc) || !r->U32(&n_seeded)) {
    return false;
  }
  std::unordered_set<ProjectRef> seeded;
  for (uint32_t i = 0; i < n_seeded; ++i) {
    ProjectRef p;
    if (!r->U64(&p)) return false;
    seeded.insert(p);
  }
  uint32_t n_projects;
  if (!r->U32(&n_projects)) return false;
  std::unordered_map<ProjectRef, std::unordered_set<WorkerId>> exposed;
  for (uint32_t i = 0; i < n_projects; ++i) {
    ProjectRef p;
    uint32_t n_workers;
    if (!r->U64(&p) || !r->U32(&n_workers)) return false;
    std::unordered_set<WorkerId>& who = exposed[p];
    for (uint32_t j = 0; j < n_workers; ++j) {
      WorkerId id;
      if (!r->U32(&id)) return false;
      who.insert(id);
    }
  }
  rng_.RestoreState(rng);
  seeded_ = std::move(seeded);
  exposed_ = std::move(exposed);
  return true;
}

void SocialNetSim::BuildGraph() {
  size_t n = workers_.size();
  graph_.assign(n, {});
  if (n < 2) return;
  // Ring lattice with k neighbours per side, then rewiring (Watts-Strogatz).
  for (WorkerId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= options_.ring_neighbors; ++j) {
      WorkerId v = static_cast<WorkerId>((u + j) % n);
      if (rng_.Bernoulli(options_.rewire_prob)) {
        // Rewire to a uniform random non-self target.
        v = static_cast<WorkerId>(rng_.Uniform(static_cast<uint32_t>(n)));
        if (v == u) v = static_cast<WorkerId>((u + 1) % n);
      }
      graph_[u].push_back(v);
      graph_[v].push_back(u);
    }
  }
}

void SocialNetSim::Expose(ProjectRef project, WorkerId w) {
  exposed_[project].insert(w);
}

void SocialNetSim::SeedExposure(ProjectRef project) {
  if (seeded_.count(project)) return;
  seeded_.insert(project);
  size_t n = workers_.size();
  size_t want = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(options_.seed_exposure * n)));
  for (size_t i = 0; i < want && i < n; ++i) {
    Expose(project,
           static_cast<WorkerId>(rng_.Uniform(static_cast<uint32_t>(n))));
  }
}

size_t SocialNetSim::ExposedCount(ProjectRef project) const {
  auto it = exposed_.find(project);
  return it == exposed_.end() ? 0 : it->second.size();
}

TaskId SocialNetSim::BrowseFor(WorkerId w) const {
  const WorkerProfile& prof = workers_[w];
  for (const auto& [neg_pay, id] : open_) {
    uint32_t pay = static_cast<uint32_t>(-neg_pay);
    if (pay < prof.min_pay_cents) break;
    const TaskRec& rec = tasks_.at(id);
    auto it = exposed_.find(rec.spec.project);
    if (it == exposed_.end() || !it->second.count(w)) continue;
    if (rec.spec.requester_approval_rate < prof.min_requester_approval) {
      continue;
    }
    return id;
  }
  return 0;
}

std::vector<TaskEvent> SocialNetSim::AdvanceTo(Tick now) {
  std::vector<TaskEvent> events;
  while (now_ < now) {
    ++now_;
    // Seed exposure for any project with open tasks that hasn't been seeded.
    for (const auto& [neg_pay, id] : open_) {
      (void)neg_pay;
      SeedExposure(tasks_.at(id).spec.project);
    }
    // Completions; submitting shares the project with friends.
    for (WorkerId w = 0; w < state_.size(); ++w) {
      WorkerState& ws = state_[w];
      if (ws.busy && ws.busy_until <= now_) {
        ProjectRef project = tasks_.at(ws.task).spec.project;
        MarkSubmitted(ws.task, now_, &events);
        ws.busy = false;
        ws.task = 0;
        for (WorkerId f : graph_[w]) {
          if (rng_.Bernoulli(options_.share_prob)) Expose(project, f);
        }
      }
    }
    // Exposed idle workers browse.
    if (!open_.empty()) {
      for (WorkerId w = 0; w < state_.size(); ++w) {
        if (open_.empty()) break;
        WorkerState& ws = state_[w];
        if (ws.busy) continue;
        if (!rng_.Bernoulli(workers_[w].activity)) continue;
        TaskId id = BrowseFor(w);
        if (id == 0) continue;
        double service = rng_.Exponential(
            1.0 / std::max(1.0, workers_[w].mean_service_ticks));
        Tick completes = now_ + 1 + static_cast<Tick>(service);
        MarkAccepted(id, w, now_, completes, &events);
        ws.busy = true;
        ws.task = id;
        ws.busy_until = completes;
      }
    }
  }
  return events;
}

}  // namespace itag::crowd
