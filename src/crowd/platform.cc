#include "crowd/sim_platform_base.h"

namespace itag::crowd {

SimPlatformBase::SimPlatformBase(std::vector<WorkerProfile> workers,
                                 PaymentLedger* ledger)
    : workers_(std::move(workers)),
      stats_(workers_.size()),
      state_(workers_.size()),
      ledger_(ledger) {}

Result<TaskId> SimPlatformBase::PostTask(const TaskSpec& spec) {
  TaskId id = next_task_++;
  TaskRec rec;
  rec.spec = spec;
  tasks_.emplace(id, rec);
  open_.emplace(-static_cast<int64_t>(spec.pay_cents), id);
  return id;
}

Status SimPlatformBase::CancelTask(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  if (it->second.state != TaskState::kOpen) {
    return Status::FailedPrecondition(
        std::string("task is ") + TaskStateName(it->second.state));
  }
  open_.erase({-static_cast<int64_t>(it->second.spec.pay_cents), id});
  it->second.state = TaskState::kCancelled;
  return Status::OK();
}

Status SimPlatformBase::Approve(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  TaskRec& rec = it->second;
  if (rec.state != TaskState::kSubmitted) {
    return Status::FailedPrecondition(
        std::string("task is ") + TaskStateName(rec.state));
  }
  rec.state = TaskState::kApproved;
  --pending_;
  if (rec.worker < stats_.size()) ++stats_[rec.worker].approved;
  if (ledger_ != nullptr) {
    ledger_->Pay(rec.spec.project, rec.worker, rec.spec.pay_cents);
  }
  return Status::OK();
}

Status SimPlatformBase::Reject(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  TaskRec& rec = it->second;
  if (rec.state != TaskState::kSubmitted) {
    return Status::FailedPrecondition(
        std::string("task is ") + TaskStateName(rec.state));
  }
  rec.state = TaskState::kRejected;
  --pending_;
  if (rec.worker < stats_.size()) ++stats_[rec.worker].rejected;
  return Status::OK();
}

Result<TaskState> SimPlatformBase::GetTaskState(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  return it->second.state;
}

Result<WorkerStats> SimPlatformBase::GetWorkerStats(WorkerId id) const {
  if (id >= stats_.size()) {
    return Status::NotFound("worker " + std::to_string(id));
  }
  return stats_[id];
}

void SimPlatformBase::MarkAccepted(TaskId id, WorkerId worker, Tick now,
                                   Tick completes,
                                   std::vector<TaskEvent>* events) {
  TaskRec& rec = tasks_.at(id);
  open_.erase({-static_cast<int64_t>(rec.spec.pay_cents), id});
  rec.state = TaskState::kAccepted;
  rec.worker = worker;
  rec.accepted_at = now;
  rec.completes_at = completes;
  events->push_back({TaskEventKind::kAccepted, now, id, worker});
}

void SimPlatformBase::MarkSubmitted(TaskId id, Tick now,
                                    std::vector<TaskEvent>* events) {
  TaskRec& rec = tasks_.at(id);
  rec.state = TaskState::kSubmitted;
  ++pending_;
  if (rec.worker < stats_.size()) ++stats_[rec.worker].submitted;
  events->push_back({TaskEventKind::kSubmitted, now, id, rec.worker});
}

// ------------------------------------------------------------- persistence

std::string SimPlatformBase::EncodeState() const {
  ByteWriter w;
  w.I64(now_);
  w.U64(next_task_);
  w.U32(static_cast<uint32_t>(tasks_.size()));
  for (const auto& [id, rec] : tasks_) {
    w.U64(id);
    w.U64(rec.spec.project);
    w.U32(rec.spec.resource);
    w.U32(rec.spec.pay_cents);
    w.F64(rec.spec.requester_approval_rate);
    w.U8(static_cast<uint8_t>(rec.state));
    w.U32(rec.worker);
    w.I64(rec.accepted_at);
    w.I64(rec.completes_at);
  }
  w.U32(static_cast<uint32_t>(stats_.size()));
  for (const WorkerStats& s : stats_) {
    w.U32(s.submitted);
    w.U32(s.approved);
    w.U32(s.rejected);
  }
  EncodeExtra(&w);
  return w.Take();
}

bool SimPlatformBase::RestoreState(const std::string& blob) {
  ByteReader r(blob);
  int64_t now;
  uint64_t next_task;
  uint32_t n_tasks;
  if (!r.I64(&now) || !r.U64(&next_task) || !r.U32(&n_tasks)) return false;
  std::map<TaskId, TaskRec> tasks;
  for (uint32_t i = 0; i < n_tasks; ++i) {
    TaskId id;
    TaskRec rec;
    uint8_t state;
    if (!r.U64(&id) || !r.U64(&rec.spec.project) ||
        !r.U32(&rec.spec.resource) || !r.U32(&rec.spec.pay_cents) ||
        !r.F64(&rec.spec.requester_approval_rate) || !r.U8(&state) ||
        state > static_cast<uint8_t>(TaskState::kCancelled) ||
        !r.U32(&rec.worker) || !r.I64(&rec.accepted_at) ||
        !r.I64(&rec.completes_at)) {
      return false;
    }
    rec.state = static_cast<TaskState>(state);
    tasks.emplace(id, rec);
  }
  uint32_t n_stats;
  if (!r.U32(&n_stats) || n_stats != stats_.size()) return false;
  std::vector<WorkerStats> stats(n_stats);
  for (WorkerStats& s : stats) {
    if (!r.U32(&s.submitted) || !r.U32(&s.approved) || !r.U32(&s.rejected)) {
      return false;
    }
  }
  if (!DecodeExtra(&r) || !r.AtEnd()) return false;
  now_ = now;
  next_task_ = next_task;
  tasks_ = std::move(tasks);
  stats_ = std::move(stats);
  RebuildWorkerState();
  return true;
}

void SimPlatformBase::RebuildWorkerState() {
  open_.clear();
  pending_ = 0;
  state_.assign(workers_.size(), WorkerState{});
  for (const auto& [id, rec] : tasks_) {
    switch (rec.state) {
      case TaskState::kOpen:
        open_.emplace(-static_cast<int64_t>(rec.spec.pay_cents), id);
        break;
      case TaskState::kAccepted:
        if (rec.worker < state_.size()) {
          state_[rec.worker] = {true, id, rec.completes_at};
        }
        break;
      case TaskState::kSubmitted:
        ++pending_;
        break;
      case TaskState::kApproved:
      case TaskState::kRejected:
      case TaskState::kCancelled:
        break;
    }
  }
}

}  // namespace itag::crowd
