#include "crowd/sim_platform_base.h"

namespace itag::crowd {

SimPlatformBase::SimPlatformBase(std::vector<WorkerProfile> workers,
                                 PaymentLedger* ledger)
    : workers_(std::move(workers)),
      stats_(workers_.size()),
      ledger_(ledger) {}

Result<TaskId> SimPlatformBase::PostTask(const TaskSpec& spec) {
  TaskId id = next_task_++;
  TaskRec rec;
  rec.spec = spec;
  tasks_.emplace(id, rec);
  open_.emplace(-static_cast<int64_t>(spec.pay_cents), id);
  return id;
}

Status SimPlatformBase::CancelTask(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  if (it->second.state != TaskState::kOpen) {
    return Status::FailedPrecondition(
        std::string("task is ") + TaskStateName(it->second.state));
  }
  open_.erase({-static_cast<int64_t>(it->second.spec.pay_cents), id});
  it->second.state = TaskState::kCancelled;
  return Status::OK();
}

Status SimPlatformBase::Approve(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  TaskRec& rec = it->second;
  if (rec.state != TaskState::kSubmitted) {
    return Status::FailedPrecondition(
        std::string("task is ") + TaskStateName(rec.state));
  }
  rec.state = TaskState::kApproved;
  --pending_;
  if (rec.worker < stats_.size()) ++stats_[rec.worker].approved;
  if (ledger_ != nullptr) {
    ledger_->Pay(rec.spec.project, rec.worker, rec.spec.pay_cents);
  }
  return Status::OK();
}

Status SimPlatformBase::Reject(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  TaskRec& rec = it->second;
  if (rec.state != TaskState::kSubmitted) {
    return Status::FailedPrecondition(
        std::string("task is ") + TaskStateName(rec.state));
  }
  rec.state = TaskState::kRejected;
  --pending_;
  if (rec.worker < stats_.size()) ++stats_[rec.worker].rejected;
  return Status::OK();
}

Result<TaskState> SimPlatformBase::GetTaskState(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::NotFound("task " + std::to_string(id));
  return it->second.state;
}

Result<WorkerStats> SimPlatformBase::GetWorkerStats(WorkerId id) const {
  if (id >= stats_.size()) {
    return Status::NotFound("worker " + std::to_string(id));
  }
  return stats_[id];
}

void SimPlatformBase::MarkAccepted(TaskId id, WorkerId worker, Tick now,
                                   Tick completes,
                                   std::vector<TaskEvent>* events) {
  TaskRec& rec = tasks_.at(id);
  open_.erase({-static_cast<int64_t>(rec.spec.pay_cents), id});
  rec.state = TaskState::kAccepted;
  rec.worker = worker;
  rec.accepted_at = now;
  rec.completes_at = completes;
  events->push_back({TaskEventKind::kAccepted, now, id, worker});
}

void SimPlatformBase::MarkSubmitted(TaskId id, Tick now,
                                    std::vector<TaskEvent>* events) {
  TaskRec& rec = tasks_.at(id);
  rec.state = TaskState::kSubmitted;
  ++pending_;
  if (rec.worker < stats_.size()) ++stats_[rec.worker].submitted;
  events->push_back({TaskEventKind::kSubmitted, now, id, rec.worker});
}

}  // namespace itag::crowd
