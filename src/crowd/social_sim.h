#ifndef ITAG_CROWD_SOCIAL_SIM_H_
#define ITAG_CROWD_SOCIAL_SIM_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "crowd/sim_platform_base.h"

namespace itag::crowd {

/// Parameters of the social-network crowdsourcing simulator (the Facebook
/// extension the paper sketches via CrowdSearcher [6]).
struct SocialNetSimOptions {
  /// Watts-Strogatz small-world friendship graph: each worker is wired to
  /// `ring_neighbors` neighbours per side, each edge rewired with
  /// probability `rewire_prob`.
  uint32_t ring_neighbors = 3;
  double rewire_prob = 0.1;

  /// Fraction of the pool organically exposed when a project first posts.
  double seed_exposure = 0.05;

  /// Probability that a worker shares the project with each friend after
  /// submitting a task for it.
  double share_prob = 0.4;

  uint64_t seed = 11;
};

/// Discrete-event simulator of task propagation over a social network:
/// tasks are not listed on a marketplace — workers only see projects they
/// have been *exposed* to (organic seeding plus shares from friends who
/// completed tasks). Exposure spreads virally, so throughput starts slow and
/// accelerates; qualification and approval behave exactly as on MTurkSim.
class SocialNetSim : public SimPlatformBase {
 public:
  SocialNetSim(std::vector<WorkerProfile> workers, PaymentLedger* ledger,
               SocialNetSimOptions options = {});

  std::string name() const override { return "social-sim"; }

  std::vector<TaskEvent> AdvanceTo(Tick now) override;

  /// Number of workers exposed to `project` (tests, monitoring).
  size_t ExposedCount(ProjectRef project) const;

  /// The friend lists (tests verify small-world shape).
  const std::vector<std::vector<WorkerId>>& graph() const { return graph_; }

 protected:
  void EncodeExtra(ByteWriter* w) const override;
  bool DecodeExtra(ByteReader* r) override;

 private:
  void BuildGraph();
  void Expose(ProjectRef project, WorkerId w);
  void SeedExposure(ProjectRef project);
  TaskId BrowseFor(WorkerId w) const;

  SocialNetSimOptions options_;
  Rng rng_;
  std::vector<std::vector<WorkerId>> graph_;
  std::unordered_map<ProjectRef, std::unordered_set<WorkerId>> exposed_;
  std::unordered_set<ProjectRef> seeded_;
};

}  // namespace itag::crowd

#endif  // ITAG_CROWD_SOCIAL_SIM_H_
