#include "crowd/mturk_sim.h"

#include <algorithm>
#include <cmath>

namespace itag::crowd {

MTurkSim::MTurkSim(std::vector<WorkerProfile> workers, PaymentLedger* ledger,
                   MTurkSimOptions options)
    : SimPlatformBase(std::move(workers), ledger),
      options_(options),
      rng_(options.seed) {}

void MTurkSim::EncodeExtra(ByteWriter* w) const {
  RngState rng = rng_.SaveState();
  w->U64(rng.state);
  w->U64(rng.inc);
}

bool MTurkSim::DecodeExtra(ByteReader* r) {
  RngState rng;
  if (!r->U64(&rng.state) || !r->U64(&rng.inc)) return false;
  rng_.RestoreState(rng);
  return true;
}

bool MTurkSim::WorkerQualified(WorkerId w) const {
  const WorkerStats& s = stats_[w];
  uint32_t decided = s.approved + s.rejected;
  if (decided < options_.qualification_min_decisions) return true;
  return s.ApprovalRate() >= options_.qualification_min_approval;
}

TaskId MTurkSim::BrowseFor(WorkerId w) const {
  const WorkerProfile& prof = workers_[w];
  for (const auto& [neg_pay, id] : open_) {
    uint32_t pay = static_cast<uint32_t>(-neg_pay);
    if (pay < prof.min_pay_cents) break;  // pay-descending: nothing cheaper fits
    const TaskRec& rec = tasks_.at(id);
    if (rec.spec.requester_approval_rate < prof.min_requester_approval) {
      continue;
    }
    return id;
  }
  return 0;
}

std::vector<TaskEvent> MTurkSim::AdvanceTo(Tick now) {
  std::vector<TaskEvent> events;
  while (now_ < now) {
    ++now_;
    // 1. Completions due at this tick.
    for (WorkerId w = 0; w < state_.size(); ++w) {
      WorkerState& ws = state_[w];
      if (ws.busy && ws.busy_until <= now_) {
        MarkSubmitted(ws.task, now_, &events);
        ws.busy = false;
        ws.task = 0;
      }
    }
    // 2. Idle workers browse for work.
    if (!open_.empty()) {
      for (WorkerId w = 0; w < state_.size(); ++w) {
        if (open_.empty()) break;
        WorkerState& ws = state_[w];
        if (ws.busy) continue;
        if (!WorkerQualified(w)) continue;
        if (!rng_.Bernoulli(workers_[w].activity)) continue;
        TaskId id = BrowseFor(w);
        if (id == 0) continue;
        double service =
            rng_.Exponential(1.0 / std::max(1.0, workers_[w].mean_service_ticks));
        Tick completes = now_ + 1 + static_cast<Tick>(service);
        MarkAccepted(id, w, now_, completes, &events);
        ws.busy = true;
        ws.task = id;
        ws.busy_until = completes;
      }
    }
  }
  return events;
}

}  // namespace itag::crowd
