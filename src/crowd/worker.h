#ifndef ITAG_CROWD_WORKER_H_
#define ITAG_CROWD_WORKER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "crowd/task.h"

namespace itag::crowd {

/// Behavioural profile of one simulated worker. The parameters are the knobs
/// the crowdsourcing literature (and MTurk practice) identifies: how reliable
/// the worker's output is, how fast they work, how picky they are about pay,
/// and how active they are on the platform.
struct WorkerProfile {
  WorkerId id = 0;

  /// Probability that a submission is conscientious (the tagger model maps
  /// unreliable submissions to noisier posts; the requester's approval step
  /// rejects bad work with high probability).
  double reliability = 0.9;

  /// Mean task service time in ticks (exponentially distributed).
  double mean_service_ticks = 20.0;

  /// Probability per tick that an idle worker browses for a task.
  double activity = 0.2;

  /// The worker ignores tasks paying less than this (cents).
  uint32_t min_pay_cents = 1;

  /// The worker ignores requesters whose approval rate (toward taggers, the
  /// provider-side rate the User Manager tracks) is below this.
  double min_requester_approval = 0.0;
};

/// Running approval statistics of a worker — the tagger approval rate of
/// §III-A, maintained by the platform on approve/reject.
struct WorkerStats {
  uint32_t submitted = 0;
  uint32_t approved = 0;
  uint32_t rejected = 0;

  /// Approved / decided, optimistic (1.0) before any decision so fresh
  /// workers are not locked out by qualification filters.
  double ApprovalRate() const {
    uint32_t decided = approved + rejected;
    return decided == 0 ? 1.0 : static_cast<double>(approved) / decided;
  }
};

/// Configuration for synthesizing a worker pool.
struct WorkerPoolConfig {
  uint32_t num_workers = 50;

  /// Reliability is drawn from Beta-like mixture: a fraction of spammers
  /// with low reliability, the rest concentrated near `good_reliability`.
  double spammer_fraction = 0.1;
  double spammer_reliability = 0.2;
  double good_reliability = 0.92;
  double reliability_jitter = 0.05;

  double mean_service_ticks = 20.0;
  double activity = 0.2;
};

/// Draws a heterogeneous worker pool per `config`.
std::vector<WorkerProfile> GenerateWorkerPool(const WorkerPoolConfig& config,
                                              Rng* rng);

}  // namespace itag::crowd

#endif  // ITAG_CROWD_WORKER_H_
