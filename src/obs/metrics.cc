#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace itag::obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

uint64_t ApproxQuantile(const MetricSample& sample, double q) {
  if (sample.kind != MetricKind::kHistogram || sample.count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil) in cumulative order.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(sample.count)));
  if (rank == 0) rank = 1;
  if (rank > sample.count) rank = sample.count;
  uint64_t seen = 0;
  size_t last_nonempty = kHistogramBuckets;
  // Never walk past the fixed bucket model, whatever length the (already
  // codec-validated) sample carries.
  size_t n = std::min(sample.buckets.size(), kHistogramBuckets);
  for (size_t i = 0; i < n; ++i) {
    if (sample.buckets[i] > 0) last_nonempty = i;
    seen += sample.buckets[i];
    if (seen >= rank) {
      return i + 1 == kHistogramBuckets ? HistogramBucketLowerBound(i)
                                        : HistogramBucketUpperBound(i);
    }
  }
  // Reachable when the snapshot tore between count and the buckets (count
  // is incremented first, so the buckets may sum to count-1): answer with
  // the highest bucket that has data instead of a saturation sentinel.
  if (last_nonempty == kHistogramBuckets) return 0;
  return last_nonempty + 1 == kHistogramBuckets
             ? HistogramBucketLowerBound(last_nonempty)
             : HistogramBucketUpperBound(last_nonempty);
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: worker threads and daemons may bump metrics during
  // static destruction; a destroyed registry would dangle their pointers.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(const std::string& name,
                                                 MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  return it->second.kind == kind ? &it->second : nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Entry* e = GetEntry(name, MetricKind::kCounter);
  if (e != nullptr) return e->counter.get();
  static Counter* dummy = new Counter();  // kind clash: detached sink
  return dummy;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Entry* e = GetEntry(name, MetricKind::kGauge);
  if (e != nullptr) return e->gauge.get();
  static Gauge* dummy = new Gauge();
  return dummy;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Entry* e = GetEntry(name, MetricKind::kHistogram);
  if (e != nullptr) return e->histogram.get();
  static Histogram* dummy = new Histogram();
  return dummy;
}

std::vector<MetricSample> MetricsRegistry::Snapshot(
    const std::string& prefix) const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : metrics_) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    MetricSample s;
    s.name = name;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.count = entry.counter->value();
        break;
      case MetricKind::kGauge:
        s.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        s.count = h.count();
        s.sum = h.sum();
        s.buckets.resize(kHistogramBuckets);
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          s.buckets[i] = h.bucket(i);
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::string RenderText(const std::vector<MetricSample>& samples) {
  std::string out;
  char buf[192];
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%s %llu\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.count));
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "%s %lld\n", s.name.c_str(),
                      static_cast<long long>(s.gauge));
        break;
      case MetricKind::kHistogram:
        std::snprintf(
            buf, sizeof(buf),
            "%s count=%llu sum=%llu p50=%llu p95=%llu p99=%llu\n",
            s.name.c_str(), static_cast<unsigned long long>(s.count),
            static_cast<unsigned long long>(s.sum),
            static_cast<unsigned long long>(ApproxQuantile(s, 0.50)),
            static_cast<unsigned long long>(ApproxQuantile(s, 0.95)),
            static_cast<unsigned long long>(ApproxQuantile(s, 0.99)));
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace itag::obs
