#ifndef ITAG_OBS_METRICS_H_
#define ITAG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace itag::obs {

// The metrics subsystem: lock-cheap counters, gauges, and fixed-bucket
// histograms behind a name-keyed MetricsRegistry.
//
// Design, following the common/seqlock.h philosophy (readers never block
// writers, writers never block each other):
//  * Every metric is a handful of relaxed atomics. Increment/observe is a
//    single fetch_add on the hot path — no mutex, no false-sharing-prone
//    shared write lock — and ThreadSanitizer-clean by construction. The
//    expensive part of a latency probe is not the atomics but the two
//    steady_clock reads (tens of ns via vDSO, ~100 ns when the clock
//    falls back to a syscall): invisible behind a wire round trip or a
//    shard lock, but measurable on sub-µs in-process paths — bench_net's
//    Step(0) floor op tracks exactly this overhead across PRs.
//  * The registry's mutex is taken only at registration (once per metric
//    name per process, at component construction) and at Snapshot() time
//    (the monitoring poll), never on the increment path: components cache
//    the returned pointers.
//  * Metrics are never unregistered; pointers handed out stay valid for
//    the registry's lifetime, so cached pointers need no lifetime dance.
//  * Reads are per-word atomic. A histogram snapshot taken mid-burst may
//    be a few observations "torn" between count and a bucket — acceptable
//    for monitoring, and exactly the trade the seqlock'd ShardStats makes.
//
// Naming convention (the dotted hierarchy the docs/observability.md
// catalogue indexes): `<layer>.<subsystem>.<metric>[_<unit>]`, e.g.
// `api.ProjectQuery.latency_us`, `storage.wal.appends`.

/// Wire-visible discriminator of a MetricSample.
enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// Stable display name ("counter", "gauge", "histogram").
const char* MetricKindName(MetricKind kind);

/// Monotonic event counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, open connections); may go up and down.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Number of histogram buckets. Bucket `i` counts observations `v` with
/// floor(log2(max(v,1))) == i — i.e. power-of-two buckets over the value
/// (microseconds for latency histograms): bucket 0 holds v in [0,2),
/// bucket 1 holds [2,4), ... bucket i holds [2^i, 2^(i+1)). The last
/// bucket absorbs everything >= 2^(kHistogramBuckets-1) (~134 s in µs).
/// Every histogram shares these bounds, so the wire format carries only
/// the counts and docs/observability.md documents the bounds once.
inline constexpr size_t kHistogramBuckets = 28;

/// The bucket index an observation lands in.
inline size_t HistogramBucketIndex(uint64_t value) {
  if (value < 2) return 0;
  size_t idx = 63 - static_cast<size_t>(__builtin_clzll(value));
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0, else 2^i).
inline constexpr uint64_t HistogramBucketLowerBound(size_t i) {
  return i == 0 ? 0 : (uint64_t{1} << i);
}

/// Exclusive upper bound of bucket `i` (the last bucket is unbounded; its
/// reported bound is a saturation marker, not a real ceiling).
inline constexpr uint64_t HistogramBucketUpperBound(size_t i) {
  return uint64_t{1} << (i + 1);
}

/// Fixed-bucket histogram of non-negative integer observations
/// (latencies in microseconds, batch sizes in rows).
class Histogram {
 public:
  void Observe(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
};

/// RAII latency probe: observes the elapsed wall time in microseconds into
/// `hist` on destruction. Null-safe (a disabled probe costs one branch).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// One metric's point-in-time value, as carried by the v3 MetricsQuery
/// response (see docs/wire-protocol.md) and rendered by RenderText().
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter value, or histogram observation count.
  uint64_t count = 0;
  /// Gauge value (signed).
  int64_t gauge = 0;
  /// Histogram sum of observations.
  uint64_t sum = 0;
  /// Histogram bucket counts (kHistogramBuckets entries); empty for
  /// counters and gauges.
  std::vector<uint64_t> buckets;
};

/// Estimated q-quantile of a histogram sample: the exclusive upper bound
/// of the first bucket whose cumulative count reaches ceil(q * count)
/// (the saturated last bucket reports its lower bound). Edge behavior,
/// pinned by obs_test: 0 when the sample is empty (count == 0) or not a
/// histogram; q outside [0,1] clamps; a torn snapshot whose count exceeds
/// the bucket sum falls back to the last bucket holding data; a
/// short/truncated bucket vector walks only what it has.
uint64_t ApproxQuantile(const MetricSample& sample, double q);

/// Name-keyed registry of process metrics. Get-or-create is mutex-guarded
/// (called once per metric at component construction); the returned
/// pointers are valid for the registry's lifetime and their hot-path
/// operations are lock-free. Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry every subsystem registers into
  /// (api::Service, core::ShardedSystem, net::Server, storage::Database).
  /// Never destroyed, so cached metric pointers outlive static teardown.
  static MetricsRegistry& Default();

  /// Gets or creates the named metric. If the name already exists with a
  /// *different* kind (a programming error — names are internal), the call
  /// returns a process-lifetime detached dummy so callers never crash and
  /// never need a null check; the registry keeps the first registration.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Point-in-time samples of every metric whose name starts with
  /// `prefix` (empty = all), sorted by name — the deterministic order the
  /// wire tier and text renderer rely on.
  std::vector<MetricSample> Snapshot(const std::string& prefix = "") const;

  /// Number of registered metrics (tests).
  size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetEntry(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  /// std::map: sorted iteration gives Snapshot its stable order.
  std::map<std::string, Entry> metrics_;
};

/// Plain-text dump of a snapshot, one metric per line:
///   `<name> <value>` for counters and gauges,
///   `<name> count=N sum=S p50=A p95=B p99=C` for histograms.
/// Stable, grep-friendly (the CI loadgen smoke greps it), and identical
/// whether rendered server-side (itag_server's shutdown dump) or from a
/// MetricsQuery response (itag_client --metrics).
std::string RenderText(const std::vector<MetricSample>& samples);

}  // namespace itag::obs

#endif  // ITAG_OBS_METRICS_H_
