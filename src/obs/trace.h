#ifndef ITAG_OBS_TRACE_H_
#define ITAG_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace itag::obs {

// The tracing subsystem: per-request span trees from the wire to the WAL,
// following the metrics philosophy next door (metrics.h) — hot paths touch
// relaxed atomics and thread-local state only, mutexes guard rare
// registration and the drain/query paths, and everything is
// ThreadSanitizer-clean by construction.
//
// Life of a trace:
//  1. `Tracer::Begin()` runs the head-based sampling decision when a frame
//     is decoded. A request is *recorded* when it wins the 1-in-N coin
//     (`sample_one_in_n`) or when slow-trace capture is armed
//     (`slow_us > 0` records everything provisionally). Otherwise the
//     returned TraceContext is inactive and every Span on the request's
//     path collapses to a single branch.
//  2. Each RAII `Span` on a recorded request appends a completed SpanRecord
//     to its *thread's* span buffer (one uncontended mutex per thread;
//     spans complete on reactor, dispatch-worker, and shard-pool threads).
//  3. When the root span ends, the Tracer drains that trace's spans out of
//     every thread buffer and decides retention: sampled traces are always
//     kept; unsampled ones are kept only when the root exceeded `slow_us`
//     (the slow-trace net that catches the p99.9 outlier a 1-in-1M coin
//     would miss). Retained traces enter a bounded process-wide ring
//     (newest win), served by the TraceQuery endpoint and dumped as Chrome
//     trace-event JSON by `itag_server --trace-export=FILE`.
//
// Span parenting uses two thread-locals (current TraceContext + current
// span id). They propagate across thread hops explicitly: the net server
// installs the context on the dispatch worker with ScopedTraceContext, and
// core::ShardedSystem re-installs it inside each shard fan-out task.

/// The per-request trace identity carried across threads. `trace_id == 0`
/// means "not recorded" — every probe on the request's path is a no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  /// Won the head-sampling coin (retained unconditionally). A recorded but
  /// unsampled context is a slow-capture candidate: its spans are collected
  /// provisionally and discarded unless the root span exceeds the slow bar.
  bool sampled = false;

  bool active() const { return trace_id != 0; }
};

/// One key=value annotation on a span (shard id, reactor index, ...).
struct SpanAnnotation {
  std::string key;
  std::string value;
};

/// A completed span, as stored in the ring and carried by the v4
/// TraceQuery response (see docs/wire-protocol.md).
struct SpanRecord {
  uint64_t span_id = 0;
  /// Parent span id; 0 marks the trace's root span.
  uint64_t parent_span_id = 0;
  std::string name;
  /// Monotonic (steady_clock) nanoseconds; subtract the root's start_ns for
  /// trace-relative time. Comparable only within one process lifetime.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::vector<SpanAnnotation> annotations;

  uint64_t duration_ns() const { return end_ns - start_ns; }
};

/// One retained trace: the root span first, then the remaining spans in
/// completion order.
struct TraceRecord {
  uint64_t trace_id = 0;
  /// False when the trace was retained by slow capture, not the coin.
  bool sampled = false;
  /// Root span duration.
  uint64_t duration_ns = 0;
  /// Endpoint name ("BatchSubmitTags", ...), derived from the `api.*` span;
  /// empty when the request never reached an endpoint (e.g. decode error).
  std::string endpoint;
  std::vector<SpanRecord> spans;
};

/// Completed traces the ring retains; oldest are evicted first.
inline constexpr size_t kTraceRingCapacity = 256;

/// Per-thread cap on buffered (completed but not yet drained) spans; spans
/// beyond it are dropped and counted in `obs.trace.dropped_spans`.
inline constexpr size_t kMaxBufferedSpansPerThread = 4096;

/// Process-wide trace collector. Thread-safe; one instance per process
/// (Default()), never destroyed so cached pointers and thread buffers
/// outlive static teardown.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The collector every layer records into.
  static Tracer& Default();

  /// Reconfigures sampling. `sample_one_in_n`: 0 disables the coin, 1
  /// samples everything, N samples every Nth Begin(). `slow_us`: 0 disables
  /// slow capture; otherwise every request is recorded provisionally and
  /// unsampled traces are retained iff the root span took >= slow_us.
  void Configure(uint64_t sample_one_in_n, uint64_t slow_us);

  uint64_t sample_one_in_n() const {
    return sample_n_.load(std::memory_order_relaxed);
  }
  uint64_t slow_us() const { return slow_us_.load(std::memory_order_relaxed); }

  /// True when Begin() can return an active context at all.
  bool enabled() const { return sample_one_in_n() != 0 || slow_us() != 0; }

  /// Head-sampling decision for a new request. Inactive context when
  /// tracing is off or this request lost the coin with slow capture
  /// disarmed. With `sample_one_in_n == N`, requests N, 2N, 3N, ... are
  /// sampled (never the first N-1 — a 1-in-1M setting must not sample the
  /// first request of the process).
  TraceContext Begin();

  /// Traces retained in the ring, newest first, filtered by minimum root
  /// duration and (when non-empty) exact endpoint name. At most
  /// `max_traces` (0 = kTraceRingCapacity).
  std::vector<TraceRecord> Query(uint64_t min_duration_us,
                                 const std::string& endpoint,
                                 size_t max_traces) const;

  /// The whole ring as Chrome trace-event JSON (chrome://tracing /
  /// Perfetto's legacy loader): one "X" complete event per span, one
  /// process row per trace. See docs/observability.md for the walkthrough.
  std::string ExportChromeJson() const;

  /// Drops every retained trace and buffered span (tests).
  void Clear();

  /// Traces pushed into the ring since process start (monotonic; also
  /// mirrored to the `obs.trace.retained` counter).
  uint64_t traces_retained() const {
    return retained_total_.load(std::memory_order_relaxed);
  }
  /// Spans dropped on full thread buffers (monotonic).
  uint64_t spans_dropped() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------------ span plumbing
  // Called by Span / ScopedTraceContext; not part of the instrumentation
  // API surface.

  /// Process-unique span id (also used for trace ids), never 0.
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Appends a completed non-root span to the calling thread's buffer.
  void RecordSpan(uint64_t trace_id, SpanRecord span);
  /// Ends a trace: drains its spans from every thread buffer and retains
  /// the assembled record in the ring iff sampled or slow enough.
  void FinishRoot(const TraceContext& ctx, SpanRecord root);

 private:
  struct ThreadBuffer {
    std::mutex mu;
    /// (trace id, completed span); drained by FinishRoot.
    std::vector<std::pair<uint64_t, SpanRecord>> spans;
  };

  /// The calling thread's buffer, registered on first use and leaked with
  /// the Tracer (spans of a dying thread stay drainable).
  ThreadBuffer* LocalBuffer();

  std::atomic<uint64_t> sample_n_{0};
  std::atomic<uint64_t> slow_us_{0};
  std::atomic<uint64_t> coin_{0};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> retained_total_{0};
  std::atomic<uint64_t> dropped_spans_{0};

  mutable std::mutex buffers_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;

  mutable std::mutex ring_mu_;
  std::deque<TraceRecord> ring_;
};

/// The TraceContext installed on this thread (inactive by default).
TraceContext CurrentTrace();
/// The innermost open span id on this thread (0 = parent is the root /
/// nothing open).
uint64_t CurrentSpanId();

/// Installs `ctx` (and the parent span new spans should hang under) on this
/// thread for the current scope — the explicit cross-thread propagation
/// step at every pool handoff. Restores the previous context on exit.
class ScopedTraceContext {
 public:
  ScopedTraceContext(const TraceContext& ctx, uint64_t parent_span_id);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_ctx_;
  uint64_t prev_span_;
};

/// RAII span. The default constructor opens a child of the thread's
/// current span under the thread's current trace (and becomes the current
/// span until destroyed); it is a no-op costing one thread-local read when
/// no trace is installed. The explicit-context constructor serves the two
/// places RAII nesting cannot: the root span (which crosses the
/// reactor→worker handoff inside the server's Work item) and the merged
/// submit path (one backend call serving several traces).
class Span {
 public:
  /// Inactive span (placeholder slot).
  Span() = default;
  /// Child of the calling thread's current trace/span; no-op without one.
  explicit Span(const char* name);
  /// Span with an explicit context and parent (0 = this is the root span).
  /// Does not touch the thread-local current span.
  Span(const char* name, const TraceContext& ctx, uint64_t parent_span_id);

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  bool active() const { return ctx_.active(); }
  uint64_t span_id() const { return rec_.span_id; }
  const TraceContext& context() const { return ctx_; }

  /// Attaches key=value (small sets only; one heap pair per call). No-op on
  /// an inactive span.
  void Annotate(const char* key, std::string value);
  void Annotate(const char* key, uint64_t value);

  /// Closes the span early (records it); idempotent, also run by ~Span.
  void End();

 private:
  TraceContext ctx_;  ///< inactive when the span is a no-op
  SpanRecord rec_;
  /// This span replaced the thread-local current span (default ctor only);
  /// End() must restore rec_.parent_span_id.
  bool thread_current_ = false;
};

/// Renders span trees the way `itag_client --traces` prints them: one
/// header line per trace, then the spans indented by tree depth with
/// duration and self-time (duration minus direct children). Lives here so
/// the client binary and tests share one golden-able renderer.
std::string RenderTraceText(const std::vector<TraceRecord>& traces);

}  // namespace itag::obs

#endif  // ITAG_OBS_TRACE_H_
