#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace itag::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Registry mirrors (obs.trace.*), cached once like every other layer's
/// metrics struct. `begun`/`sampled` are bumped only while tracing is
/// enabled, so a disabled tracer stays off the metrics hot path too.
struct TraceMetrics {
  Counter* begun;
  Counter* sampled;
  Counter* retained;
  Counter* slow_retained;
  Counter* dropped_spans;

  static const TraceMetrics& Get() {
    static const TraceMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Default();
      return TraceMetrics{reg.GetCounter("obs.trace.begun"),
                          reg.GetCounter("obs.trace.sampled"),
                          reg.GetCounter("obs.trace.retained"),
                          reg.GetCounter("obs.trace.slow_retained"),
                          reg.GetCounter("obs.trace.dropped_spans")};
    }();
    return m;
  }
};

// The thread-local trace context. Plain thread_locals (no atomics): only
// the owning thread reads or writes them; cross-thread propagation always
// goes through an explicit ScopedTraceContext install.
thread_local TraceContext t_ctx;
thread_local uint64_t t_span = 0;

/// Minimal JSON string escaping for the Chrome export (span names and
/// annotations are internal ASCII, but a tag value could carry anything).
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // leaked: outlives static teardown
  return *tracer;
}

void Tracer::Configure(uint64_t sample_one_in_n, uint64_t slow_us) {
  sample_n_.store(sample_one_in_n, std::memory_order_relaxed);
  slow_us_.store(slow_us, std::memory_order_relaxed);
  coin_.store(0, std::memory_order_relaxed);
}

TraceContext Tracer::Begin() {
  const uint64_t n = sample_n_.load(std::memory_order_relaxed);
  const uint64_t slow = slow_us_.load(std::memory_order_relaxed);
  if (n == 0 && slow == 0) return {};
  TraceMetrics::Get().begun->Inc();
  // Requests n, 2n, 3n, ... win the coin: a 1-in-1M setting must not
  // sample the very first request of the process.
  bool sampled =
      n != 0 && (coin_.fetch_add(1, std::memory_order_relaxed) + 1) % n == 0;
  if (!sampled && slow == 0) return {};  // lost the coin, no slow net armed
  if (sampled) TraceMetrics::Get().sampled->Inc();
  TraceContext ctx;
  ctx.trace_id = NextId();
  ctx.sampled = sampled;
  return ctx;
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  // One cache entry per (thread, tracer) pair; the vector is nearly always
  // length 1 (tests may exercise a second Tracer instance).
  thread_local std::vector<std::pair<Tracer*, ThreadBuffer*>> cache;
  for (const auto& [owner, buf] : cache) {
    if (owner == this) return buf;
  }
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* buf = owned.get();
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buffers_.push_back(std::move(owned));
  }
  cache.emplace_back(this, buf);
  return buf;
}

void Tracer::RecordSpan(uint64_t trace_id, SpanRecord span) {
  ThreadBuffer* buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->spans.size() >= kMaxBufferedSpansPerThread) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    TraceMetrics::Get().dropped_spans->Inc();
    return;
  }
  buf->spans.emplace_back(trace_id, std::move(span));
}

void Tracer::FinishRoot(const TraceContext& ctx, SpanRecord root) {
  const uint64_t duration_ns = root.duration_ns();
  const uint64_t slow = slow_us_.load(std::memory_order_relaxed);
  const bool is_slow = slow != 0 && duration_ns >= slow * 1000;
  const bool retain = ctx.sampled || is_slow;

  // Drain this trace's spans out of every thread buffer — retained or not,
  // the buffers must not accumulate spans of finished traces. All child
  // spans completed before the root ended (fan-outs join before the
  // response is queued), so nothing of this trace can arrive later.
  std::vector<SpanRecord> spans;
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buffers.reserve(buffers_.size());
    for (const auto& b : buffers_) buffers.push_back(b.get());
  }
  for (ThreadBuffer* buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    auto& vec = buf->spans;
    for (size_t i = 0; i < vec.size();) {
      if (vec[i].first == ctx.trace_id) {
        if (retain) spans.push_back(std::move(vec[i].second));
        vec[i] = std::move(vec.back());
        vec.pop_back();
      } else {
        ++i;
      }
    }
  }
  if (!retain) return;

  TraceRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.sampled = ctx.sampled;
  rec.duration_ns = duration_ns;
  rec.spans.reserve(spans.size() + 1);
  rec.spans.push_back(std::move(root));
  // Drained order is per-thread-FIFO but arbitrary across threads; sort by
  // start time so renderers and tests see a deterministic sibling order.
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  for (SpanRecord& s : spans) rec.spans.push_back(std::move(s));
  for (const SpanRecord& s : rec.spans) {
    if (s.name.rfind("api.", 0) == 0) {
      rec.endpoint = s.name.substr(4);
      break;
    }
  }

  retained_total_.fetch_add(1, std::memory_order_relaxed);
  TraceMetrics::Get().retained->Inc();
  if (!ctx.sampled) TraceMetrics::Get().slow_retained->Inc();
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.push_back(std::move(rec));
  while (ring_.size() > kTraceRingCapacity) ring_.pop_front();
}

std::vector<TraceRecord> Tracer::Query(uint64_t min_duration_us,
                                       const std::string& endpoint,
                                       size_t max_traces) const {
  if (max_traces == 0) max_traces = kTraceRingCapacity;
  std::vector<TraceRecord> out;
  std::lock_guard<std::mutex> lock(ring_mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < max_traces;
       ++it) {
    if (it->duration_ns < min_duration_us * 1000) continue;
    if (!endpoint.empty() && it->endpoint != endpoint) continue;
    out.push_back(*it);
  }
  return out;
}

std::string Tracer::ExportChromeJson() const {
  std::deque<TraceRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    snapshot = ring_;
  }
  // One complete ("X") event per span; each trace gets its own tid row so
  // Perfetto stacks the tree under one named track. Timestamps are the
  // spans' monotonic microseconds — one shared timeline for the whole dump.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  uint64_t tid = 0;
  for (const TraceRecord& t : snapshot) {
    ++tid;
    if (!first) out += ",";
    first = false;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%llu,\"args\":{\"name\":\"trace %llu %s\"}}",
                  static_cast<unsigned long long>(tid),
                  static_cast<unsigned long long>(t.trace_id),
                  t.endpoint.empty() ? "?" : t.endpoint.c_str());
    out += head;
    for (const SpanRecord& s : t.spans) {
      char ev[224];
      std::snprintf(
          ev, sizeof(ev),
          ",{\"name\":\"%s\",\"cat\":\"itag\",\"ph\":\"X\",\"pid\":1,"
          "\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
          s.name.c_str(), static_cast<unsigned long long>(tid),
          static_cast<double>(s.start_ns) / 1000.0,
          static_cast<double>(s.duration_ns()) / 1000.0);
      out += ev;
      for (size_t i = 0; i < s.annotations.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"";
        AppendJsonEscaped(&out, s.annotations[i].key);
        out += "\":\"";
        AppendJsonEscaped(&out, s.annotations[i].value);
        out += "\"";
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

void Tracer::Clear() {
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_.clear();
  }
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    for (const auto& b : buffers_) buffers.push_back(b.get());
  }
  for (ThreadBuffer* buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->spans.clear();
  }
}

// ------------------------------------------------------------ thread context

TraceContext CurrentTrace() { return t_ctx; }

uint64_t CurrentSpanId() { return t_span; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx,
                                       uint64_t parent_span_id)
    : prev_ctx_(t_ctx), prev_span_(t_span) {
  t_ctx = ctx;
  t_span = parent_span_id;
}

ScopedTraceContext::~ScopedTraceContext() {
  t_ctx = prev_ctx_;
  t_span = prev_span_;
}

// --------------------------------------------------------------------- spans

Span::Span(const char* name) {
  if (!t_ctx.active()) return;
  ctx_ = t_ctx;
  rec_.span_id = Tracer::Default().NextId();
  rec_.parent_span_id = t_span;
  rec_.name = name;
  rec_.start_ns = NowNs();
  t_span = rec_.span_id;
  thread_current_ = true;
}

Span::Span(const char* name, const TraceContext& ctx, uint64_t parent_span_id) {
  if (!ctx.active()) return;
  ctx_ = ctx;
  rec_.span_id = Tracer::Default().NextId();
  rec_.parent_span_id = parent_span_id;
  rec_.name = name;
  rec_.start_ns = NowNs();
}

Span::Span(Span&& other) noexcept
    : ctx_(other.ctx_),
      rec_(std::move(other.rec_)),
      thread_current_(other.thread_current_) {
  other.ctx_ = TraceContext{};
  other.thread_current_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    ctx_ = other.ctx_;
    rec_ = std::move(other.rec_);
    thread_current_ = other.thread_current_;
    other.ctx_ = TraceContext{};
    other.thread_current_ = false;
  }
  return *this;
}

void Span::Annotate(const char* key, std::string value) {
  if (!ctx_.active()) return;
  rec_.annotations.push_back({key, std::move(value)});
}

void Span::Annotate(const char* key, uint64_t value) {
  if (!ctx_.active()) return;
  rec_.annotations.push_back({key, std::to_string(value)});
}

void Span::End() {
  if (!ctx_.active()) return;
  rec_.end_ns = NowNs();
  if (thread_current_) t_span = rec_.parent_span_id;
  if (rec_.parent_span_id == 0) {
    Tracer::Default().FinishRoot(ctx_, std::move(rec_));
  } else {
    Tracer::Default().RecordSpan(ctx_.trace_id, std::move(rec_));
  }
  ctx_ = TraceContext{};
  thread_current_ = false;
  rec_ = SpanRecord{};
}

// ------------------------------------------------------------ text rendering

std::string RenderTraceText(const std::vector<TraceRecord>& traces) {
  std::string out;
  char buf[256];
  for (const TraceRecord& t : traces) {
    std::snprintf(buf, sizeof(buf),
                  "trace %llu endpoint=%s duration=%.1fus spans=%zu %s\n",
                  static_cast<unsigned long long>(t.trace_id),
                  t.endpoint.empty() ? "?" : t.endpoint.c_str(),
                  static_cast<double>(t.duration_ns) / 1000.0, t.spans.size(),
                  t.sampled ? "(sampled)" : "(slow)");
    out += buf;
    // Children keyed by parent id, in stored (start-time) order.
    std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
    const SpanRecord* root = nullptr;
    for (const SpanRecord& s : t.spans) {
      if (s.parent_span_id == 0 && root == nullptr) {
        root = &s;
      } else {
        children[s.parent_span_id].push_back(&s);
      }
    }
    if (root == nullptr) continue;
    // Iterative DFS keeping sibling order.
    std::vector<std::pair<const SpanRecord*, int>> stack{{root, 0}};
    while (!stack.empty()) {
      auto [span, depth] = stack.back();
      stack.pop_back();
      uint64_t child_ns = 0;
      auto it = children.find(span->span_id);
      if (it != children.end()) {
        for (const SpanRecord* c : it->second) child_ns += c->duration_ns();
      }
      uint64_t self_ns =
          span->duration_ns() > child_ns ? span->duration_ns() - child_ns : 0;
      std::snprintf(buf, sizeof(buf), "%*s%s %.1fus (self %.1fus)",
                    depth * 2 + 2, "", span->name.c_str(),
                    static_cast<double>(span->duration_ns()) / 1000.0,
                    static_cast<double>(self_ns) / 1000.0);
      out += buf;
      for (const SpanAnnotation& a : span->annotations) {
        out += " " + a.key + "=" + a.value;
      }
      out += "\n";
      if (it != children.end()) {
        for (auto c = it->second.rbegin(); c != it->second.rend(); ++c) {
          stack.emplace_back(*c, depth + 1);
        }
      }
    }
  }
  return out;
}

}  // namespace itag::obs
