#include "storage/schema.h"

#include <cstring>

namespace itag::storage {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::Validate(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("column '" + col.name +
                                       "' is not nullable");
      }
      continue;
    }
    if (row[i].type() != col.type) {
      return Status::InvalidArgument(
          "column '" + col.name + "' expects " + FieldTypeName(col.type) +
          ", got " + FieldTypeName(row[i].type()));
    }
  }
  return Status::OK();
}

void Schema::EncodeTo(std::string* out) const {
  uint32_t n = static_cast<uint32_t>(columns_.size());
  out->append(reinterpret_cast<const char*>(&n), 4);
  for (const Column& c : columns_) {
    uint32_t len = static_cast<uint32_t>(c.name.size());
    out->append(reinterpret_cast<const char*>(&len), 4);
    out->append(c.name);
    out->push_back(static_cast<char>(c.type));
    out->push_back(c.nullable ? 1 : 0);
  }
}

bool Schema::DecodeFrom(const std::string& data, size_t* offset, Schema* out) {
  if (*offset + 4 > data.size()) return false;
  uint32_t n;
  std::memcpy(&n, data.data() + *offset, 4);
  *offset += 4;
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (*offset + 4 > data.size()) return false;
    uint32_t len;
    std::memcpy(&len, data.data() + *offset, 4);
    *offset += 4;
    if (*offset + len + 2 > data.size()) return false;
    Column c;
    c.name = data.substr(*offset, len);
    *offset += len;
    c.type = static_cast<FieldType>(data[*offset]);
    ++*offset;
    c.nullable = data[*offset] != 0;
    ++*offset;
    cols.push_back(std::move(c));
  }
  *out = Schema(std::move(cols));
  return true;
}

}  // namespace itag::storage
