#ifndef ITAG_STORAGE_SCHEMA_H_
#define ITAG_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace itag::storage {

/// A row is a positional tuple matching a Schema.
using Row = std::vector<Value>;

/// One column definition.
struct Column {
  std::string name;
  FieldType type = FieldType::kNull;
  bool nullable = false;
};

/// Ordered set of typed, named columns. The schema validates rows before
/// they reach the heap and resolves column names to positions for scans and
/// index definitions.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; column names must be unique and non-empty.
  explicit Schema(std::vector<Column> columns);

  /// Number of columns.
  size_t num_columns() const { return columns_.size(); }

  /// Column metadata by position.
  const Column& column(size_t i) const { return columns_[i]; }

  const std::vector<Column>& columns() const { return columns_; }

  /// Position of the column named `name`, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Checks arity, types and nullability of `row` against this schema.
  Status Validate(const Row& row) const;

  /// Appends a binary encoding of the schema to `out` (for snapshots).
  void EncodeTo(std::string* out) const;

  /// Decodes a schema from `data` at `*offset`; false on malformed input.
  static bool DecodeFrom(const std::string& data, size_t* offset, Schema* out);

 private:
  std::vector<Column> columns_;
};

/// Fluent helper for building schemas in registration code:
///   SchemaBuilder().Int("id").Str("name").Real("quality").Build()
class SchemaBuilder {
 public:
  SchemaBuilder& Int(const std::string& name, bool nullable = false) {
    cols_.push_back({name, FieldType::kInt64, nullable});
    return *this;
  }
  SchemaBuilder& Real(const std::string& name, bool nullable = false) {
    cols_.push_back({name, FieldType::kDouble, nullable});
    return *this;
  }
  SchemaBuilder& Str(const std::string& name, bool nullable = false) {
    cols_.push_back({name, FieldType::kString, nullable});
    return *this;
  }
  SchemaBuilder& Bool(const std::string& name, bool nullable = false) {
    cols_.push_back({name, FieldType::kBool, nullable});
    return *this;
  }
  Schema Build() { return Schema(std::move(cols_)); }

 private:
  std::vector<Column> cols_;
};

}  // namespace itag::storage

#endif  // ITAG_STORAGE_SCHEMA_H_
