#include "storage/database.h"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/pager/paged_engine.h"
#include "storage/row_store.h"

namespace itag::storage {

namespace fs = std::filesystem;

namespace {

/// Registry metrics of the storage layer (storage.*), shared by every
/// Database in the process (shards aggregate — per-shard WAL skew shows
/// up in core.shard.<i>.ops instead). Pointers cached once; bumping them
/// is a relaxed atomic add, negligible next to the fsync-free file append
/// it annotates.
struct StorageMetrics {
  obs::Counter* wal_appends;        ///< framed records appended to any WAL
  obs::Counter* wal_bytes;          ///< payload bytes across those records
  obs::Histogram* wal_batch_rows;   ///< sub-records per committed batch
  obs::Counter* checkpoints;        ///< completed durable checkpoints
  obs::Histogram* checkpoint_latency_us;

  static const StorageMetrics& Get() {
    static const StorageMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      StorageMetrics s;
      s.wal_appends = reg.GetCounter("storage.wal.appends");
      s.wal_bytes = reg.GetCounter("storage.wal.bytes");
      s.wal_batch_rows = reg.GetHistogram("storage.wal.batch_rows");
      s.checkpoints = reg.GetCounter("storage.checkpoint.count");
      s.checkpoint_latency_us =
          reg.GetHistogram("storage.checkpoint.latency_us");
      return s;
    }();
    return m;
  }
};

/// First word of a v2 snapshot file. A v1 snapshot leads with its table
/// count, which can never be ~0u, so one word distinguishes the formats.
constexpr uint32_t kSnapshotV2Sentinel = 0xFFFFFFFFu;

}  // namespace

Database::Database() = default;
Database::~Database() = default;

Status Database::Open(const DatabaseOptions& options) {
  options_ = options;
  durable_ = !options.directory.empty();
  tables_.clear();
  engine_.reset();
  next_lsn_ = 1;
  snapshot_lsn_ = 0;
  recovery_stats_ = RecoveryStats{};
  if (!durable_) return Status::OK();

  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    return Status::IOError("cannot create " + options_.directory + ": " +
                           ec.message());
  }
  if (options_.paged) {
    ITAG_RETURN_IF_ERROR(RecoverPaged());
  } else {
    ITAG_RETURN_IF_ERROR(Recover());
  }
  return wal_.Open(options_.directory + "/" + options_.wal_file);
}

Status Database::Recover() {
  std::string snap = options_.directory + "/" + options_.snapshot_file;
  if (fs::exists(snap)) {
    ITAG_RETURN_IF_ERROR(LoadSnapshot(snap));
  }
  std::vector<WalRecord> records;
  ITAG_RETURN_IF_ERROR(
      ReadWal(options_.directory + "/" + options_.wal_file, &records));
  uint64_t max_lsn = snapshot_lsn_;
  for (const WalRecord& rec : records) {
    ++recovery_stats_.wal_records_scanned;
    recovery_stats_.wal_bytes_scanned += rec.payload.size();
    if (rec.lsn > max_lsn) max_lsn = rec.lsn;
    // A v2 snapshot records the highest LSN it contains, so a retained WAL
    // (retain_wal: checkpoints keep the log for replication subscribers)
    // replays only the frames past it. Pre-v2 snapshots leave snapshot_lsn_
    // at 0 and replay everything, with the historical tolerance below.
    if (rec.lsn != 0 && rec.lsn <= snapshot_lsn_) continue;
    ++recovery_stats_.wal_records_replayed;
    Status s = ApplyWalRecord(rec);
    if (!s.ok()) {
      // Replay must be idempotent-ish against a snapshot that already
      // contains some of the records (checkpoint truncates the WAL, so in
      // the normal protocol this cannot happen; tolerate AlreadyExists to be
      // robust against a crash between snapshot write and WAL truncate).
      if (!s.IsAlreadyExists()) return s;
    }
  }
  next_lsn_ = max_lsn + 1;
  ITAG_LOG(kInfo) << "recovered " << tables_.size() << " tables, replayed "
                  << records.size() << " wal records";
  return Status::OK();
}

Status Database::RecoverPaged() {
  engine_ = std::make_unique<pager::PagedEngine>();
  pager::PagedEngineOptions eopts;
  eopts.path = options_.directory + "/" + options_.page_file;
  eopts.page_size = options_.page_size;
  eopts.cache_bytes = options_.page_cache_mb << 20;
  eopts.compression = options_.page_compression;
  Status opened = engine_->Open(eopts);
  if (!opened.ok()) {
    engine_.reset();
    return opened;
  }

  // Rehydrate table handles from the committed catalog — O(catalog); no row
  // is read until a query faults its page in.
  for (const std::string& name : engine_->TableNames()) {
    pager::PagedTableState* state = engine_->GetTable(name);
    Schema schema;
    size_t off = 0;
    if (!Schema::DecodeFrom(state->schema_blob, &off, &schema)) {
      return Status::Corruption("catalog schema for " + name +
                                " does not decode");
    }
    auto store = std::make_unique<PagedRowStore>(
        state->tree.get(), schema.num_columns(), state->row_count);
    tables_.emplace(name,
                    std::make_unique<Table>(name, schema, std::move(store),
                                            state->next_row_id));
  }

  // Replay only the WAL tail past the checkpoint: after a clean shutdown
  // (checkpoint truncated the WAL) this loop reads nothing; after a crash it
  // replays exactly the frames the page file does not contain yet.
  const uint64_t ckpt = engine_->checkpoint_lsn();
  uint64_t max_lsn = ckpt;
  std::vector<WalRecord> records;
  ITAG_RETURN_IF_ERROR(
      ReadWal(options_.directory + "/" + options_.wal_file, &records));
  for (const WalRecord& rec : records) {
    ++recovery_stats_.wal_records_scanned;
    recovery_stats_.wal_bytes_scanned += rec.payload.size();
    if (rec.lsn > max_lsn) max_lsn = rec.lsn;
    if (rec.lsn <= ckpt) continue;  // already durable in the page file
    ++recovery_stats_.wal_records_replayed;
    Status s = ApplyWalRecord(rec);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  next_lsn_ = max_lsn + 1;
  ITAG_LOG(kInfo) << "paged open: " << tables_.size() << " tables, replayed "
                  << recovery_stats_.wal_records_replayed << "/"
                  << recovery_stats_.wal_records_scanned
                  << " wal records past lsn " << ckpt;
  return Status::OK();
}

Status Database::MakeTable(const std::string& name, const Schema& schema) {
  if (paged()) {
    std::string blob;
    schema.EncodeTo(&blob);
    ITAG_RETURN_IF_ERROR(engine_->CreateTable(name, blob));
    pager::PagedTableState* state = engine_->GetTable(name);
    auto store = std::make_unique<PagedRowStore>(state->tree.get(),
                                                 schema.num_columns(), 0);
    tables_.emplace(name, std::make_unique<Table>(name, schema,
                                                  std::move(store), 1));
    return Status::OK();
  }
  tables_.emplace(name, std::make_unique<Table>(name, schema));
  return Status::OK();
}

Status Database::ApplyWalRecord(const WalRecord& rec) {
  switch (rec.op) {
    case WalOp::kCreateTable: {
      Schema schema;
      size_t off = 0;
      if (!Schema::DecodeFrom(rec.payload, &off, &schema)) {
        return Status::Corruption("bad schema in wal for " + rec.table);
      }
      if (tables_.count(rec.table)) return Status::AlreadyExists(rec.table);
      return MakeTable(rec.table, schema);
    }
    case WalOp::kDropTable:
      if (paged() && tables_.count(rec.table)) {
        ITAG_RETURN_IF_ERROR(engine_->DropTable(rec.table));
      }
      tables_.erase(rec.table);
      return Status::OK();
    case WalOp::kInsert: {
      Table* t = GetTable(rec.table);
      if (t == nullptr) return Status::Corruption("wal insert into missing " +
                                                  rec.table);
      Row row;
      if (!DecodeRow(rec.payload, t->schema().num_columns(), &row)) {
        return Status::Corruption("bad row in wal for " + rec.table);
      }
      return t->InsertWithId(rec.row_id, row);
    }
    case WalOp::kUpdate: {
      Table* t = GetTable(rec.table);
      if (t == nullptr) return Status::Corruption("wal update into missing " +
                                                  rec.table);
      Row row;
      if (!DecodeRow(rec.payload, t->schema().num_columns(), &row)) {
        return Status::Corruption("bad row in wal for " + rec.table);
      }
      return t->Update(rec.row_id, row);
    }
    case WalOp::kDelete: {
      Table* t = GetTable(rec.table);
      if (t == nullptr) return Status::Corruption("wal delete into missing " +
                                                  rec.table);
      return t->Delete(rec.row_id);
    }
    case WalOp::kBatch: {
      // The group frame was CRC-complete, so every sub-record must parse;
      // anything less is corruption, not a crash artifact.
      size_t off = 0;
      const std::string& buf = rec.payload;
      while (off < buf.size()) {
        if (buf.size() - off < 4) {
          return Status::Corruption("torn batch sub-record header");
        }
        uint32_t len;
        std::memcpy(&len, buf.data() + off, 4);
        off += 4;
        if (buf.size() - off < len) {
          return Status::Corruption("torn batch sub-record body");
        }
        WalRecord sub;
        if (!DecodeWalRecord(buf.substr(off, len), &sub) ||
            sub.op == WalOp::kBatch) {
          return Status::Corruption("malformed batch sub-record");
        }
        off += len;
        Status s = ApplyWalRecord(sub);
        // Same tolerance as the top-level replay loop: a snapshot taken
        // between batch append and WAL truncate may already contain rows.
        if (!s.ok() && !s.IsAlreadyExists()) return s;
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown wal op");
}

Status Database::LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read snapshot " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < 8) return Status::Corruption("snapshot too short");
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (Crc32(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  size_t off = 0;
  uint32_t ntables;
  std::memcpy(&ntables, data.data(), 4);
  off += 4;
  if (ntables == kSnapshotV2Sentinel) {
    // v2 layout: [sentinel][u32 version][u64 checkpoint_lsn][u32 ntables]…
    // The sentinel can never be a real table count, so v1 files (which lead
    // with the count) are told apart by the first word alone.
    if (data.size() < off + 16) return Status::Corruption("snapshot too short");
    uint32_t version;
    std::memcpy(&version, data.data() + off, 4);
    off += 4;
    if (version != 2) {
      return Status::Corruption("unsupported snapshot version " +
                                std::to_string(version));
    }
    std::memcpy(&snapshot_lsn_, data.data() + off, 8);
    off += 8;
    std::memcpy(&ntables, data.data() + off, 4);
    off += 4;
  }
  for (uint32_t i = 0; i < ntables; ++i) {
    auto t = std::make_unique<Table>("", Schema());
    if (!Table::DecodeFrom(data, &off, t.get())) {
      return Status::Corruption("snapshot table " + std::to_string(i) +
                                " malformed");
    }
    std::string name = t->name();
    tables_.emplace(name, std::move(t));
  }
  return Status::OK();
}

Status Database::LogOp(WalOp op, const std::string& table, RowId row_id,
                       std::string payload) {
  if (!durable_) return Status::OK();
  if (!wal_error_.ok()) return wal_error_;
  WalRecord rec;
  rec.op = op;
  rec.table = table;
  rec.row_id = row_id;
  rec.payload = std::move(payload);
  if (batch_depth_ > 0) {
    // Buffer into the open atomic group instead of framing immediately; the
    // group frame's LSN covers every sub-record, so theirs stay 0.
    std::string encoded = EncodeWalRecord(rec);
    uint32_t len = static_cast<uint32_t>(encoded.size());
    batch_buf_.append(reinterpret_cast<const char*>(&len), 4);
    batch_buf_.append(encoded);
    ++batch_ops_;
    return Status::OK();
  }
  rec.lsn = next_lsn_++;
  size_t payload_bytes = rec.payload.size();
  obs::Span span("storage.wal.append");  // no-op unless the request is traced
  span.Annotate("bytes", static_cast<uint64_t>(payload_bytes));
  Status s = wal_.Append(rec);
  if (!s.ok()) {
    wal_error_ = s;
  } else {
    StorageMetrics::Get().wal_appends->Inc();
    StorageMetrics::Get().wal_bytes->Inc(payload_bytes);
  }
  return s;
}

void Database::BeginBatch() { ++batch_depth_; }

Status Database::CommitBatch() {
  if (batch_depth_ == 0) {
    return Status::FailedPrecondition("no batch open");
  }
  if (--batch_depth_ > 0) return Status::OK();
  size_t batch_ops = batch_ops_;
  batch_ops_ = 0;
  if (!durable_ || batch_buf_.empty()) {
    batch_buf_.clear();
    return Status::OK();
  }
  if (!wal_error_.ok()) {
    batch_buf_.clear();
    return wal_error_;
  }
  WalRecord rec;
  rec.op = WalOp::kBatch;
  rec.lsn = next_lsn_++;
  rec.payload = std::move(batch_buf_);
  batch_buf_.clear();
  size_t payload_bytes = rec.payload.size();
  obs::Span span("storage.wal.append");
  span.Annotate("bytes", static_cast<uint64_t>(payload_bytes));
  span.Annotate("batch_ops", static_cast<uint64_t>(batch_ops));
  Status s = wal_.Append(rec);
  if (!s.ok()) {
    wal_error_ = s;
  } else {
    StorageMetrics::Get().wal_appends->Inc();
    StorageMetrics::Get().wal_bytes->Inc(payload_bytes);
    StorageMetrics::Get().wal_batch_rows->Observe(batch_ops);
  }
  return s;
}

Status Database::CreateTable(const std::string& name, const Schema& schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table " + name);
  }
  std::string payload;
  schema.EncodeTo(&payload);
  ITAG_RETURN_IF_ERROR(LogOp(WalOp::kCreateTable, name, 0, payload));
  return MakeTable(name, schema);
}

Status Database::DropTable(const std::string& name) {
  if (!tables_.count(name)) return Status::NotFound("table " + name);
  ITAG_RETURN_IF_ERROR(LogOp(WalOp::kDropTable, name, 0, ""));
  if (paged()) {
    ITAG_RETURN_IF_ERROR(engine_->DropTable(name));
  }
  tables_.erase(name);
  return Status::OK();
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::AddUniqueIndex(const std::string& table,
                                const std::string& column) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  return t->AddUniqueIndex(column);
}

Status Database::AddOrderedIndex(const std::string& table,
                                 const std::string& column) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  return t->AddOrderedIndex(column);
}

Result<RowId> Database::Insert(const std::string& table, const Row& row) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  // Validate first so a bad row never reaches the log.
  ITAG_RETURN_IF_ERROR(t->schema().Validate(row));
  Result<RowId> id = t->Insert(row);
  if (!id.ok()) return id;
  Status s = LogOp(WalOp::kInsert, table, id.value(), EncodeRow(row));
  if (!s.ok()) return s;
  return id;
}

Status Database::Update(const std::string& table, RowId id, const Row& row) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  ITAG_RETURN_IF_ERROR(t->Update(id, row));
  return LogOp(WalOp::kUpdate, table, id, EncodeRow(row));
}

Status Database::Delete(const std::string& table, RowId id) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  ITAG_RETURN_IF_ERROR(t->Delete(id));
  return LogOp(WalOp::kDelete, table, id, "");
}

Status Database::Checkpoint() {
  if (!durable_) return Status::OK();
  if (batch_depth_ > 0) {
    return Status::FailedPrecondition("checkpoint inside an open batch");
  }
  // Never snapshot past a lost append: the in-memory tables may contain
  // acknowledged mutations the log does not, and a checkpoint would make
  // that divergence permanent and invisible.
  if (!wal_error_.ok()) return wal_error_;
  obs::Span span("storage.checkpoint");
  auto checkpoint_start = std::chrono::steady_clock::now();

  if (paged()) {
    // Refresh the catalog scalars the engine persists alongside each tree
    // root, then commit: flush dirty pages, write the catalog chain, flip
    // the meta slot. No table is serialized — cost scales with dirty pages,
    // not with total rows.
    for (const auto& [name, table] : tables_) {
      pager::PagedTableState* state = engine_->GetTable(name);
      if (state == nullptr) {
        return Status::Corruption("table " + name + " missing from catalog");
      }
      state->next_row_id = table->next_row_id();
      state->row_count = table->row_count();
    }
    const uint64_t ckpt_lsn = next_lsn_ - 1;
    ITAG_RETURN_IF_ERROR(engine_->Checkpoint(ckpt_lsn));
    // retain_wal keeps the log for replication subscribers; recovery still
    // skips frames with lsn <= the engine's recorded checkpoint LSN.
    Status reset = options_.retain_wal ? Status::OK() : wal_.Reset();
    if (reset.ok()) {
      StorageMetrics::Get().checkpoints->Inc();
      StorageMetrics::Get().checkpoint_latency_us->Observe(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - checkpoint_start)
                  .count()));
    }
    return reset;
  }

  // v2 snapshot: sentinel + version + the highest LSN the snapshot contains,
  // so recovery with a retained WAL replays only the tail past it.
  std::string data;
  const uint32_t sentinel = kSnapshotV2Sentinel;
  const uint32_t version = 2;
  const uint64_t ckpt_lsn = next_lsn_ - 1;
  data.append(reinterpret_cast<const char*>(&sentinel), 4);
  data.append(reinterpret_cast<const char*>(&version), 4);
  data.append(reinterpret_cast<const char*>(&ckpt_lsn), 8);
  uint32_t ntables = static_cast<uint32_t>(tables_.size());
  data.append(reinterpret_cast<const char*>(&ntables), 4);
  for (const auto& [name, table] : tables_) {
    (void)name;
    table->EncodeTo(&data);
  }
  uint32_t crc = Crc32(data.data(), data.size());
  data.append(reinterpret_cast<const char*>(&crc), 4);

  std::string snap = options_.directory + "/" + options_.snapshot_file;
  std::string tmp = snap + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) return Status::IOError("snapshot write failed");
  }
  std::error_code ec;
  fs::rename(tmp, snap, ec);
  if (ec) return Status::IOError("snapshot rename failed: " + ec.message());
  snapshot_lsn_ = ckpt_lsn;
  Status reset = options_.retain_wal ? Status::OK() : wal_.Reset();
  if (reset.ok()) {
    // Count and time only completed checkpoints, so the counter and the
    // histogram's count stay a consistent pair for operators.
    StorageMetrics::Get().checkpoints->Inc();
    StorageMetrics::Get().checkpoint_latency_us->Observe(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - checkpoint_start)
                .count()));
  }
  return reset;
}

uint64_t Database::checkpoint_lsn() const {
  return engine_ ? engine_->checkpoint_lsn() : snapshot_lsn_;
}

std::string Database::wal_path() const {
  return durable_ ? options_.directory + "/" + options_.wal_file : "";
}

Status Database::ApplyReplicated(const WalRecord& rec) {
  if (rec.lsn == 0) {
    return Status::InvalidArgument("replicated record without an lsn");
  }
  if (batch_depth_ > 0) {
    return Status::FailedPrecondition("replicated apply inside an open batch");
  }
  if (rec.lsn < next_lsn_) return Status::OK();  // duplicate: already applied
  if (rec.lsn > next_lsn_) {
    return Status::OutOfRange("replication gap: have lsn " +
                              std::to_string(next_lsn_ - 1) + ", got " +
                              std::to_string(rec.lsn));
  }
  if (durable_) {
    // WAL-first, exactly like a local mutation: the record lands in this
    // database's own log verbatim (original LSN), so a follower restart
    // recovers to the same cursor it acked.
    if (!wal_error_.ok()) return wal_error_;
    obs::Span span("storage.wal.append");
    span.Annotate("bytes", static_cast<uint64_t>(rec.payload.size()));
    Status s = wal_.Append(rec);
    if (!s.ok()) {
      wal_error_ = s;
      return s;
    }
    StorageMetrics::Get().wal_appends->Inc();
    StorageMetrics::Get().wal_bytes->Inc(rec.payload.size());
  }
  next_lsn_ = rec.lsn + 1;
  Status s = ApplyWalRecord(rec);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) {
    (void)t;
    out.push_back(name);
  }
  return out;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, t] : tables_) {
    (void)name;
    n += t->row_count();
  }
  return n;
}

}  // namespace itag::storage
