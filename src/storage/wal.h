#ifndef ITAG_STORAGE_WAL_H_
#define ITAG_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace itag::storage {

/// Logical redo-log record kinds. The engine logs operations, not pages:
/// replaying the sequence against an empty (or snapshotted) catalog
/// reconstructs the exact table contents.
enum class WalOp : uint8_t {
  kCreateTable = 1,
  kDropTable = 2,
  kInsert = 3,
  kUpdate = 4,
  kDelete = 5,
  /// Atomic group: the payload is a sequence of u32-length-prefixed encoded
  /// sub-records (each itself an EncodeWalRecord payload, kBatch excluded).
  /// Because the whole group rides one framed record, recovery either
  /// replays all of it or none — a torn tail can never expose half of a
  /// logical mutation (e.g. a budget debit without its task rows).
  kBatch = 6,
};

/// One decoded WAL record.
struct WalRecord {
  WalOp op;
  /// Log sequence number the Database stamps on every appended frame
  /// (monotonic, one per frame — a kBatch group shares one). The paged
  /// engine's checkpoint records the highest LSN it contains, so recovery
  /// replays only frames with lsn > checkpoint_lsn. Sub-records inside a
  /// kBatch payload carry 0 (the frame's LSN covers the group).
  uint64_t lsn = 0;
  std::string table;    ///< table name
  uint64_t row_id = 0;  ///< for insert/update/delete
  std::string payload;  ///< encoded schema (create) or row (insert/update)
};

/// Append-only write-ahead log. Each record is framed as
/// [u32 payload_len][u32 crc32(payload)][payload]; recovery stops cleanly at
/// the first torn or corrupt frame (the RocksDB/LevelDB convention), so a
/// crash mid-write never poisons earlier records.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  /// Opens (creating or appending to) the log at `path`.
  Status Open(const std::string& path);

  /// Appends one record and flushes it to the OS.
  Status Append(const WalRecord& record);

  /// Closes the file (no-op if unopened).
  void Close();

  /// Truncates the log to zero length (after a checkpoint made it redundant).
  Status Reset();

  bool is_open() const { return out_.is_open(); }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Reads every valid record from a WAL file. Returns OK with the records
/// decoded so far even when the tail is torn; returns Corruption only when a
/// frame is malformed in a way that indicates a bug rather than a crash
/// (checksum mismatch on a complete frame).
Status ReadWal(const std::string& path, std::vector<WalRecord>* records);

/// Serializes a record payload (everything after the frame header).
std::string EncodeWalRecord(const WalRecord& record);

/// Parses a record payload. Returns false on malformed input.
bool DecodeWalRecord(const std::string& payload, WalRecord* out);

}  // namespace itag::storage

#endif  // ITAG_STORAGE_WAL_H_
