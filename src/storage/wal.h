#ifndef ITAG_STORAGE_WAL_H_
#define ITAG_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace itag::storage {

/// Logical redo-log record kinds. The engine logs operations, not pages:
/// replaying the sequence against an empty (or snapshotted) catalog
/// reconstructs the exact table contents.
enum class WalOp : uint8_t {
  kCreateTable = 1,
  kDropTable = 2,
  kInsert = 3,
  kUpdate = 4,
  kDelete = 5,
  /// Atomic group: the payload is a sequence of u32-length-prefixed encoded
  /// sub-records (each itself an EncodeWalRecord payload, kBatch excluded).
  /// Because the whole group rides one framed record, recovery either
  /// replays all of it or none — a torn tail can never expose half of a
  /// logical mutation (e.g. a budget debit without its task rows).
  kBatch = 6,
};

/// One decoded WAL record.
struct WalRecord {
  WalOp op;
  /// Log sequence number the Database stamps on every appended frame
  /// (monotonic, one per frame — a kBatch group shares one). The paged
  /// engine's checkpoint records the highest LSN it contains, so recovery
  /// replays only frames with lsn > checkpoint_lsn. Sub-records inside a
  /// kBatch payload carry 0 (the frame's LSN covers the group).
  uint64_t lsn = 0;
  std::string table;    ///< table name
  uint64_t row_id = 0;  ///< for insert/update/delete
  std::string payload;  ///< encoded schema (create) or row (insert/update)
};

/// Append-only write-ahead log. Each record is framed as
/// [u32 payload_len][u32 crc32(payload)][payload]; recovery stops cleanly at
/// the first torn or corrupt frame (the RocksDB/LevelDB convention), so a
/// crash mid-write never poisons earlier records.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  /// Opens (creating or appending to) the log at `path`.
  Status Open(const std::string& path);

  /// Appends one record and flushes it to the OS.
  Status Append(const WalRecord& record);

  /// Closes the file (no-op if unopened).
  void Close();

  /// Truncates the log to zero length (after a checkpoint made it redundant).
  Status Reset();

  bool is_open() const { return out_.is_open(); }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Reads every valid record from a WAL file. Returns OK with the records
/// decoded so far even when the tail is torn; returns Corruption only when a
/// frame is malformed in a way that indicates a bug rather than a crash
/// (checksum mismatch on a complete frame).
Status ReadWal(const std::string& path, std::vector<WalRecord>* records);

/// Incremental reader over a live, append-only WAL file — the primary side
/// of replication tails each shard's log with one of these. Next() returns
/// complete frames one at a time and remembers the byte offset it has
/// consumed, so a frame whose tail has not hit the file yet (the writer is
/// mid-append) is simply "not there yet": Next() reports no record now and
/// re-reads from the same offset on the next call. The file is reopened on
/// every poll burst, which keeps the tailer correct across the writer's own
/// close/reopen cycles and costs nothing at the poll rates replication runs
/// at.
///
/// A file that *shrinks* below the consumed offset means the history was
/// truncated underneath us (a checkpoint without retain_wal) — that is not
/// recoverable by waiting, so Next() fails with FailedPrecondition and the
/// subscriber must resync from a fresh copy.
class WalTailer {
 public:
  explicit WalTailer(std::string path) : path_(std::move(path)) {}

  /// Reads the next complete record at the cursor. Returns OK with
  /// *have=true and the record in *out when one was available, OK with
  /// *have=false when the tail is (currently) exhausted, Corruption on a
  /// checksum/decode failure of a complete frame, FailedPrecondition when
  /// the file shrank below the cursor.
  Status Next(WalRecord* out, bool* have);

  /// Byte offset of the cursor (start of the next unread frame).
  uint64_t offset() const { return offset_; }

  /// Highest LSN this tailer has observed in the file — including frames
  /// already returned. Streams stamp this on outgoing batches so followers
  /// can compute lag without asking the primary's (locked) database.
  uint64_t head_lsn() const { return head_lsn_; }

  /// Total file bytes behind the last complete frame seen (for lag_bytes).
  uint64_t head_bytes() const { return head_bytes_; }

 private:
  std::string path_;
  uint64_t offset_ = 0;
  uint64_t head_lsn_ = 0;
  uint64_t head_bytes_ = 0;
};

/// Serializes a record payload (everything after the frame header).
std::string EncodeWalRecord(const WalRecord& record);

/// Parses a record payload. Returns false on malformed input.
bool DecodeWalRecord(const std::string& payload, WalRecord* out);

}  // namespace itag::storage

#endif  // ITAG_STORAGE_WAL_H_
