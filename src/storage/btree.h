#ifndef ITAG_STORAGE_BTREE_H_
#define ITAG_STORAGE_BTREE_H_

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace itag::storage {

/// In-memory B+-tree set with linked leaves, used as the ordered secondary
/// index structure of the embedded engine. Keys are unique; index entries for
/// non-unique columns append the row id to the key to disambiguate.
///
/// Design notes (documented deliberately, per the engine's conventions):
///  * Insertions split nodes at `kFanout` and keep the tree height-balanced.
///  * Deletions are lazy: a key is removed from its leaf, and a leaf/internal
///    node is unlinked only when it becomes completely empty. Nodes are never
///    merged or rebalanced on delete. This keeps deletes O(log n) and simple
///    at the cost of transiently sparse nodes — the same trade made by many
///    log-structured systems that defer compaction. All ordering and scan
///    invariants hold regardless.
///  * Single-writer: no internal locking (the engine is single-threaded by
///    design; the simulator drives it from one event loop).
template <typename Key, typename Compare = std::less<Key>>
class BPlusTree {
 public:
  static constexpr size_t kFanout = 64;

  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  /// Inserts `key`; returns false if it was already present.
  bool Insert(const Key& key) {
    InsertResult r = InsertInto(root_.get(), key);
    if (!r.inserted) return false;
    if (r.split_right != nullptr) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(r.split_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(r.split_right));
      root_ = std::move(new_root);
    }
    ++size_;
    return true;
  }

  /// Removes `key`; returns false if absent.
  bool Erase(const Key& key) {
    if (!EraseFrom(root_.get(), key)) return false;
    // Collapse a root that lost all separators down to its only child.
    while (!root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children[0]);
    }
    --size_;
    return true;
  }

  /// True iff `key` is present.
  bool Contains(const Key& key) const {
    const Node* n = root_.get();
    while (!n->leaf) {
      size_t i = UpperBound(n->keys, key);
      n = n->children[i].get();
    }
    size_t i = LowerBound(n->keys, key);
    return i < n->keys.size() && !cmp_(key, n->keys[i]);
  }

  /// Number of keys.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits all keys in [lo, hi) in order; `fn` returns false to stop early.
  void ScanRange(const Key& lo, const Key& hi,
                 const std::function<bool(const Key&)>& fn) const {
    const Node* n = DescendToLeaf(lo);
    while (n != nullptr) {
      for (size_t i = LowerBound(n->keys, lo); i < n->keys.size(); ++i) {
        if (!cmp_(n->keys[i], hi)) return;
        if (!fn(n->keys[i])) return;
      }
      n = n->next;
    }
  }

  /// Visits every key in order.
  void ScanAll(const std::function<bool(const Key&)>& fn) const {
    const Node* n = LeftmostLeaf();
    while (n != nullptr) {
      for (const Key& k : n->keys) {
        if (!fn(k)) return;
      }
      n = n->next;
    }
  }

  /// Height of the tree (1 for a lone leaf). Exposed for invariant tests.
  size_t Height() const {
    size_t h = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children[0].get();
      ++h;
    }
    return h;
  }

  /// Verifies structural invariants (sorted keys, child counts, uniform leaf
  /// depth, leaf chain ordering). Returns false on violation. Test hook.
  bool CheckInvariants() const {
    size_t depth = 0;
    if (!CheckNode(root_.get(), 1, &depth, nullptr, nullptr)) return false;
    // Leaf chain must produce globally sorted output.
    const Node* n = LeftmostLeaf();
    const Key* prev = nullptr;
    size_t count = 0;
    while (n != nullptr) {
      for (const Key& k : n->keys) {
        if (prev != nullptr && !cmp_(*prev, k)) return false;
        prev = &k;
        ++count;
      }
      n = n->next;
    }
    return count == size_;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    std::vector<std::unique_ptr<Node>> children;  // internal only
    Node* next = nullptr;                         // leaf chain
  };

  struct InsertResult {
    bool inserted = false;
    Key split_key{};
    std::unique_ptr<Node> split_right;
  };

  size_t LowerBound(const std::vector<Key>& keys, const Key& k) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cmp_(keys[mid], k)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t UpperBound(const std::vector<Key>& keys, const Key& k) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cmp_(k, keys[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  const Node* LeftmostLeaf() const {
    const Node* n = root_.get();
    while (!n->leaf) n = n->children[0].get();
    return n;
  }

  const Node* DescendToLeaf(const Key& k) const {
    const Node* n = root_.get();
    while (!n->leaf) {
      size_t i = UpperBound(n->keys, k);
      n = n->children[i].get();
    }
    return n;
  }

  InsertResult InsertInto(Node* n, const Key& key) {
    InsertResult out;
    if (n->leaf) {
      size_t i = LowerBound(n->keys, key);
      if (i < n->keys.size() && !cmp_(key, n->keys[i])) return out;  // dup
      n->keys.insert(n->keys.begin() + i, key);
      out.inserted = true;
      if (n->keys.size() >= kFanout) SplitLeaf(n, &out);
      return out;
    }
    size_t i = UpperBound(n->keys, key);
    InsertResult child = InsertInto(n->children[i].get(), key);
    out.inserted = child.inserted;
    if (child.split_right != nullptr) {
      n->keys.insert(n->keys.begin() + i, child.split_key);
      n->children.insert(n->children.begin() + i + 1,
                         std::move(child.split_right));
      if (n->keys.size() >= kFanout) SplitInternal(n, &out);
    }
    return out;
  }

  void SplitLeaf(Node* n, InsertResult* out) {
    size_t mid = n->keys.size() / 2;
    auto right = std::make_unique<Node>(/*leaf=*/true);
    right->keys.assign(n->keys.begin() + mid, n->keys.end());
    n->keys.resize(mid);
    right->next = n->next;
    n->next = right.get();
    out->split_key = right->keys.front();
    out->split_right = std::move(right);
  }

  void SplitInternal(Node* n, InsertResult* out) {
    size_t mid = n->keys.size() / 2;
    auto right = std::make_unique<Node>(/*leaf=*/false);
    out->split_key = n->keys[mid];
    right->keys.assign(n->keys.begin() + mid + 1, n->keys.end());
    right->children.reserve(n->keys.size() - mid);
    for (size_t i = mid + 1; i < n->children.size(); ++i) {
      right->children.push_back(std::move(n->children[i]));
    }
    n->keys.resize(mid);
    n->children.resize(mid + 1);
    out->split_right = std::move(right);
  }

  bool EraseFrom(Node* n, const Key& key) {
    if (n->leaf) {
      size_t i = LowerBound(n->keys, key);
      if (i >= n->keys.size() || cmp_(key, n->keys[i])) return false;
      n->keys.erase(n->keys.begin() + i);
      return true;
    }
    size_t i = UpperBound(n->keys, key);
    Node* child = n->children[i].get();
    if (!EraseFrom(child, key)) return false;
    // Unlink children that became completely empty (lazy rebalancing).
    bool child_empty =
        child->leaf ? child->keys.empty() : child->children.empty();
    if (child_empty) {
      if (child->leaf) UnlinkLeaf(child);
      n->children.erase(n->children.begin() + i);
      if (!n->keys.empty()) {
        size_t sep = i > 0 ? i - 1 : 0;
        n->keys.erase(n->keys.begin() + sep);
      }
    }
    return true;
  }

  void UnlinkLeaf(Node* leaf) {
    // Walk the leaf chain from the leftmost leaf to find the predecessor.
    Node* n = root_.get();
    while (!n->leaf) n = n->children[0].get();
    if (n == leaf) return;  // leftmost leaves keep their place as root shrink
    while (n != nullptr && n->next != leaf) n = n->next;
    if (n != nullptr) n->next = leaf->next;
  }

  bool CheckNode(const Node* n, size_t depth, size_t* leaf_depth,
                 const Key* lo, const Key* hi) const {
    for (size_t i = 0; i + 1 < n->keys.size(); ++i) {
      if (!cmp_(n->keys[i], n->keys[i + 1])) return false;
    }
    for (const Key& k : n->keys) {
      if (lo != nullptr && cmp_(k, *lo)) return false;
      if (hi != nullptr && !cmp_(k, *hi)) return false;
    }
    if (n->leaf) {
      if (*leaf_depth == 0) {
        *leaf_depth = depth;
      } else if (*leaf_depth != depth) {
        return false;
      }
      return true;
    }
    if (n->children.size() != n->keys.size() + 1) return false;
    for (size_t i = 0; i < n->children.size(); ++i) {
      const Key* clo = i == 0 ? lo : &n->keys[i - 1];
      const Key* chi = i == n->keys.size() ? hi : &n->keys[i];
      if (!CheckNode(n->children[i].get(), depth + 1, leaf_depth, clo, chi)) {
        return false;
      }
    }
    return true;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  Compare cmp_;
};

}  // namespace itag::storage

#endif  // ITAG_STORAGE_BTREE_H_
