#ifndef ITAG_STORAGE_PAGER_PAGE_H_
#define ITAG_STORAGE_PAGER_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace itag::storage::pager {

/// Page number inside the page file. Pages 0 and 1 are the two alternating
/// meta slots; data pages start at 2, so 0 doubles as the null link.
using PageId = uint32_t;

inline constexpr PageId kNullPage = 0;
inline constexpr PageId kMetaSlotA = 0;
inline constexpr PageId kMetaSlotB = 1;
inline constexpr PageId kFirstDataPage = 2;

/// "ITGP" little-endian — the first field of every meta slot.
inline constexpr uint32_t kPagerMagic = 0x50475449;
inline constexpr uint32_t kPagerVersion = 1;

/// Fixed page size of a file is chosen at creation time and recorded in the
/// meta slots; every later open must agree. 4 KiB matches the common
/// filesystem block; payload_len is a u16 so sizes above 64 KiB are invalid.
inline constexpr size_t kDefaultPageSize = 4096;
inline constexpr size_t kMinPageSize = 512;
inline constexpr size_t kMaxPageSize = 65536;

/// On-disk kinds a page slot can hold. kFree slots exist only logically (a
/// freed slot keeps its stale image until reused); the type survives in the
/// header so a dangling pointer that lands on the wrong kind is a typed
/// Corruption, not a misparse.
enum class PageType : uint8_t {
  kFree = 0,
  kMeta = 1,
  kCatalog = 2,   ///< chained checkpoint blob (table directory + free list)
  kInternal = 3,  ///< B+tree internal node
  kLeaf = 4,      ///< B+tree leaf node
  kOverflow = 5,  ///< chained continuation of a value too big for its leaf
};

/// Stable display name for diagnostics ("leaf", "overflow", ...).
const char* PageTypeName(PageType t);

/// bit0 of PageHeader::flags: the stored payload bytes are compressed
/// (PagezCompress) and payload_len is the size after decompression.
inline constexpr uint8_t kPageFlagCompressed = 0x1;

/// Fixed 32-byte header at the start of every page slot. CRC-32 (the same
/// common/crc32.h polynomial framing the WAL) covers the header with the
/// crc field zeroed plus the `stored_len` payload bytes that follow it, so
/// a torn write, a bit flip, or a write that landed in the wrong slot
/// (`page_id` is part of the covered bytes) all surface as typed
/// Corruption on read. Only `32 + stored_len` bytes of a slot are ever
/// written — with compression on, that is the physical-write saving.
struct PageHeader {
  uint32_t crc = 0;
  PageId page_id = kNullPage;    ///< self id; catches misdirected IO
  PageType type = PageType::kFree;
  uint8_t flags = 0;
  uint16_t payload_len = 0;      ///< logical (decompressed) payload bytes
  uint16_t stored_len = 0;       ///< payload bytes physically in the slot
  uint8_t reserved[2] = {0, 0};
  uint64_t lsn = 0;              ///< WAL frame lsn of the last mutation
  PageId next = kNullPage;       ///< chain link (catalog, overflow)
};

inline constexpr size_t kPageHeaderSize = 32;
static_assert(sizeof(PageHeader) == kPageHeaderSize,
              "page header layout is part of the file format");

/// Decoded in-memory image of one page: header plus the *uncompressed*
/// payload bytes. The pager's ReadPage/WritePage translate between this and
/// the on-disk slot (CRC check/stamp, compression).
struct PageImage {
  PageHeader header;
  std::vector<uint8_t> payload;  ///< capacity page_size - kPageHeaderSize

  uint8_t* data() { return payload.data(); }
  const uint8_t* data() const { return payload.data(); }
};

}  // namespace itag::storage::pager

#endif  // ITAG_STORAGE_PAGER_PAGE_H_
