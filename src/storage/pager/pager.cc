#include "storage/pager/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/binio.h"
#include "common/crc32.h"
#include "obs/metrics.h"
#include "storage/pager/pagez.h"

namespace itag::storage::pager {

namespace {

/// Process-wide storage.page.* physical-IO counters (see
/// docs/observability.md); shards aggregate, tests use Pager::stats().
struct PageIoMetrics {
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* bytes_written;

  static const PageIoMetrics& Get() {
    static const PageIoMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      PageIoMetrics s;
      s.reads = reg.GetCounter("storage.page.reads");
      s.writes = reg.GetCounter("storage.page.writes");
      s.bytes_written = reg.GetCounter("storage.page.bytes_written");
      return s;
    }();
    return m;
  }
};

/// Meta-slot payload layout (little-endian, via common/binio.h).
struct MetaBlock {
  uint32_t page_size = 0;
  uint64_t epoch = 0;
  uint32_t page_count = 0;
  PageId catalog_head = kNullPage;
  PageId freelist_head = kNullPage;
  uint64_t checkpoint_lsn = 0;
};

std::string EncodeMeta(const MetaBlock& m) {
  ByteWriter w;
  w.U32(kPagerMagic);
  w.U32(kPagerVersion);
  w.U32(m.page_size);
  w.U64(m.epoch);
  w.U32(m.page_count);
  w.U32(m.catalog_head);
  w.U32(m.freelist_head);
  w.U64(m.checkpoint_lsn);
  return w.Take();
}

bool DecodeMeta(const uint8_t* data, size_t n, MetaBlock* out) {
  ByteReader r(std::string_view(reinterpret_cast<const char*>(data), n));
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic) || !r.U32(&version)) return false;
  if (magic != kPagerMagic || version != kPagerVersion) return false;
  return r.U32(&out->page_size) && r.U64(&out->epoch) &&
         r.U32(&out->page_count) && r.U32(&out->catalog_head) &&
         r.U32(&out->freelist_head) && r.U64(&out->checkpoint_lsn) &&
         r.AtEnd();
}

/// Serializes a page header into the first kPageHeaderSize bytes of `buf`
/// with an explicit field-by-field layout (no struct memcpy — padding and
/// endianness stay out of the file format).
void PutHeader(const PageHeader& h, uint8_t* buf) {
  auto put32 = [&](size_t off, uint32_t v) {
    for (int i = 0; i < 4; ++i) buf[off + i] = (v >> (8 * i)) & 0xFF;
  };
  auto put16 = [&](size_t off, uint16_t v) {
    buf[off] = v & 0xFF;
    buf[off + 1] = (v >> 8) & 0xFF;
  };
  put32(0, h.crc);
  put32(4, h.page_id);
  buf[8] = static_cast<uint8_t>(h.type);
  buf[9] = h.flags;
  put16(10, h.payload_len);
  put16(12, h.stored_len);
  buf[14] = buf[15] = 0;
  for (int i = 0; i < 8; ++i) buf[16 + i] = (h.lsn >> (8 * i)) & 0xFF;
  put32(24, h.next);
  put32(28, 0);  // reserved tail
}

void GetHeader(const uint8_t* buf, PageHeader* h) {
  auto get32 = [&](size_t off) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf[off + i]) << (8 * i);
    return v;
  };
  h->crc = get32(0);
  h->page_id = get32(4);
  h->type = static_cast<PageType>(buf[8]);
  h->flags = buf[9];
  h->payload_len = static_cast<uint16_t>(buf[10] | (buf[11] << 8));
  h->stored_len = static_cast<uint16_t>(buf[12] | (buf[13] << 8));
  uint64_t lsn = 0;
  for (int i = 0; i < 8; ++i) lsn |= static_cast<uint64_t>(buf[16 + i]) << (8 * i);
  h->lsn = lsn;
  h->next = get32(24);
}

}  // namespace

const char* PageTypeName(PageType t) {
  switch (t) {
    case PageType::kFree: return "free";
    case PageType::kMeta: return "meta";
    case PageType::kCatalog: return "catalog";
    case PageType::kInternal: return "internal";
    case PageType::kLeaf: return "leaf";
    case PageType::kOverflow: return "overflow";
  }
  return "?";
}

Pager::~Pager() { Close(); }

void Pager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Pager::Open(const PagerOptions& options) {
  Close();
  options_ = options;
  if (options.page_size < kMinPageSize || options.page_size > kMaxPageSize ||
      (options.page_size & (options.page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two in [" +
                                   std::to_string(kMinPageSize) + "," +
                                   std::to_string(kMaxPageSize) + "]");
  }
  page_size_ = options.page_size;
  fd_ = ::open(options.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open page file " + options.path + ": " +
                           std::strerror(errno));
  }
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < static_cast<off_t>(kMinPageSize)) return Format();

  // Pick the valid meta slot with the higher epoch (a torn checkpoint
  // leaves exactly one valid slot — the previous commit).
  bool valid_a = false, valid_b = false;
  uint64_t epoch_a = 0, epoch_b = 0;
  std::vector<uint8_t> payload_a, payload_b;
  ITAG_RETURN_IF_ERROR(ReadMetaSlot(kMetaSlotA, &valid_a, &epoch_a, &payload_a));
  ITAG_RETURN_IF_ERROR(ReadMetaSlot(kMetaSlotB, &valid_b, &epoch_b, &payload_b));
  if (!valid_a && !valid_b) {
    return Status::Corruption("page file " + options.path +
                              " has no valid meta slot");
  }
  const std::vector<uint8_t>& payload =
      (valid_a && (!valid_b || epoch_a > epoch_b)) ? payload_a : payload_b;
  MetaBlock meta;
  if (!DecodeMeta(payload.data(), payload.size(), &meta)) {
    return Status::Corruption("page file meta malformed in " + options.path);
  }
  if (meta.page_size != page_size_) {
    return Status::InvalidArgument(
        "page file " + options.path + " has page size " +
        std::to_string(meta.page_size) + ", options say " +
        std::to_string(page_size_) + " (the size is a format property)");
  }
  epoch_ = meta.epoch;
  page_count_ = meta.page_count;
  catalog_head_ = meta.catalog_head;
  freelist_head_ = meta.freelist_head;
  checkpoint_lsn_ = meta.checkpoint_lsn;
  free_now_.clear();
  free_pending_.clear();
  fresh_.clear();
  return LoadFreeList(freelist_head_);
}

Status Pager::Format() {
  epoch_ = 1;
  page_count_ = kFirstDataPage;
  catalog_head_ = kNullPage;
  freelist_head_ = kNullPage;
  checkpoint_lsn_ = 0;
  free_now_.clear();
  free_pending_.clear();
  fresh_.clear();

  MetaBlock meta;
  meta.page_size = static_cast<uint32_t>(page_size_);
  meta.epoch = epoch_;
  meta.page_count = page_count_;
  PageImage img;
  img.header.page_id = static_cast<PageId>(epoch_ & 1);
  img.header.type = PageType::kMeta;
  img.header.lsn = epoch_;  // meta slots carry their epoch here
  std::string blob = EncodeMeta(meta);
  img.payload.assign(blob.begin(), blob.end());
  ITAG_RETURN_IF_ERROR(WritePage(&img));
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed on " + options_.path);
  }
  return Status::OK();
}

Status Pager::ReadMetaSlot(PageId slot, bool* valid, uint64_t* epoch,
                           std::vector<uint8_t>* payload) {
  *valid = false;
  // A meta slot is header + a few dozen payload bytes; 512 covers it at
  // any legal page size, which sidesteps the bootstrap problem of needing
  // the page size (it is *in* the meta) to know slot offsets. Slot B sits
  // at `page_size`, which Open already validated against the options.
  std::vector<uint8_t> buf(kMinPageSize, 0);
  off_t off = static_cast<off_t>(slot) * static_cast<off_t>(page_size_);
  ssize_t n = ::pread(fd_, buf.data(), buf.size(), off);
  if (n < 0) return Status::IOError("pread meta: " + options_.path);
  if (static_cast<size_t>(n) < kPageHeaderSize) return Status::OK();
  PageHeader h;
  GetHeader(buf.data(), &h);
  if (h.type != PageType::kMeta || h.page_id != slot) return Status::OK();
  if (h.stored_len > buf.size() - kPageHeaderSize) return Status::OK();
  PageHeader zeroed = h;
  zeroed.crc = 0;
  uint8_t hdr[kPageHeaderSize];
  PutHeader(zeroed, hdr);
  uint32_t crc = Crc32(hdr, kPageHeaderSize);
  crc = Crc32Extend(crc, buf.data() + kPageHeaderSize, h.stored_len);
  if (crc != h.crc) return Status::OK();
  payload->assign(buf.begin() + kPageHeaderSize,
                  buf.begin() + kPageHeaderSize + h.stored_len);
  *valid = true;
  *epoch = h.lsn;  // meta slots reuse the lsn field for their epoch
  return Status::OK();
}

Status Pager::ReadRaw(PageId id, std::vector<uint8_t>* buf) {
  buf->assign(page_size_, 0);
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pread(fd_, buf->data(), page_size_, off);
  if (n < 0) {
    return Status::IOError("pread page " + std::to_string(id) + ": " +
                           std::strerror(errno));
  }
  // Short reads zero-fill: a slot past EOF simply fails its CRC.
  return Status::OK();
}

Status Pager::WriteRaw(PageId id, const uint8_t* data, size_t n) {
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::pwrite(fd_, data + done, n - done, off + done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite page " + std::to_string(id) + ": " +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Pager::ReadPage(PageId id, PageImage* out) {
  if (id >= page_count_ && id >= kFirstDataPage) {
    return Status::Corruption("page " + std::to_string(id) +
                              " beyond allocated count " +
                              std::to_string(page_count_));
  }
  std::vector<uint8_t> buf;
  ITAG_RETURN_IF_ERROR(ReadRaw(id, &buf));
  PageHeader h;
  GetHeader(buf.data(), &h);
  if (h.stored_len > page_size_ - kPageHeaderSize ||
      h.payload_len > page_size_ - kPageHeaderSize) {
    return Status::Corruption("page " + std::to_string(id) +
                              " header lengths out of range");
  }
  PageHeader zeroed = h;
  zeroed.crc = 0;
  uint8_t hdr[kPageHeaderSize];
  PutHeader(zeroed, hdr);
  uint32_t crc = Crc32(hdr, kPageHeaderSize);
  crc = Crc32Extend(crc, buf.data() + kPageHeaderSize, h.stored_len);
  if (crc != h.crc) {
    return Status::Corruption("torn page " + std::to_string(id) +
                              ": checksum mismatch");
  }
  if (h.page_id != id) {
    return Status::Corruption("page " + std::to_string(id) +
                              " carries id " + std::to_string(h.page_id) +
                              " (misdirected write)");
  }
  out->header = h;
  if (h.flags & kPageFlagCompressed) {
    if (!PagezDecompress(buf.data() + kPageHeaderSize, h.stored_len,
                         h.payload_len, &out->payload)) {
      return Status::Corruption("page " + std::to_string(id) +
                                " compressed payload malformed");
    }
  } else {
    out->payload.assign(buf.begin() + kPageHeaderSize,
                        buf.begin() + kPageHeaderSize + h.stored_len);
  }
  out->header.flags &= static_cast<uint8_t>(~kPageFlagCompressed);
  out->header.stored_len = out->header.payload_len;
  ++stats_.page_reads;
  PageIoMetrics::Get().reads->Inc();
  return Status::OK();
}

Status Pager::WritePage(PageImage* img) {
  PageHeader& h = img->header;
  if (img->payload.size() > page_size_ - kPageHeaderSize) {
    return Status::InvalidArgument("page payload " +
                                   std::to_string(img->payload.size()) +
                                   " exceeds capacity");
  }
  h.payload_len = static_cast<uint16_t>(img->payload.size());
  h.flags &= static_cast<uint8_t>(~kPageFlagCompressed);

  const uint8_t* stored = img->payload.data();
  size_t stored_len = img->payload.size();
  std::vector<uint8_t> packed;
#ifndef ITAG_PAGER_NO_COMPRESSION
  if (options_.compression && h.type != PageType::kMeta &&
      PagezCompress(img->payload.data(), img->payload.size(), &packed)) {
    stored = packed.data();
    stored_len = packed.size();
    h.flags |= kPageFlagCompressed;
    ++stats_.compressed_writes;
  }
#endif
  h.stored_len = static_cast<uint16_t>(stored_len);

  std::vector<uint8_t> buf(kPageHeaderSize + stored_len);
  h.crc = 0;
  PutHeader(h, buf.data());
  if (stored_len > 0) std::memcpy(buf.data() + kPageHeaderSize, stored, stored_len);
  h.crc = Crc32(buf.data(), buf.size());
  PutHeader(h, buf.data());
  ITAG_RETURN_IF_ERROR(WriteRaw(h.page_id, buf.data(), buf.size()));
  ++stats_.page_writes;
  stats_.bytes_written += buf.size();
  PageIoMetrics::Get().writes->Inc();
  PageIoMetrics::Get().bytes_written->Inc(buf.size());
  return Status::OK();
}

Result<PageId> Pager::Allocate() {
  PageId id;
  if (!free_now_.empty()) {
    id = free_now_.back();
    free_now_.pop_back();
  } else {
    if (page_count_ == UINT32_MAX) {
      return Status::ResourceExhausted("page file full");
    }
    id = page_count_++;
  }
  fresh_.insert(id);
  return id;
}

void Pager::Free(PageId id) {
  if (id < kFirstDataPage) return;
  // A page born this epoch is referenced by no committed meta — it can be
  // reused immediately; anything older must cool off until the next commit.
  if (fresh_.erase(id) > 0) {
    free_now_.push_back(id);
  } else {
    free_pending_.push_back(id);
  }
}

Status Pager::LoadFreeList(PageId head) {
  std::string blob;
  uint32_t hops = 0;
  for (PageId id = head; id != kNullPage;) {
    if (++hops > page_count_) {
      return Status::Corruption("free-list chain cycles");
    }
    PageImage img;
    ITAG_RETURN_IF_ERROR(ReadPage(id, &img));
    if (img.header.type != PageType::kCatalog) {
      return Status::Corruption("free-list chain page " + std::to_string(id) +
                                " has type " +
                                PageTypeName(img.header.type));
    }
    blob.append(reinterpret_cast<const char*>(img.payload.data()),
                img.payload.size());
    id = img.header.next;
  }
  if (blob.empty()) return Status::OK();
  ByteReader r(blob);
  std::vector<uint32_t> ids;
  if (!r.U32Vec(&ids) || !r.AtEnd()) {
    return Status::Corruption("free list malformed");
  }
  free_now_.assign(ids.begin(), ids.end());
  return Status::OK();
}

Status Pager::Commit(PageId catalog_head, uint64_t checkpoint_lsn) {
  // Retire the old free-list chain; its pages join the pending set and ride
  // the new durable list (reusable next epoch).
  for (PageId id = freelist_head_; id != kNullPage;) {
    PageImage img;
    ITAG_RETURN_IF_ERROR(ReadPage(id, &img));
    PageId next = img.header.next;
    Free(id);
    id = next;
  }
  freelist_head_ = kNullPage;

  // Size the chain before allocating it: allocation only pops from
  // free_now_, so the blob can only shrink and one pass suffices. Chain
  // pages must come from free_now_ (or growth) — pending pages are still
  // referenced by the fallback meta if this commit's meta write tears.
  const size_t cap = payload_size();
  size_t upper = 4 + 4 * (free_now_.size() + free_pending_.size());
  size_t npages = (upper + cap - 1) / cap;
  std::vector<PageId> chain;
  chain.reserve(npages);
  for (size_t i = 0; i < npages; ++i) {
    Result<PageId> id = Allocate();
    ITAG_RETURN_IF_ERROR(id.status());
    chain.push_back(id.value());
  }
  ByteWriter w;
  {
    std::vector<uint32_t> ids;
    ids.reserve(free_now_.size() + free_pending_.size());
    for (PageId id : free_now_) ids.push_back(id);
    for (PageId id : free_pending_) ids.push_back(id);
    w.U32Vec(ids);
  }
  const std::string blob = w.Take();
  size_t off = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    PageImage img;
    img.header.page_id = chain[i];
    img.header.type = PageType::kCatalog;
    img.header.lsn = checkpoint_lsn;
    img.header.next = i + 1 < chain.size() ? chain[i + 1] : kNullPage;
    size_t take = blob.size() - off < cap ? blob.size() - off : cap;
    img.payload.assign(blob.begin() + off, blob.begin() + off + take);
    off += take;
    ITAG_RETURN_IF_ERROR(WritePage(&img));
  }
  PageId new_freelist_head = chain.empty() ? kNullPage : chain[0];

  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed on " + options_.path);
  }

  // One meta-slot write commits the epoch; until it lands, the previous
  // slot still describes a fully intact tree.
  MetaBlock meta;
  meta.page_size = static_cast<uint32_t>(page_size_);
  meta.epoch = epoch_ + 1;
  meta.page_count = page_count_;
  meta.catalog_head = catalog_head;
  meta.freelist_head = new_freelist_head;
  meta.checkpoint_lsn = checkpoint_lsn;
  PageImage img;
  img.header.page_id = static_cast<PageId>(meta.epoch & 1);
  img.header.type = PageType::kMeta;
  img.header.lsn = meta.epoch;  // meta slots carry their epoch here
  std::string mblob = EncodeMeta(meta);
  img.payload.assign(mblob.begin(), mblob.end());
  ITAG_RETURN_IF_ERROR(WritePage(&img));
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed on " + options_.path);
  }

  epoch_ = meta.epoch;
  checkpoint_lsn_ = checkpoint_lsn;
  catalog_head_ = catalog_head;
  freelist_head_ = new_freelist_head;
  free_now_.insert(free_now_.end(), free_pending_.begin(),
                   free_pending_.end());
  free_pending_.clear();
  fresh_.clear();
  return Status::OK();
}

}  // namespace itag::storage::pager
