#ifndef ITAG_STORAGE_PAGER_PAGED_ENGINE_H_
#define ITAG_STORAGE_PAGER_PAGED_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/pager/page_cache.h"
#include "storage/pager/paged_btree.h"
#include "storage/pager/pager.h"

namespace itag::storage::pager {

struct PagedEngineOptions {
  std::string path;                   ///< page file
  size_t page_size = kDefaultPageSize;
  size_t cache_bytes = 64ull << 20;   ///< PageCache budget
  bool compression = false;           ///< pagez page payloads
};

/// One table's durable state inside the page file. `tree` is live; the
/// scalar fields are refreshed by the Database right before Checkpoint and
/// are authoritative only in the committed catalog.
struct PagedTableState {
  std::string schema_blob;   ///< Schema::EncodeTo bytes (opaque here)
  uint64_t next_row_id = 1;
  uint64_t row_count = 0;
  std::unique_ptr<PagedBTree> tree;
};

/// The paged storage engine: one Pager + PageCache and a catalog of named
/// B+trees. The catalog (table name, schema, next_row_id, row_count, tree
/// root) is serialized into a chain of kCatalog pages whose head the Pager's
/// meta slot records, so Open() restores every table by reading the meta
/// slot and that chain — O(catalog), not O(rows).
///
/// Checkpoint(lsn) is the commit point: flush the page cache, rewrite the
/// catalog chain, then Pager::Commit. Everything before the commit goes to
/// pages the previous checkpoint considers free (copy-on-write), so a crash
/// anywhere re-opens the previous checkpoint exactly.
class PagedEngine {
 public:
  Status Open(const PagedEngineOptions& options);
  void Close();
  bool is_open() const { return pager_.is_open(); }

  Pager* pager() { return &pager_; }
  PageCache* cache() { return cache_.get(); }
  uint64_t checkpoint_lsn() const { return pager_.checkpoint_lsn(); }

  std::vector<std::string> TableNames() const;
  PagedTableState* GetTable(const std::string& name);

  /// Registers a new empty table; AlreadyExists on collision.
  Status CreateTable(const std::string& name, const std::string& schema_blob);

  /// Destroys the table's tree (freeing its pages for the next epoch) and
  /// unregisters it; NotFound when absent.
  Status DropTable(const std::string& name);

  /// Commits everything mutated since the last checkpoint; `checkpoint_lsn`
  /// is the last WAL LSN the committed state contains.
  Status Checkpoint(uint64_t checkpoint_lsn);

 private:
  Status LoadCatalog();
  /// Frees the pages of a kCatalog chain starting at `head`.
  Status FreeChain(PageId head);
  /// Writes the catalog as a fresh chain, returning its head.
  Result<PageId> WriteCatalog();

  PagedEngineOptions options_;
  Pager pager_;
  std::unique_ptr<PageCache> cache_;
  std::map<std::string, PagedTableState> tables_;
};

}  // namespace itag::storage::pager

#endif  // ITAG_STORAGE_PAGER_PAGED_ENGINE_H_
