#include "storage/pager/pagez.h"

#include <cstring>

namespace itag::storage::pager {

namespace {

constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;            // len-3 fits the high nibble
constexpr size_t kMaxOffset = 4095;         // 12 offset bits
constexpr size_t kHashBits = 12;
constexpr size_t kHashSize = size_t{1} << kHashBits;

inline uint32_t Hash3(const uint8_t* p) {
  // Multiplicative hash of 3 bytes; only a heads-up for match finding, so
  // collisions cost compression ratio, never correctness.
  uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

bool PagezCompress(const uint8_t* src, size_t n, std::vector<uint8_t>* out) {
  if (n < kMinMatch + 1) return false;
  std::vector<uint8_t> buf;
  buf.reserve(n);
  // last position that hashed to each bucket; n is < 64 KiB so u16 + a
  // "none yet" sentinel via u32 keeps the table tiny.
  uint32_t table[kHashSize];
  std::memset(table, 0xFF, sizeof(table));

  size_t pos = 0;
  size_t ctrl_at = 0;  // index of the pending control byte in buf
  int ctrl_bits = 8;   // forces a fresh control byte on the first token
  uint8_t ctrl = 0;
  auto begin_token = [&](bool is_match) {
    if (ctrl_bits == 8) {
      if (ctrl_at != 0 || !buf.empty()) buf[ctrl_at] = ctrl;
      ctrl_at = buf.size();
      buf.push_back(0);
      ctrl = 0;
      ctrl_bits = 0;
    }
    if (is_match) ctrl |= static_cast<uint8_t>(1u << ctrl_bits);
    ++ctrl_bits;
  };

  while (pos < n) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (pos + kMinMatch <= n) {
      uint32_t h = Hash3(src + pos);
      uint32_t cand = table[h];
      table[h] = static_cast<uint32_t>(pos);
      if (cand != 0xFFFFFFFFu && pos - cand <= kMaxOffset && cand < pos) {
        size_t limit = n - pos < kMaxMatch ? n - pos : kMaxMatch;
        size_t len = 0;
        while (len < limit && src[cand + len] == src[pos + len]) ++len;
        if (len >= kMinMatch) {
          best_len = len;
          best_off = pos - cand;
        }
      }
    }
    if (best_len >= kMinMatch) {
      begin_token(true);
      buf.push_back(static_cast<uint8_t>(((best_len - kMinMatch) << 4) |
                                         (best_off >> 8)));
      buf.push_back(static_cast<uint8_t>(best_off & 0xFF));
      // Seed the table with the skipped positions so later matches can
      // reach into this match's body.
      size_t end = pos + best_len;
      for (size_t p = pos + 1; p + kMinMatch <= n && p < end; ++p) {
        table[Hash3(src + p)] = static_cast<uint32_t>(p);
      }
      pos = end;
    } else {
      begin_token(false);
      buf.push_back(src[pos]);
      ++pos;
    }
    if (buf.size() >= n) return false;  // not going to win; store raw
  }
  buf[ctrl_at] = ctrl;
  if (buf.size() >= n) return false;
  out->insert(out->end(), buf.begin(), buf.end());
  return true;
}

bool PagezDecompress(const uint8_t* src, size_t n, size_t expected,
                     std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(expected);
  size_t pos = 0;
  uint8_t ctrl = 0;
  int ctrl_bits = 0;
  while (out->size() < expected) {
    if (ctrl_bits == 0) {
      if (pos >= n) return false;
      ctrl = src[pos++];
      ctrl_bits = 8;
    }
    bool is_match = (ctrl & 1u) != 0;
    ctrl >>= 1;
    --ctrl_bits;
    if (is_match) {
      if (pos + 2 > n) return false;
      size_t len = (static_cast<size_t>(src[pos]) >> 4) + kMinMatch;
      size_t off =
          ((static_cast<size_t>(src[pos]) & 0x0F) << 8) | src[pos + 1];
      pos += 2;
      if (off == 0 || off > out->size()) return false;
      if (out->size() + len > expected) return false;
      size_t start = out->size() - off;
      for (size_t i = 0; i < len; ++i) {
        out->push_back((*out)[start + i]);  // overlapping copies are legal
      }
    } else {
      if (pos >= n) return false;
      out->push_back(src[pos++]);
    }
  }
  // Trailing garbage means the stream and the header disagree — corrupt.
  return pos == n && out->size() == expected;
}

}  // namespace itag::storage::pager
