#include "storage/pager/paged_btree.h"

#include <algorithm>
#include <string>

namespace itag::storage::pager {

namespace {

constexpr uint8_t kValInline = 0;
constexpr uint8_t kValOverflow = 1;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xFF));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
}

/// Bounds-checked little-endian reader over a node payload.
struct Cursor {
  const uint8_t* p;
  size_t n;
  size_t pos = 0;

  bool U8(uint8_t* v) {
    if (n - pos < 1) return false;
    *v = p[pos++];
    return true;
  }
  bool U16(uint16_t* v) {
    if (n - pos < 2) return false;
    *v = static_cast<uint16_t>(p[pos] | (p[pos + 1] << 8));
    pos += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (n - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (n - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return true;
  }
  bool Bytes(std::vector<uint8_t>* v, size_t k) {
    if (n - pos < k) return false;
    v->assign(p + pos, p + pos + k);
    pos += k;
    return true;
  }
  bool AtEnd() const { return pos == n; }
};

Status NodeCorruption(PageId id, const char* what) {
  return Status::Corruption("btree page " + std::to_string(id) + ": " + what);
}

}  // namespace

PagedBTree::PagedBTree(Pager* pager, PageCache* cache, PageId root)
    : pager_(pager), cache_(cache), root_(root) {}

// ---------------------------------------------------------------------------
// Node (de)serialization.

size_t PagedBTree::LeafEntryBytes(const ValueRef& v) const {
  return 8 + 1 + (v.head == kNullPage ? 2 + v.inline_value.size() : 8);
}

size_t PagedBTree::LeafBytes(const LeafNode& node) const {
  size_t n = 2;
  for (const ValueRef& v : node.values) n += LeafEntryBytes(v);
  return n;
}

size_t PagedBTree::InternalBytes(const InternalNode& node) const {
  return 2 + 4 * node.children.size() + 8 * node.keys.size();
}

void PagedBTree::EncodeLeaf(const LeafNode& node, std::vector<uint8_t>* out) {
  out->clear();
  PutU16(out, static_cast<uint16_t>(node.keys.size()));
  for (size_t i = 0; i < node.keys.size(); ++i) {
    PutU64(out, node.keys[i]);
    const ValueRef& v = node.values[i];
    if (v.head == kNullPage) {
      out->push_back(kValInline);
      PutU16(out, static_cast<uint16_t>(v.inline_value.size()));
      out->insert(out->end(), v.inline_value.begin(), v.inline_value.end());
    } else {
      out->push_back(kValOverflow);
      PutU32(out, v.total_len);
      PutU32(out, v.head);
    }
  }
}

void PagedBTree::EncodeInternal(const InternalNode& node,
                                std::vector<uint8_t>* out) {
  out->clear();
  PutU16(out, static_cast<uint16_t>(node.keys.size()));
  for (PageId c : node.children) PutU32(out, c);
  for (uint64_t k : node.keys) PutU64(out, k);
}

Status PagedBTree::DecodeLeaf(const PageImage& img, LeafNode* out) {
  if (img.header.type != PageType::kLeaf) {
    return NodeCorruption(img.header.page_id, "expected leaf");
  }
  Cursor c{img.payload.data(), img.payload.size()};
  uint16_t count = 0;
  if (!c.U16(&count)) return NodeCorruption(img.header.page_id, "truncated leaf");
  out->keys.clear();
  out->values.clear();
  out->keys.reserve(count);
  out->values.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    uint8_t kind = 0;
    ValueRef v;
    if (!c.U64(&key) || !c.U8(&kind)) {
      return NodeCorruption(img.header.page_id, "truncated leaf entry");
    }
    if (kind == kValInline) {
      uint16_t len = 0;
      if (!c.U16(&len) || !c.Bytes(&v.inline_value, len)) {
        return NodeCorruption(img.header.page_id, "truncated inline value");
      }
      v.total_len = len;
    } else if (kind == kValOverflow) {
      if (!c.U32(&v.total_len) || !c.U32(&v.head)) {
        return NodeCorruption(img.header.page_id, "truncated overflow ref");
      }
      if (v.head == kNullPage) {
        return NodeCorruption(img.header.page_id, "null overflow head");
      }
    } else {
      return NodeCorruption(img.header.page_id, "unknown value kind");
    }
    out->keys.push_back(key);
    out->values.push_back(std::move(v));
  }
  if (!c.AtEnd()) return NodeCorruption(img.header.page_id, "leaf trailing bytes");
  return Status::OK();
}

Status PagedBTree::DecodeInternal(const PageImage& img, InternalNode* out) {
  if (img.header.type != PageType::kInternal) {
    return NodeCorruption(img.header.page_id, "expected internal");
  }
  Cursor c{img.payload.data(), img.payload.size()};
  uint16_t count = 0;
  if (!c.U16(&count)) {
    return NodeCorruption(img.header.page_id, "truncated internal");
  }
  out->keys.clear();
  out->children.clear();
  out->keys.reserve(count);
  out->children.reserve(count + 1);
  for (uint16_t i = 0; i <= count; ++i) {
    PageId child = kNullPage;
    if (!c.U32(&child)) {
      return NodeCorruption(img.header.page_id, "truncated child list");
    }
    out->children.push_back(child);
  }
  for (uint16_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    if (!c.U64(&key)) return NodeCorruption(img.header.page_id, "truncated keys");
    out->keys.push_back(key);
  }
  if (!c.AtEnd()) {
    return NodeCorruption(img.header.page_id, "internal trailing bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Values and overflow chains.

Result<PagedBTree::ValueRef> PagedBTree::StoreValue(
    const std::vector<uint8_t>& value) {
  ValueRef ref;
  ref.total_len = static_cast<uint32_t>(value.size());
  if (value.size() <= MaxInlineValue()) {
    ref.inline_value = value;
    return ref;
  }
  // Build the chain back to front so each page's `next` link is known when
  // the page is filled.
  const size_t chunk = pager_->payload_size();
  const size_t nchunks = (value.size() + chunk - 1) / chunk;
  PageId next = kNullPage;
  for (size_t i = nchunks; i-- > 0;) {
    const size_t off = i * chunk;
    const size_t len = std::min(chunk, value.size() - off);
    ITAG_ASSIGN_OR_RETURN(PageId pid, pager_->Allocate());
    ITAG_ASSIGN_OR_RETURN(PageRef pref,
                          cache_->PinNew(pid, PageType::kOverflow));
    pref.payload().assign(value.begin() + static_cast<ptrdiff_t>(off),
                          value.begin() + static_cast<ptrdiff_t>(off + len));
    pref.header().next = next;
    pref.MarkDirty();
    next = pid;
  }
  ref.head = next;
  return ref;
}

Status PagedBTree::LoadValue(const ValueRef& ref, std::vector<uint8_t>* out) {
  if (ref.head == kNullPage) {
    *out = ref.inline_value;
    return Status::OK();
  }
  out->clear();
  out->reserve(ref.total_len);
  const size_t max_hops = ref.total_len / pager_->payload_size() + 2;
  size_t hops = 0;
  PageId pid = ref.head;
  while (pid != kNullPage) {
    if (++hops > max_hops) {
      return NodeCorruption(ref.head, "overflow chain longer than its length");
    }
    ITAG_ASSIGN_OR_RETURN(PageRef pref, cache_->Pin(pid));
    if (pref.header().type != PageType::kOverflow) {
      return NodeCorruption(pid, "expected overflow page");
    }
    out->insert(out->end(), pref.payload().begin(), pref.payload().end());
    pid = pref.header().next;
  }
  if (out->size() != ref.total_len) {
    return NodeCorruption(ref.head, "overflow chain length mismatch");
  }
  return Status::OK();
}

Status PagedBTree::ReleaseValue(const ValueRef& ref) {
  if (ref.head == kNullPage) return Status::OK();
  const size_t max_hops = ref.total_len / pager_->payload_size() + 2;
  size_t hops = 0;
  PageId pid = ref.head;
  while (pid != kNullPage) {
    if (++hops > max_hops) {
      return NodeCorruption(ref.head, "overflow chain longer than its length");
    }
    PageId next = kNullPage;
    {
      ITAG_ASSIGN_OR_RETURN(PageRef pref, cache_->Pin(pid));
      if (pref.header().type != PageType::kOverflow) {
        return NodeCorruption(pid, "expected overflow page");
      }
      next = pref.header().next;
    }
    pager_->Free(pid);
    cache_->Drop(pid);
    pid = next;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Copy-on-write node writers.

Result<PageId> PagedBTree::MakeWritable(PageId id, PageType type,
                                        const std::vector<uint8_t>& payload) {
  if (pager_->IsFresh(id)) {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
    ref.image().payload = payload;
    ref.header().type = type;
    ref.MarkDirty();
    return id;
  }
  ITAG_ASSIGN_OR_RETURN(PageId nid, WriteFreshNode(type, payload));
  pager_->Free(id);
  cache_->Drop(id);
  return nid;
}

Result<PageId> PagedBTree::WriteNode(PageId id, PageType type,
                                     const std::vector<uint8_t>& payload) {
  return MakeWritable(id, type, payload);
}

Result<PageId> PagedBTree::WriteFreshNode(PageType type,
                                          const std::vector<uint8_t>& payload) {
  ITAG_ASSIGN_OR_RETURN(PageId nid, pager_->Allocate());
  ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->PinNew(nid, type));
  ref.image().payload = payload;
  ref.MarkDirty();
  return nid;
}

// ---------------------------------------------------------------------------
// Lookup.

Result<bool> PagedBTree::Get(uint64_t key, std::vector<uint8_t>* value) {
  if (root_ == kNullPage) return false;
  PageId id = root_;
  for (size_t depth = 0; depth < 64; ++depth) {
    PageType type;
    LeafNode leaf;
    InternalNode internal;
    {
      ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
      type = ref.header().type;
      if (type == PageType::kLeaf) {
        ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
      } else if (type == PageType::kInternal) {
        ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
      } else {
        return NodeCorruption(id, "unexpected page type on lookup path");
      }
    }
    if (type == PageType::kLeaf) {
      auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
      if (it == leaf.keys.end() || *it != key) return false;
      size_t pos = static_cast<size_t>(it - leaf.keys.begin());
      ITAG_RETURN_IF_ERROR(LoadValue(leaf.values[pos], value));
      return true;
    }
    size_t idx = static_cast<size_t>(
        std::upper_bound(internal.keys.begin(), internal.keys.end(), key) -
        internal.keys.begin());
    id = internal.children[idx];
  }
  return NodeCorruption(root_, "lookup exceeded maximum depth");
}

// ---------------------------------------------------------------------------
// Insertion.

Result<bool> PagedBTree::Put(uint64_t key, const std::vector<uint8_t>& value) {
  if (root_ == kNullPage) {
    LeafNode leaf;
    leaf.keys.push_back(key);
    ITAG_ASSIGN_OR_RETURN(ValueRef v, StoreValue(value));
    leaf.values.push_back(std::move(v));
    std::vector<uint8_t> enc;
    EncodeLeaf(leaf, &enc);
    ITAG_ASSIGN_OR_RETURN(root_, WriteFreshNode(PageType::kLeaf, enc));
    return true;
  }
  ITAG_ASSIGN_OR_RETURN(InsertResult res, InsertRec(root_, key, value));
  root_ = res.node;
  if (res.split) {
    InternalNode root;
    root.keys.push_back(res.split_key);
    root.children.push_back(res.node);
    root.children.push_back(res.right);
    std::vector<uint8_t> enc;
    EncodeInternal(root, &enc);
    ITAG_ASSIGN_OR_RETURN(root_, WriteFreshNode(PageType::kInternal, enc));
  }
  return !res.replaced;
}

Result<PagedBTree::InsertResult> PagedBTree::InsertRec(
    PageId id, uint64_t key, const std::vector<uint8_t>& value) {
  PageType type;
  LeafNode leaf;
  InternalNode internal;
  {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
    type = ref.header().type;
    if (type == PageType::kLeaf) {
      ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
    } else if (type == PageType::kInternal) {
      ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
    } else {
      return NodeCorruption(id, "unexpected page type on insert path");
    }
  }

  bool replaced = false;
  if (type == PageType::kLeaf) {
    auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
    size_t pos = static_cast<size_t>(it - leaf.keys.begin());
    if (it != leaf.keys.end() && *it == key) {
      replaced = true;
      ITAG_RETURN_IF_ERROR(ReleaseValue(leaf.values[pos]));
      ITAG_ASSIGN_OR_RETURN(leaf.values[pos], StoreValue(value));
    } else {
      ITAG_ASSIGN_OR_RETURN(ValueRef v, StoreValue(value));
      leaf.keys.insert(it, key);
      leaf.values.insert(leaf.values.begin() + static_cast<ptrdiff_t>(pos),
                         std::move(v));
    }
    if (LeafBytes(leaf) <= pager_->payload_size()) {
      std::vector<uint8_t> enc;
      EncodeLeaf(leaf, &enc);
      InsertResult res;
      res.replaced = replaced;
      ITAG_ASSIGN_OR_RETURN(res.node, WriteNode(id, PageType::kLeaf, enc));
      return res;
    }
    // Split at the entry boundary closest to half the encoded size; both
    // halves stay non-empty (a single over-wide entry cannot reach here —
    // inline values are capped at a quarter page).
    const size_t total = LeafBytes(leaf);
    size_t acc = 2;
    size_t split_at = leaf.keys.size() / 2;
    for (size_t i = 0; i < leaf.keys.size(); ++i) {
      acc += LeafEntryBytes(leaf.values[i]);
      if (acc >= total / 2) {
        split_at = i + 1;
        break;
      }
    }
    if (split_at == 0) split_at = 1;
    if (split_at >= leaf.keys.size()) split_at = leaf.keys.size() - 1;
    LeafNode right;
    right.keys.assign(leaf.keys.begin() + static_cast<ptrdiff_t>(split_at),
                      leaf.keys.end());
    right.values.assign(
        std::make_move_iterator(leaf.values.begin() +
                                static_cast<ptrdiff_t>(split_at)),
        std::make_move_iterator(leaf.values.end()));
    leaf.keys.resize(split_at);
    leaf.values.resize(split_at);
    std::vector<uint8_t> left_enc, right_enc;
    EncodeLeaf(leaf, &left_enc);
    EncodeLeaf(right, &right_enc);
    InsertResult res;
    res.replaced = replaced;
    res.split = true;
    res.split_key = right.keys.front();
    ITAG_ASSIGN_OR_RETURN(res.node, WriteNode(id, PageType::kLeaf, left_enc));
    ITAG_ASSIGN_OR_RETURN(res.right,
                          WriteFreshNode(PageType::kLeaf, right_enc));
    return res;
  }

  size_t idx = static_cast<size_t>(
      std::upper_bound(internal.keys.begin(), internal.keys.end(), key) -
      internal.keys.begin());
  ITAG_ASSIGN_OR_RETURN(InsertResult child,
                        InsertRec(internal.children[idx], key, value));
  internal.children[idx] = child.node;
  if (child.split) {
    internal.keys.insert(internal.keys.begin() + static_cast<ptrdiff_t>(idx),
                         child.split_key);
    internal.children.insert(
        internal.children.begin() + static_cast<ptrdiff_t>(idx + 1),
        child.right);
  }
  if (InternalBytes(internal) <= pager_->payload_size()) {
    std::vector<uint8_t> enc;
    EncodeInternal(internal, &enc);
    InsertResult res;
    res.replaced = child.replaced;
    ITAG_ASSIGN_OR_RETURN(res.node, WriteNode(id, PageType::kInternal, enc));
    return res;
  }
  // Split the internal node, promoting the middle separator.
  const size_t mid = internal.keys.size() / 2;
  InternalNode right;
  right.keys.assign(internal.keys.begin() + static_cast<ptrdiff_t>(mid + 1),
                    internal.keys.end());
  right.children.assign(
      internal.children.begin() + static_cast<ptrdiff_t>(mid + 1),
      internal.children.end());
  uint64_t up = internal.keys[mid];
  internal.keys.resize(mid);
  internal.children.resize(mid + 1);
  std::vector<uint8_t> left_enc, right_enc;
  EncodeInternal(internal, &left_enc);
  EncodeInternal(right, &right_enc);
  InsertResult res;
  res.replaced = child.replaced;
  res.split = true;
  res.split_key = up;
  ITAG_ASSIGN_OR_RETURN(res.node, WriteNode(id, PageType::kInternal, left_enc));
  ITAG_ASSIGN_OR_RETURN(res.right,
                        WriteFreshNode(PageType::kInternal, right_enc));
  return res;
}

// ---------------------------------------------------------------------------
// Deletion.

Result<bool> PagedBTree::Erase(uint64_t key) {
  if (root_ == kNullPage) return false;
  ITAG_ASSIGN_OR_RETURN(EraseResult res, EraseRec(root_, key));
  if (!res.found) return false;
  root_ = res.node;
  // Collapse trivial roots: an internal root with one child, or an empty
  // leaf root (last entry deleted).
  while (root_ != kNullPage) {
    PageType type;
    LeafNode leaf;
    InternalNode internal;
    {
      ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(root_));
      type = ref.header().type;
      if (type == PageType::kInternal) {
        ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
      } else {
        ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
      }
    }
    if (type == PageType::kInternal && internal.children.size() == 1) {
      pager_->Free(root_);
      cache_->Drop(root_);
      root_ = internal.children.front();
      continue;
    }
    if (type == PageType::kLeaf && leaf.keys.empty()) {
      pager_->Free(root_);
      cache_->Drop(root_);
      root_ = kNullPage;
    }
    break;
  }
  return true;
}

Result<PagedBTree::EraseResult> PagedBTree::EraseRec(PageId id, uint64_t key) {
  PageType type;
  LeafNode leaf;
  InternalNode internal;
  {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
    type = ref.header().type;
    if (type == PageType::kLeaf) {
      ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
    } else if (type == PageType::kInternal) {
      ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
    } else {
      return NodeCorruption(id, "unexpected page type on erase path");
    }
  }

  const size_t quarter = pager_->payload_size() / 4;

  if (type == PageType::kLeaf) {
    auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
    if (it == leaf.keys.end() || *it != key) return EraseResult{id, false};
    size_t pos = static_cast<size_t>(it - leaf.keys.begin());
    ITAG_RETURN_IF_ERROR(ReleaseValue(leaf.values[pos]));
    leaf.keys.erase(it);
    leaf.values.erase(leaf.values.begin() + static_cast<ptrdiff_t>(pos));
    std::vector<uint8_t> enc;
    EncodeLeaf(leaf, &enc);
    EraseResult res;
    res.found = true;
    res.underflow = LeafBytes(leaf) < quarter;
    ITAG_ASSIGN_OR_RETURN(res.node, WriteNode(id, PageType::kLeaf, enc));
    return res;
  }

  size_t idx = static_cast<size_t>(
      std::upper_bound(internal.keys.begin(), internal.keys.end(), key) -
      internal.keys.begin());
  ITAG_ASSIGN_OR_RETURN(EraseResult child,
                        EraseRec(internal.children[idx], key));
  if (!child.found) return EraseResult{id, false};
  internal.children[idx] = child.node;
  if (child.underflow) {
    ITAG_RETURN_IF_ERROR(Rebalance(&internal, idx));
  }
  std::vector<uint8_t> enc;
  EncodeInternal(internal, &enc);
  EraseResult res;
  res.found = true;
  res.underflow = internal.children.size() < 2 ||
                  InternalBytes(internal) < quarter;
  ITAG_ASSIGN_OR_RETURN(res.node, WriteNode(id, PageType::kInternal, enc));
  return res;
}

Status PagedBTree::Rebalance(InternalNode* parent, size_t idx) {
  if (parent->children.size() < 2) return Status::OK();
  // Pair the underflowing child with its left sibling when one exists,
  // otherwise its right one; `li` is also the parent separator index.
  const size_t li = idx > 0 ? idx - 1 : idx;
  const size_t ri = li + 1;
  const PageId left_id = parent->children[li];
  const PageId right_id = parent->children[ri];
  const size_t payload = pager_->payload_size();
  const size_t quarter = payload / 4;

  PageType type;
  {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(left_id));
    type = ref.header().type;
  }

  if (type == PageType::kLeaf) {
    LeafNode left, right;
    {
      ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(left_id));
      ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &left));
    }
    {
      ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(right_id));
      ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &right));
    }
    if (LeafBytes(left) + LeafBytes(right) - 2 <= payload) {
      // Merge right into left; drop the separator.
      left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
      left.values.insert(left.values.end(),
                         std::make_move_iterator(right.values.begin()),
                         std::make_move_iterator(right.values.end()));
      std::vector<uint8_t> enc;
      EncodeLeaf(left, &enc);
      ITAG_ASSIGN_OR_RETURN(parent->children[li],
                            WriteNode(left_id, PageType::kLeaf, enc));
      pager_->Free(right_id);
      cache_->Drop(right_id);
      parent->keys.erase(parent->keys.begin() + static_cast<ptrdiff_t>(li));
      parent->children.erase(parent->children.begin() +
                             static_cast<ptrdiff_t>(ri));
      return Status::OK();
    }
    // Borrow boundary entries from the richer sibling until the poor one is
    // above a quarter page (or the donor cannot spare more).
    const bool poor_is_left = idx == li;
    while (true) {
      LeafNode& poor = poor_is_left ? left : right;
      LeafNode& rich = poor_is_left ? right : left;
      if (LeafBytes(poor) >= quarter || rich.keys.size() <= 1) break;
      const size_t at = poor_is_left ? 0 : rich.keys.size() - 1;
      const size_t moving = LeafEntryBytes(rich.values[at]);
      if (LeafBytes(rich) - moving < quarter) break;
      if (poor_is_left) {
        // Move right's first entry onto left's back.
        left.keys.push_back(right.keys.front());
        left.values.push_back(std::move(right.values.front()));
        right.keys.erase(right.keys.begin());
        right.values.erase(right.values.begin());
      } else {
        // Move left's last entry onto right's front.
        right.keys.insert(right.keys.begin(), left.keys.back());
        right.values.insert(right.values.begin(),
                            std::move(left.values.back()));
        left.keys.pop_back();
        left.values.pop_back();
      }
    }
    if (right.keys.empty()) {
      return NodeCorruption(right_id, "rebalance emptied a leaf");
    }
    parent->keys[li] = right.keys.front();
    std::vector<uint8_t> left_enc, right_enc;
    EncodeLeaf(left, &left_enc);
    EncodeLeaf(right, &right_enc);
    ITAG_ASSIGN_OR_RETURN(parent->children[li],
                          WriteNode(left_id, PageType::kLeaf, left_enc));
    ITAG_ASSIGN_OR_RETURN(parent->children[ri],
                          WriteNode(right_id, PageType::kLeaf, right_enc));
    return Status::OK();
  }

  InternalNode left, right;
  {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(left_id));
    ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &left));
  }
  {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(right_id));
    ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &right));
  }
  uint64_t sep = parent->keys[li];
  const size_t merged_bytes = 2 + 4 * (left.children.size() + right.children.size()) +
                              8 * (left.keys.size() + right.keys.size() + 1);
  if (merged_bytes <= payload) {
    // Merge: left ++ sep ++ right.
    left.keys.push_back(sep);
    left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
    left.children.insert(left.children.end(), right.children.begin(),
                         right.children.end());
    std::vector<uint8_t> enc;
    EncodeInternal(left, &enc);
    ITAG_ASSIGN_OR_RETURN(parent->children[li],
                          WriteNode(left_id, PageType::kInternal, enc));
    pager_->Free(right_id);
    cache_->Drop(right_id);
    parent->keys.erase(parent->keys.begin() + static_cast<ptrdiff_t>(li));
    parent->children.erase(parent->children.begin() +
                           static_cast<ptrdiff_t>(ri));
    return Status::OK();
  }
  // Rotate children through the parent separator.
  const bool poor_is_left = idx == li;
  while (true) {
    InternalNode& poor = poor_is_left ? left : right;
    InternalNode& rich = poor_is_left ? right : left;
    if (InternalBytes(poor) >= quarter || rich.keys.size() <= 1) break;
    if (poor_is_left) {
      left.keys.push_back(sep);
      sep = right.keys.front();
      right.keys.erase(right.keys.begin());
      left.children.push_back(right.children.front());
      right.children.erase(right.children.begin());
    } else {
      right.keys.insert(right.keys.begin(), sep);
      sep = left.keys.back();
      left.keys.pop_back();
      right.children.insert(right.children.begin(), left.children.back());
      left.children.pop_back();
    }
  }
  parent->keys[li] = sep;
  std::vector<uint8_t> left_enc, right_enc;
  EncodeInternal(left, &left_enc);
  EncodeInternal(right, &right_enc);
  ITAG_ASSIGN_OR_RETURN(parent->children[li],
                        WriteNode(left_id, PageType::kInternal, left_enc));
  ITAG_ASSIGN_OR_RETURN(parent->children[ri],
                        WriteNode(right_id, PageType::kInternal, right_enc));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Ordered scan.

Status PagedBTree::Scan(
    uint64_t start,
    const std::function<bool(uint64_t, const std::vector<uint8_t>&)>& fn) {
  if (root_ == kNullPage) return Status::OK();
  struct StackEntry {
    InternalNode node;
    size_t idx;
  };
  std::vector<StackEntry> stack;

  // Descend to the leaf that may contain `start`.
  PageId id = root_;
  LeafNode leaf;
  size_t pos = 0;
  for (;;) {
    PageType type;
    InternalNode internal;
    {
      ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
      type = ref.header().type;
      if (type == PageType::kLeaf) {
        ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
      } else if (type == PageType::kInternal) {
        ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
      } else {
        return NodeCorruption(id, "unexpected page type on scan path");
      }
    }
    if (type == PageType::kLeaf) {
      pos = static_cast<size_t>(
          std::lower_bound(leaf.keys.begin(), leaf.keys.end(), start) -
          leaf.keys.begin());
      break;
    }
    size_t idx = static_cast<size_t>(
        std::upper_bound(internal.keys.begin(), internal.keys.end(), start) -
        internal.keys.begin());
    PageId child = internal.children[idx];
    stack.push_back(StackEntry{std::move(internal), idx});
    id = child;
    if (stack.size() > 64) {
      return NodeCorruption(root_, "scan exceeded maximum depth");
    }
  }

  std::vector<uint8_t> value;
  for (;;) {
    for (; pos < leaf.keys.size(); ++pos) {
      ITAG_RETURN_IF_ERROR(LoadValue(leaf.values[pos], &value));
      if (!fn(leaf.keys[pos], value)) return Status::OK();
    }
    // Climb to the first ancestor with an unvisited child, then descend its
    // next subtree along the leftmost edge.
    while (!stack.empty() &&
           stack.back().idx + 1 == stack.back().node.children.size()) {
      stack.pop_back();
    }
    if (stack.empty()) return Status::OK();
    ++stack.back().idx;
    id = stack.back().node.children[stack.back().idx];
    for (;;) {
      PageType type;
      InternalNode internal;
      {
        ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
        type = ref.header().type;
        if (type == PageType::kLeaf) {
          ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
        } else if (type == PageType::kInternal) {
          ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
        } else {
          return NodeCorruption(id, "unexpected page type on scan path");
        }
      }
      if (type == PageType::kLeaf) {
        pos = 0;
        break;
      }
      PageId child = internal.children.front();
      stack.push_back(StackEntry{std::move(internal), 0});
      id = child;
      if (stack.size() > 64) {
        return NodeCorruption(root_, "scan exceeded maximum depth");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-tree teardown.

Status PagedBTree::Destroy() {
  if (root_ == kNullPage) return Status::OK();
  ITAG_RETURN_IF_ERROR(DestroyRec(root_));
  root_ = kNullPage;
  return Status::OK();
}

Status PagedBTree::DestroyRec(PageId id) {
  PageType type;
  LeafNode leaf;
  InternalNode internal;
  {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
    type = ref.header().type;
    if (type == PageType::kLeaf) {
      ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
    } else if (type == PageType::kInternal) {
      ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
    } else {
      return NodeCorruption(id, "unexpected page type in destroy");
    }
  }
  if (type == PageType::kLeaf) {
    for (const ValueRef& v : leaf.values) {
      ITAG_RETURN_IF_ERROR(ReleaseValue(v));
    }
  } else {
    for (PageId child : internal.children) {
      ITAG_RETURN_IF_ERROR(DestroyRec(child));
    }
  }
  pager_->Free(id);
  cache_->Drop(id);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Invariant checking (test hook).

Status PagedBTree::LeafDepth(PageId id, size_t depth, size_t* out) {
  ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
  if (ref.header().type == PageType::kLeaf) {
    *out = depth;
    return Status::OK();
  }
  if (ref.header().type != PageType::kInternal) {
    return NodeCorruption(id, "unexpected page type");
  }
  InternalNode node;
  ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &node));
  ref.Release();
  if (depth > 64) return NodeCorruption(id, "tree too deep");
  return LeafDepth(node.children.front(), depth + 1, out);
}

Result<uint64_t> PagedBTree::CheckInvariants() {
  if (root_ == kNullPage) return uint64_t{0};
  size_t leaf_depth = 0;
  ITAG_RETURN_IF_ERROR(LeafDepth(root_, 0, &leaf_depth));
  return CheckRec(root_, 0, leaf_depth, false, 0, false, 0);
}

Result<uint64_t> PagedBTree::CheckRec(PageId id, size_t depth,
                                      size_t leaf_depth, bool has_low,
                                      uint64_t low, bool has_high,
                                      uint64_t high) {
  PageType type;
  LeafNode leaf;
  InternalNode internal;
  {
    ITAG_ASSIGN_OR_RETURN(PageRef ref, cache_->Pin(id));
    type = ref.header().type;
    if (type == PageType::kLeaf) {
      ITAG_RETURN_IF_ERROR(DecodeLeaf(ref.image(), &leaf));
    } else if (type == PageType::kInternal) {
      ITAG_RETURN_IF_ERROR(DecodeInternal(ref.image(), &internal));
    } else {
      return NodeCorruption(id, "unexpected page type");
    }
  }

  auto in_bounds = [&](uint64_t k) {
    if (has_low && k < low) return false;
    if (has_high && k >= high) return false;
    return true;
  };

  if (type == PageType::kLeaf) {
    if (depth != leaf_depth) return NodeCorruption(id, "uneven leaf depth");
    if (LeafBytes(leaf) > pager_->payload_size()) {
      return NodeCorruption(id, "leaf overflows its page");
    }
    std::vector<uint8_t> value;
    for (size_t i = 0; i < leaf.keys.size(); ++i) {
      if (!in_bounds(leaf.keys[i])) return NodeCorruption(id, "key out of bounds");
      if (i > 0 && leaf.keys[i - 1] >= leaf.keys[i]) {
        return NodeCorruption(id, "unsorted leaf keys");
      }
      ITAG_RETURN_IF_ERROR(LoadValue(leaf.values[i], &value));
    }
    return static_cast<uint64_t>(leaf.keys.size());
  }

  if (depth >= leaf_depth) return NodeCorruption(id, "internal below leaf depth");
  if (internal.children.size() != internal.keys.size() + 1) {
    return NodeCorruption(id, "child/key count mismatch");
  }
  if (internal.children.size() < 2) {
    return NodeCorruption(id, "internal with a single child");
  }
  if (InternalBytes(internal) > pager_->payload_size()) {
    return NodeCorruption(id, "internal overflows its page");
  }
  uint64_t count = 0;
  for (size_t i = 0; i < internal.children.size(); ++i) {
    bool child_has_low = has_low || i > 0;
    uint64_t child_low = i > 0 ? internal.keys[i - 1] : low;
    bool child_has_high = has_high || i < internal.keys.size();
    uint64_t child_high = i < internal.keys.size() ? internal.keys[i] : high;
    if (i > 0 && !in_bounds(internal.keys[i - 1])) {
      return NodeCorruption(id, "separator out of bounds");
    }
    if (i > 1 && internal.keys[i - 2] >= internal.keys[i - 1]) {
      return NodeCorruption(id, "unsorted separators");
    }
    ITAG_ASSIGN_OR_RETURN(
        uint64_t sub, CheckRec(internal.children[i], depth + 1, leaf_depth,
                               child_has_low, child_low, child_has_high,
                               child_high));
    count += sub;
  }
  return count;
}

}  // namespace itag::storage::pager
