#include "storage/pager/paged_engine.h"

#include "common/binio.h"

namespace itag::storage::pager {

Status PagedEngine::Open(const PagedEngineOptions& options) {
  options_ = options;
  PagerOptions popts;
  popts.path = options.path;
  popts.page_size = options.page_size;
  popts.compression = options.compression;
  ITAG_RETURN_IF_ERROR(pager_.Open(popts));
  cache_ = std::make_unique<PageCache>(&pager_, options.cache_bytes);
  Status s = LoadCatalog();
  if (!s.ok()) Close();
  return s;
}

void PagedEngine::Close() {
  tables_.clear();
  cache_.reset();
  pager_.Close();
}

std::vector<std::string> PagedEngine::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, state] : tables_) {
    (void)state;
    out.push_back(name);
  }
  return out;
}

PagedTableState* PagedEngine::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status PagedEngine::CreateTable(const std::string& name,
                                const std::string& schema_blob) {
  if (tables_.count(name)) return Status::AlreadyExists("table " + name);
  PagedTableState state;
  state.schema_blob = schema_blob;
  state.tree = std::make_unique<PagedBTree>(&pager_, cache_.get(), kNullPage);
  tables_.emplace(name, std::move(state));
  return Status::OK();
}

Status PagedEngine::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  ITAG_RETURN_IF_ERROR(it->second.tree->Destroy());
  tables_.erase(it);
  return Status::OK();
}

Status PagedEngine::LoadCatalog() {
  tables_.clear();
  std::string blob;
  PageId pid = pager_.catalog_head();
  uint32_t hops = 0;
  while (pid != kNullPage) {
    if (++hops > pager_.page_count()) {
      return Status::Corruption("catalog chain cycle in " + options_.path);
    }
    PageImage img;
    ITAG_RETURN_IF_ERROR(pager_.ReadPage(pid, &img));
    if (img.header.type != PageType::kCatalog) {
      return Status::Corruption("catalog chain page " + std::to_string(pid) +
                                " has wrong type");
    }
    blob.append(reinterpret_cast<const char*>(img.payload.data()),
                img.payload.size());
    pid = img.header.next;
  }
  if (blob.empty()) return Status::OK();  // freshly formatted file

  ByteReader r(blob);
  uint32_t count = 0;
  if (!r.U32(&count)) return Status::Corruption("catalog header malformed");
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    PagedTableState state;
    uint32_t root = kNullPage;
    if (!r.Str(&name) || !r.Str(&state.schema_blob) ||
        !r.U64(&state.next_row_id) || !r.U64(&state.row_count) ||
        !r.U32(&root)) {
      return Status::Corruption("catalog entry " + std::to_string(i) +
                                " malformed");
    }
    state.tree = std::make_unique<PagedBTree>(&pager_, cache_.get(), root);
    tables_.emplace(std::move(name), std::move(state));
  }
  if (!r.AtEnd()) return Status::Corruption("catalog trailing bytes");
  return Status::OK();
}

Status PagedEngine::FreeChain(PageId head) {
  PageId pid = head;
  uint32_t hops = 0;
  while (pid != kNullPage) {
    if (++hops > pager_.page_count()) {
      return Status::Corruption("catalog chain cycle while freeing");
    }
    PageImage img;
    ITAG_RETURN_IF_ERROR(pager_.ReadPage(pid, &img));
    pager_.Free(pid);
    cache_->Drop(pid);
    pid = img.header.next;
  }
  return Status::OK();
}

Result<PageId> PagedEngine::WriteCatalog() {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, state] : tables_) {
    w.Str(name);
    w.Str(state.schema_blob);
    w.U64(state.next_row_id);
    w.U64(state.row_count);
    w.U32(state.tree->root());
  }
  const std::string blob = w.Take();

  const size_t chunk = pager_.payload_size();
  const size_t npages = blob.empty() ? 1 : (blob.size() + chunk - 1) / chunk;
  std::vector<PageId> ids(npages);
  for (size_t i = 0; i < npages; ++i) {
    ITAG_ASSIGN_OR_RETURN(ids[i], pager_.Allocate());
    cache_->Drop(ids[i]);  // no stale frame may shadow the direct write
  }
  for (size_t i = 0; i < npages; ++i) {
    const size_t off = i * chunk;
    const size_t len = std::min(chunk, blob.size() - off);
    PageImage img;
    img.header.page_id = ids[i];
    img.header.type = PageType::kCatalog;
    img.header.next = i + 1 < npages ? ids[i + 1] : kNullPage;
    img.payload.assign(blob.begin() + static_cast<ptrdiff_t>(off),
                       blob.begin() + static_cast<ptrdiff_t>(off + len));
    ITAG_RETURN_IF_ERROR(pager_.WritePage(&img));
  }
  return ids.front();
}

Status PagedEngine::Checkpoint(uint64_t checkpoint_lsn) {
  if (!is_open()) return Status::FailedPrecondition("engine not open");
  ITAG_RETURN_IF_ERROR(cache_->FlushAll());
  ITAG_RETURN_IF_ERROR(FreeChain(pager_.catalog_head()));
  ITAG_ASSIGN_OR_RETURN(PageId head, WriteCatalog());
  return pager_.Commit(head, checkpoint_lsn);
}

}  // namespace itag::storage::pager
