#ifndef ITAG_STORAGE_PAGER_PAGED_BTREE_H_
#define ITAG_STORAGE_PAGER_PAGED_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/pager/page.h"
#include "storage/pager/page_cache.h"
#include "storage/pager/pager.h"

namespace itag::storage::pager {

/// On-disk B+tree mapping u64 keys to byte-string values, built on the
/// copy-on-write Pager/PageCache pair.
///
/// Layout:
///  * Internal pages (kInternal): `count` separator keys and `count + 1`
///    child page ids; child[i] covers keys < key[i], the last child covers
///    the rest.
///  * Leaf pages (kLeaf): sorted (key, value) entries. Values above
///    ~payload/4 spill into a chain of kOverflow pages linked by
///    `header.next`; the leaf keeps the head id and total length.
///  * No sibling links between leaves — copy-on-write would have to rewrite
///    every left neighbour of a relocated leaf. Ordered scans instead walk a
///    parent stack, which the COW discipline keeps valid for the duration
///    of a read.
///
/// Mutations copy-on-write every non-fresh page on the descent path (so
/// parents are already writable when a child split/merge propagates up) and
/// may therefore change the root id: callers must re-read `root()` after any
/// mutation and persist it at checkpoint. Splits trigger on encoded size
/// overflow, borrows/merges when a node falls under a quarter of the payload
/// budget. Single-writer, like the layers below.
class PagedBTree {
 public:
  /// `root` is the committed root id, or kNullPage for an empty tree.
  PagedBTree(Pager* pager, PageCache* cache, PageId root);

  PageId root() const { return root_; }
  bool empty() const { return root_ == kNullPage; }

  /// Looks `key` up; returns false (untouched `*value`) when absent.
  Result<bool> Get(uint64_t key, std::vector<uint8_t>* value);

  /// Inserts or replaces `key`; returns true when the key was new.
  Result<bool> Put(uint64_t key, const std::vector<uint8_t>& value);

  /// Removes `key`; returns false when it was absent.
  Result<bool> Erase(uint64_t key);

  /// In-order visit of every entry with key >= `start`. `fn` returns false
  /// to stop early. The tree must not be mutated during the scan.
  Status Scan(uint64_t start,
              const std::function<bool(uint64_t, const std::vector<uint8_t>&)>&
                  fn);

  /// Frees every page of the tree (leaves, internals, overflow chains) and
  /// resets the root — used by DropTable and Clear.
  Status Destroy();

  /// Test hook: walks the whole tree validating key order, child separators,
  /// uniform leaf depth, and per-node size bounds. Returns the entry count.
  Result<uint64_t> CheckInvariants();

 private:
  // Decoded node images. Nodes are rewritten wholesale on mutation — pages
  // are small and this keeps split/merge arithmetic in plain vectors.
  struct ValueRef {
    std::vector<uint8_t> inline_value;  // when head == kNullPage
    PageId head = kNullPage;            // overflow chain head otherwise
    uint32_t total_len = 0;
  };
  struct LeafNode {
    std::vector<uint64_t> keys;
    std::vector<ValueRef> values;
  };
  struct InternalNode {
    std::vector<uint64_t> keys;      // separators, size() == children-1
    std::vector<PageId> children;
  };

  size_t MaxInlineValue() const { return pager_->payload_size() / 4; }
  size_t LeafEntryBytes(const ValueRef& v) const;
  size_t LeafBytes(const LeafNode& node) const;
  size_t InternalBytes(const InternalNode& node) const;

  static void EncodeLeaf(const LeafNode& node, std::vector<uint8_t>* out);
  static void EncodeInternal(const InternalNode& node,
                             std::vector<uint8_t>* out);
  static Status DecodeLeaf(const PageImage& img, LeafNode* out);
  static Status DecodeInternal(const PageImage& img, InternalNode* out);

  /// Materializes `value` as a ValueRef, spilling to an overflow chain when
  /// it exceeds MaxInlineValue().
  Result<ValueRef> StoreValue(const std::vector<uint8_t>& value);
  Status LoadValue(const ValueRef& ref, std::vector<uint8_t>* out);
  /// Frees an overflow chain (no-op for inline values).
  Status ReleaseValue(const ValueRef& ref);

  /// Copy-on-write: returns a writable page id holding `img`'s contents —
  /// `id` itself when fresh, otherwise a fresh copy (the old page is freed).
  Result<PageId> MakeWritable(PageId id, PageType type,
                              const std::vector<uint8_t>& payload);
  Result<PageId> WriteNode(PageId id, PageType type,
                           const std::vector<uint8_t>& payload);
  Result<PageId> WriteFreshNode(PageType type,
                                const std::vector<uint8_t>& payload);

  struct InsertResult {
    PageId node = kNullPage;     // (possibly COW'd) node id
    bool replaced = false;       // key existed and its value was overwritten
    bool split = false;
    uint64_t split_key = 0;      // first key of `right` when split
    PageId right = kNullPage;
  };
  Result<InsertResult> InsertRec(PageId id, uint64_t key,
                                 const std::vector<uint8_t>& value);

  struct EraseResult {
    PageId node = kNullPage;
    bool found = false;
    bool underflow = false;
  };
  Result<EraseResult> EraseRec(PageId id, uint64_t key);
  /// Fixes an underflowing child `idx` of `parent` by borrowing from or
  /// merging with an adjacent sibling. All three touched nodes end fresh.
  Status Rebalance(InternalNode* parent, size_t idx);

  Status DestroyRec(PageId id);
  Result<uint64_t> CheckRec(PageId id, size_t depth, size_t leaf_depth,
                            bool has_low, uint64_t low, bool has_high,
                            uint64_t high);
  Status LeafDepth(PageId id, size_t depth, size_t* out);

  Pager* pager_;
  PageCache* cache_;
  PageId root_;
};

}  // namespace itag::storage::pager

#endif  // ITAG_STORAGE_PAGER_PAGED_BTREE_H_
