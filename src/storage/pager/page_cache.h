#ifndef ITAG_STORAGE_PAGER_PAGE_CACHE_H_
#define ITAG_STORAGE_PAGER_PAGE_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/pager/page.h"
#include "storage/pager/pager.h"

namespace itag::storage::pager {

class PageCache;

/// RAII pin on one cached page. While any PageRef to a page is alive the
/// frame cannot be evicted; destruction unpins. Mutators go through
/// image()/MarkDirty so write-back happens on eviction or FlushAll.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  bool valid() const { return cache_ != nullptr; }
  PageId id() const { return id_; }
  PageImage& image();
  const PageImage& image() const;
  PageHeader& header() { return image().header; }
  std::vector<uint8_t>& payload() { return image().payload; }
  const std::vector<uint8_t>& payload() const { return image().payload; }
  /// Marks the frame dirty — it will be written back before eviction and
  /// at FlushAll. Every mutation of image() must be paired with this.
  void MarkDirty();
  /// Drops the pin early (idempotent).
  void Release();

 private:
  friend class PageCache;
  PageRef(PageCache* cache, PageId id) : cache_(cache), id_(id) {}
  PageCache* cache_ = nullptr;
  PageId id_ = kNullPage;
};

/// Per-cache counters (the process-wide storage.page.* metrics aggregate
/// across caches; tests want per-instance numbers).
struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Bounded cache of decoded page frames over one Pager, with pin counts
/// and clock (second-chance) eviction.
///
///  * `Pin` faults the page in on miss, evicting the first unpinned frame
///    whose reference bit is clear (dirty victims are written back first).
///  * Pinned frames are never evicted. When every frame is pinned the cache
///    grows past its budget instead of failing — pin pressure is a caller
///    bug the engine survives — and shrinks back to budget as soon as later
///    Pins find unpinned victims; the `storage.page.cache_resident` gauge
///    makes an over-budget cache visible.
///  * Single-writer like the Pager; no internal locking.
class PageCache {
 public:
  /// `capacity_bytes` is a budget, floored at one frame.
  PageCache(Pager* pager, size_t capacity_bytes);
  ~PageCache();
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Pins page `id`, reading it from the pager on miss.
  Result<PageRef> Pin(PageId id);

  /// Pins a brand-new frame for freshly allocated page `id` without reading
  /// the (garbage) slot; the frame starts dirty with the given type.
  Result<PageRef> PinNew(PageId id, PageType type);

  /// Discards the frame for `id` (page was freed): no write-back.
  void Drop(PageId id);

  /// Writes back every dirty frame (checkpoint). Frames stay resident.
  Status FlushAll();

  size_t resident() const { return frames_.size(); }
  size_t capacity_frames() const { return capacity_frames_; }
  const PageCacheStats& stats() const { return stats_; }

 private:
  friend class PageRef;
  struct Frame {
    PageImage image;
    uint32_t pins = 0;
    bool dirty = false;
    bool referenced = false;  // clock second-chance bit
  };

  void Unpin(PageId id);
  PageImage& ImageOf(PageId id);
  void MarkDirty(PageId id);
  /// Evicts down to capacity; stops early when only pinned frames remain.
  Status EvictForSpace();
  Status WriteBack(PageId id, Frame* frame);

  Pager* pager_;
  size_t capacity_frames_;
  std::unordered_map<PageId, Frame> frames_;
  std::vector<PageId> clock_order_;  ///< insertion ring the clock hand walks
  size_t clock_hand_ = 0;
  PageCacheStats stats_;
};

}  // namespace itag::storage::pager

#endif  // ITAG_STORAGE_PAGER_PAGE_CACHE_H_
