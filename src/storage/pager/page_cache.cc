#include "storage/pager/page_cache.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace itag::storage::pager {

namespace {

/// Process-wide storage.page.* cache metrics (docs/observability.md).
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Gauge* resident;

  static const CacheMetrics& Get() {
    static const CacheMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      CacheMetrics s;
      s.hits = reg.GetCounter("storage.page.cache_hits");
      s.misses = reg.GetCounter("storage.page.cache_misses");
      s.evictions = reg.GetCounter("storage.page.evictions");
      s.resident = reg.GetGauge("storage.page.cache_resident");
      return s;
    }();
    return m;
  }
};

}  // namespace

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    id_ = other.id_;
    other.cache_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(id_);
    cache_ = nullptr;
  }
}

PageImage& PageRef::image() {
  assert(valid());
  return cache_->ImageOf(id_);
}

const PageImage& PageRef::image() const {
  assert(valid());
  return cache_->ImageOf(id_);
}

void PageRef::MarkDirty() {
  assert(valid());
  cache_->MarkDirty(id_);
}

PageCache::PageCache(Pager* pager, size_t capacity_bytes) : pager_(pager) {
  size_t frame_bytes = pager->page_size();
  capacity_frames_ = capacity_bytes / frame_bytes;
  if (capacity_frames_ == 0) capacity_frames_ = 1;
}

PageCache::~PageCache() {
  CacheMetrics::Get().resident->Sub(static_cast<int64_t>(frames_.size()));
}

PageImage& PageCache::ImageOf(PageId id) {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  return it->second.image;
}

void PageCache::MarkDirty(PageId id) {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  it->second.dirty = true;
}

void PageCache::Unpin(PageId id) {
  auto it = frames_.find(id);
  assert(it != frames_.end() && it->second.pins > 0);
  --it->second.pins;
}

Result<PageRef> PageCache::Pin(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++it->second.pins;
    it->second.referenced = true;
    ++stats_.hits;
    CacheMetrics::Get().hits->Inc();
    return PageRef(this, id);
  }
  ++stats_.misses;
  CacheMetrics::Get().misses->Inc();
  // A miss is the cache's only IO-bearing path (evict may write, the fill
  // always reads) — worth a span of its own on traced requests.
  obs::Span span("storage.page_cache.miss");
  span.Annotate("page", static_cast<uint64_t>(id));
  ITAG_RETURN_IF_ERROR(EvictForSpace());
  Frame frame;
  ITAG_RETURN_IF_ERROR(pager_->ReadPage(id, &frame.image));
  frame.pins = 1;
  frame.referenced = true;
  frames_.emplace(id, std::move(frame));
  clock_order_.push_back(id);
  CacheMetrics::Get().resident->Add(1);
  return PageRef(this, id);
}

Result<PageRef> PageCache::PinNew(PageId id, PageType type) {
  assert(frames_.find(id) == frames_.end());
  ITAG_RETURN_IF_ERROR(EvictForSpace());
  Frame frame;
  frame.image.header.page_id = id;
  frame.image.header.type = type;
  frame.pins = 1;
  frame.dirty = true;
  frame.referenced = true;
  frames_.emplace(id, std::move(frame));
  clock_order_.push_back(id);
  CacheMetrics::Get().resident->Add(1);
  return PageRef(this, id);
}

void PageCache::Drop(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  assert(it->second.pins == 0 && "dropping a pinned page");
  frames_.erase(it);  // ring entry goes stale; the clock skips it
  CacheMetrics::Get().resident->Sub(1);
}

Status PageCache::WriteBack(PageId id, Frame* frame) {
  (void)id;
  ITAG_RETURN_IF_ERROR(pager_->WritePage(&frame->image));
  frame->dirty = false;
  ++stats_.dirty_writebacks;
  return Status::OK();
}

Status PageCache::EvictForSpace() {
  // Second-chance sweep; gives up (and lets the cache exceed budget) when a
  // full lap finds only pinned frames.
  while (frames_.size() >= capacity_frames_) {
    bool evicted = false;
    size_t steps = 0;
    const size_t max_steps = 2 * clock_order_.size();
    while (steps < max_steps && !clock_order_.empty()) {
      if (clock_hand_ >= clock_order_.size()) clock_hand_ = 0;
      PageId id = clock_order_[clock_hand_];
      auto it = frames_.find(id);
      if (it == frames_.end()) {
        // Stale ticket of an evicted/dropped frame — retire it.
        clock_order_.erase(clock_order_.begin() +
                           static_cast<ptrdiff_t>(clock_hand_));
        continue;
      }
      ++steps;
      Frame& frame = it->second;
      if (frame.pins > 0) {
        ++clock_hand_;
        continue;
      }
      if (frame.referenced) {
        frame.referenced = false;
        ++clock_hand_;
        continue;
      }
      if (frame.dirty) {
        ITAG_RETURN_IF_ERROR(WriteBack(id, &frame));
      }
      frames_.erase(it);
      clock_order_.erase(clock_order_.begin() +
                         static_cast<ptrdiff_t>(clock_hand_));
      ++stats_.evictions;
      CacheMetrics::Get().evictions->Inc();
      CacheMetrics::Get().resident->Sub(1);
      evicted = true;
      break;
    }
    if (!evicted) break;  // pin pressure: grow past budget rather than fail
  }
  return Status::OK();
}

Status PageCache::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      ITAG_RETURN_IF_ERROR(WriteBack(id, &frame));
    }
  }
  return Status::OK();
}

}  // namespace itag::storage::pager
