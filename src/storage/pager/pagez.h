#ifndef ITAG_STORAGE_PAGER_PAGEZ_H_
#define ITAG_STORAGE_PAGER_PAGEZ_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace itag::storage::pager {

// pagez — the pager's self-contained per-page codec: a byte-oriented LZ77
// with a 4 KiB sliding window and greedy hash-chain matching, in the LZRW/
// LZJB family. No entropy stage and no external dependency (the container
// image pins the toolchain, so the engine cannot assume zlib): row payloads
// are length-prefixed repetitive records, which is exactly the redundancy
// a short-window LZ removes.
//
// Token stream: a control byte carries 8 flags (LSB first); flag 0 = one
// literal byte follows, flag 1 = a 2-byte match token
// [len-3 (high nibble) | offset high bits][offset low byte] copying
// `len` in [3,18] bytes from `offset` in [1,4095] bytes back. The format
// is only ever decoded from a CRC-verified page, so the decoder treats
// malformed input (offset past start, output overrun) as failure, never UB.

/// Appends the compressed form of [src, src+n) to `out`. Returns false —
/// leaving `out` untouched — when the result would not be smaller than
/// `n` (incompressible input stores raw; the page flag records which).
bool PagezCompress(const uint8_t* src, size_t n, std::vector<uint8_t>* out);

/// Decompresses exactly `expected` bytes into `out` (resized by the call).
/// False on malformed input or when the stream does not produce exactly
/// `expected` bytes.
bool PagezDecompress(const uint8_t* src, size_t n, size_t expected,
                     std::vector<uint8_t>* out);

}  // namespace itag::storage::pager

#endif  // ITAG_STORAGE_PAGER_PAGEZ_H_
