#ifndef ITAG_STORAGE_PAGER_PAGER_H_
#define ITAG_STORAGE_PAGER_PAGER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/pager/page.h"

namespace itag::storage::pager {

/// Configuration for one page file.
struct PagerOptions {
  std::string path;
  /// Page size used when the file is created; an existing file's recorded
  /// size wins and a mismatch is an InvalidArgument.
  size_t page_size = kDefaultPageSize;
  /// Compress page payloads on write (pagez). Readable either way — the
  /// per-page flag records how each slot was stored, so the setting can
  /// change between opens and only affects new writes.
  bool compression = false;
};

/// Local physical-IO counters (the process-wide storage.page.* metrics
/// aggregate across pagers; tests want per-instance numbers).
struct PagerStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t bytes_written = 0;      ///< physical bytes (post-compression)
  uint64_t compressed_writes = 0;  ///< writes that stored a compressed payload
};

/// The paged file underneath the storage engine: fixed-size CRC'd slots, a
/// free list, and a two-slot copy-on-write commit protocol.
///
/// Epoch discipline (the crash-safety contract every layer above relies on):
///  * Pages 0 and 1 are alternating meta slots. A slot is committed by one
///    header+payload write; Open picks the valid slot with the higher epoch,
///    so a torn meta write falls back to the previous checkpoint.
///  * Between two commits (one "epoch") the durable tree of the last commit
///    is never overwritten: Allocate() hands out only pages the last commit
///    recorded as free (or file growth), and Free() parks pages in a pending
///    list that becomes allocatable only after the *next* commit. Writers
///    above (the B+tree) copy-on-write any page that predates the epoch
///    (`IsFresh`), so a crash at any instant leaves the last committed state
///    fully intact and the WAL tail replays on top of it.
///  * Commit flushes nothing itself — the caller flushes its page cache
///    first — then persists the free list (a chained blob), fdatasyncs the
///    data, writes the next meta slot, and fdatasyncs again.
///
/// Single-writer, like the Database that owns it.
class Pager {
 public:
  Pager() = default;
  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens `options.path`, creating and formatting it when absent/empty.
  Status Open(const PagerOptions& options);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  size_t page_size() const { return page_size_; }
  /// Payload bytes available per page.
  size_t payload_size() const { return page_size_ - kPageHeaderSize; }
  uint64_t epoch() const { return epoch_; }
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  PageId catalog_head() const { return catalog_head_; }
  uint32_t page_count() const { return page_count_; }
  size_t free_now() const { return free_now_.size(); }
  size_t free_pending() const { return free_pending_.size(); }
  const PagerStats& stats() const { return stats_; }

  /// Reads slot `id`: CRC-verified, decompressed. Corruption on checksum or
  /// self-id mismatch (torn page / misdirected write).
  Status ReadPage(PageId id, PageImage* out);

  /// Writes `img` to slot `img.header.page_id`: stamps stored_len/flags/crc,
  /// compresses when enabled and profitable, writes header + stored bytes.
  Status WritePage(PageImage* img);

  /// Hands out a page that is free *as of the last commit* (or grows the
  /// file). The slot's stale on-disk image is garbage by contract.
  Result<PageId> Allocate();

  /// Parks `id` for reuse after the next Commit. Never reuses it within the
  /// current epoch — the durable tree may still reference it.
  void Free(PageId id);

  /// True iff `id` was allocated in the current epoch (safe to modify in
  /// place; anything else must be copy-on-written first).
  bool IsFresh(PageId id) const { return fresh_.count(id) != 0; }

  /// Commits a checkpoint: persists the free list, fdatasyncs data, writes
  /// the next meta slot (epoch+1, `catalog_head`, `checkpoint_lsn`),
  /// fdatasyncs, then merges pending frees and clears the fresh set. The
  /// caller must have written back every dirty page first.
  Status Commit(PageId catalog_head, uint64_t checkpoint_lsn);

 private:
  Status Format();
  Status ReadMetaSlot(PageId slot, bool* valid, uint64_t* epoch,
                      std::vector<uint8_t>* payload);
  Status LoadFreeList(PageId head);
  Status WriteRaw(PageId id, const uint8_t* data, size_t n);
  Status ReadRaw(PageId id, std::vector<uint8_t>* buf);

  PagerOptions options_;
  int fd_ = -1;
  size_t page_size_ = kDefaultPageSize;
  uint64_t epoch_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  uint32_t page_count_ = kFirstDataPage;
  PageId catalog_head_ = kNullPage;
  PageId freelist_head_ = kNullPage;
  std::vector<PageId> free_now_;      ///< allocatable in this epoch
  std::vector<PageId> free_pending_;  ///< freed this epoch; reusable next
  std::unordered_set<PageId> fresh_;  ///< allocated this epoch (no COW needed)
  PagerStats stats_;
};

}  // namespace itag::storage::pager

#endif  // ITAG_STORAGE_PAGER_PAGER_H_
