#ifndef ITAG_STORAGE_VALUE_H_
#define ITAG_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace itag::storage {

/// Column types supported by the embedded engine. This is the subset the
/// iTag managers need from MySQL: identifiers, counters, money amounts,
/// flags, and short text.
enum class FieldType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

/// Human-readable type name ("int64", "string", ...).
const char* FieldTypeName(FieldType t);

/// A dynamically-typed cell value. Values order first by type tag, then by
/// payload, giving a total order usable as a B+-tree key. NULL sorts before
/// everything.
class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.data_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.data_ = i;
    return v;
  }
  static Value Real(double d) {
    Value v;
    v.data_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.data_ = std::move(s);
    return v;
  }

  /// The runtime type of this value.
  FieldType type() const;

  bool is_null() const { return type() == FieldType::kNull; }

  /// Typed accessors; behaviour is undefined if the type does not match
  /// (callers go through Schema validation first).
  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Total order: type tag first, then payload.
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Renders the value for debugging/export ("NULL", "42", "3.14", "abc").
  std::string ToString() const;

  /// Appends a self-delimiting binary encoding to `out` (used by the WAL and
  /// snapshots).
  void EncodeTo(std::string* out) const;

  /// Decodes a value from `data` starting at `*offset`, advancing it.
  /// Returns false on malformed input.
  static bool DecodeFrom(const std::string& data, size_t* offset, Value* out);

  /// 64-bit hash usable in hash indexes.
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace itag::storage

#endif  // ITAG_STORAGE_VALUE_H_
