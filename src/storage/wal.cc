#include "storage/wal.h"

#include <cstring>
#include <filesystem>

#include "common/crc32.h"

namespace itag::storage {

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path) {
  path_ = path;
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) return Status::IOError("cannot open wal: " + path);
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  if (!out_.is_open()) return Status::FailedPrecondition("wal not open");
  std::string payload = EncodeWalRecord(record);
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload.data(), payload.size());
  out_.write(reinterpret_cast<const char*>(&len), 4);
  out_.write(reinterpret_cast<const char*>(&crc), 4);
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_.flush();
  if (!out_) return Status::IOError("wal append failed: " + path_);
  return Status::OK();
}

void WalWriter::Close() {
  if (out_.is_open()) out_.close();
}

Status WalWriter::Reset() {
  Close();
  std::ofstream trunc(path_, std::ios::binary | std::ios::trunc);
  if (!trunc) return Status::IOError("wal reset failed: " + path_);
  trunc.close();
  return Open(path_);
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(record.op));
  out.append(reinterpret_cast<const char*>(&record.lsn), 8);
  uint32_t tlen = static_cast<uint32_t>(record.table.size());
  out.append(reinterpret_cast<const char*>(&tlen), 4);
  out.append(record.table);
  out.append(reinterpret_cast<const char*>(&record.row_id), 8);
  uint32_t plen = static_cast<uint32_t>(record.payload.size());
  out.append(reinterpret_cast<const char*>(&plen), 4);
  out.append(record.payload);
  return out;
}

bool DecodeWalRecord(const std::string& payload, WalRecord* out) {
  size_t off = 0;
  if (payload.size() < 1 + 8 + 4) return false;
  out->op = static_cast<WalOp>(payload[off]);
  off += 1;
  std::memcpy(&out->lsn, payload.data() + off, 8);
  off += 8;
  uint32_t tlen;
  std::memcpy(&tlen, payload.data() + off, 4);
  off += 4;
  if (off + tlen + 8 + 4 > payload.size()) return false;
  out->table = payload.substr(off, tlen);
  off += tlen;
  std::memcpy(&out->row_id, payload.data() + off, 8);
  off += 8;
  uint32_t plen;
  std::memcpy(&plen, payload.data() + off, 4);
  off += 4;
  if (off + plen != payload.size()) return false;
  out->payload = payload.substr(off, plen);
  return true;
}

Status WalTailer::Next(WalRecord* out, bool* have) {
  *have = false;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec) return Status::OK();  // not created yet — nothing to read
  if (size < offset_) {
    return Status::FailedPrecondition(
        "wal " + path_ + " shrank below the tail cursor (history truncated); "
        "subscriber must resync");
  }
  if (size - offset_ < 8) return Status::OK();
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IOError("cannot read wal: " + path_);
  in.seekg(static_cast<std::streamoff>(offset_));
  uint32_t len = 0, crc = 0;
  in.read(reinterpret_cast<char*>(&len), 4);
  in.read(reinterpret_cast<char*>(&crc), 4);
  if (in.gcount() < 4) return Status::OK();
  if (size - offset_ - 8 < len) return Status::OK();  // torn tail: wait
  std::string payload(len, '\0');
  in.read(payload.data(), len);
  if (static_cast<uint32_t>(in.gcount()) < len) return Status::OK();
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::Corruption("wal checksum mismatch in " + path_);
  }
  if (!DecodeWalRecord(payload, out)) {
    return Status::Corruption("wal record malformed in " + path_);
  }
  offset_ += 8 + len;
  if (out->lsn > head_lsn_) head_lsn_ = out->lsn;
  if (offset_ > head_bytes_) head_bytes_ = offset_;
  *have = true;
  return Status::OK();
}

Status ReadWal(const std::string& path, std::vector<WalRecord>* records) {
  records->clear();
  if (!std::filesystem::exists(path)) return Status::OK();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read wal: " + path);
  for (;;) {
    uint32_t len = 0, crc = 0;
    in.read(reinterpret_cast<char*>(&len), 4);
    if (in.gcount() < 4) break;  // clean EOF or torn header: stop
    in.read(reinterpret_cast<char*>(&crc), 4);
    if (in.gcount() < 4) break;
    std::string payload(len, '\0');
    in.read(payload.data(), len);
    if (static_cast<uint32_t>(in.gcount()) < len) break;  // torn tail
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption("wal checksum mismatch in " + path);
    }
    WalRecord rec;
    if (!DecodeWalRecord(payload, &rec)) {
      return Status::Corruption("wal record malformed in " + path);
    }
    records->push_back(std::move(rec));
  }
  return Status::OK();
}

}  // namespace itag::storage
