#include "storage/row_store.h"

#include <cstring>
#include <vector>

namespace itag::storage {

std::string EncodeRow(const Row& row) {
  std::string out;
  uint32_t n = static_cast<uint32_t>(row.size());
  out.append(reinterpret_cast<const char*>(&n), 4);
  for (const Value& v : row) v.EncodeTo(&out);
  return out;
}

bool DecodeRow(const std::string& data, size_t arity, Row* out) {
  size_t off = 0;
  if (data.size() < 4) return false;
  uint32_t n;
  std::memcpy(&n, data.data(), 4);
  off += 4;
  if (n != arity) return false;
  out->clear();
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!Value::DecodeFrom(data, &off, &(*out)[i])) return false;
  }
  return off == data.size();
}

// ---------------------------------------------------------------------------
// MemRowStore

Result<Row> MemRowStore::Get(RowId id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) return Status::NotFound("row " + std::to_string(id));
  return it->second;
}

bool MemRowStore::Contains(RowId id) const { return rows_.count(id) != 0; }

Status MemRowStore::Put(RowId id, const Row& row) {
  rows_[id] = row;
  return Status::OK();
}

Status MemRowStore::Erase(RowId id) {
  if (rows_.erase(id) == 0) {
    return Status::NotFound("row " + std::to_string(id));
  }
  return Status::OK();
}

Status MemRowStore::Scan(
    const std::function<bool(RowId, const Row&)>& fn) const {
  for (const auto& [id, row] : rows_) {
    if (!fn(id, row)) break;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PagedRowStore

namespace {

std::vector<uint8_t> ToBytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

}  // namespace

Result<Row> PagedRowStore::Get(RowId id) const {
  std::vector<uint8_t> bytes;
  ITAG_ASSIGN_OR_RETURN(bool found, tree_->Get(id, &bytes));
  if (!found) return Status::NotFound("row " + std::to_string(id));
  Row row;
  if (!DecodeRow(std::string(bytes.begin(), bytes.end()), arity_, &row)) {
    return Status::Corruption("stored row " + std::to_string(id) +
                              " does not decode");
  }
  return row;
}

bool PagedRowStore::Contains(RowId id) const {
  std::vector<uint8_t> bytes;
  Result<bool> found = tree_->Get(id, &bytes);
  return found.ok() && found.value();
}

Status PagedRowStore::Put(RowId id, const Row& row) {
  ITAG_ASSIGN_OR_RETURN(bool inserted, tree_->Put(id, ToBytes(EncodeRow(row))));
  if (inserted) ++count_;
  return Status::OK();
}

Status PagedRowStore::Erase(RowId id) {
  ITAG_ASSIGN_OR_RETURN(bool found, tree_->Erase(id));
  if (!found) return Status::NotFound("row " + std::to_string(id));
  --count_;
  return Status::OK();
}

Status PagedRowStore::Scan(
    const std::function<bool(RowId, const Row&)>& fn) const {
  return tree_->Scan(0, [&](uint64_t key, const std::vector<uint8_t>& bytes) {
    Row row;
    if (!DecodeRow(std::string(bytes.begin(), bytes.end()), arity_, &row)) {
      // Scan's visitor cannot surface a Status; stop. The corrupt row also
      // fails loudly through Get on the same key.
      return false;
    }
    return fn(key, row);
  });
}

}  // namespace itag::storage
