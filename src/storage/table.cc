#include "storage/table.h"

#include <algorithm>
#include <cstring>

namespace itag::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      store_(std::make_unique<MemRowStore>()) {}

Table::Table(std::string name, Schema schema, std::unique_ptr<RowStore> store,
             RowId next_row_id)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      store_(std::move(store)),
      next_id_(next_row_id) {}

Status Table::AddUniqueIndex(const std::string& column) {
  int idx = schema_.ColumnIndex(column);
  if (idx < 0) return Status::NotFound("no column '" + column + "'");
  std::unordered_map<Value, RowId, ValueHash> built;
  built.reserve(store_->size());
  Value dup;
  bool has_dup = false;
  ITAG_RETURN_IF_ERROR(store_->Scan([&](RowId id, const Row& row) {
    auto [it, inserted] = built.emplace(row[idx], id);
    (void)it;
    if (!inserted) {
      dup = row[idx];
      has_dup = true;
      return false;
    }
    return true;
  }));
  if (has_dup) {
    return Status::AlreadyExists("duplicate key " + dup.ToString() +
                                 " while building unique index on '" + column +
                                 "'");
  }
  unique_col_ = idx;
  unique_index_ = std::move(built);
  return Status::OK();
}

Status Table::AddOrderedIndex(const std::string& column) {
  int idx = schema_.ColumnIndex(column);
  if (idx < 0) return Status::NotFound("no column '" + column + "'");
  if (ordered_indexes_.count(idx)) return Status::OK();  // idempotent
  BPlusTree<IndexKey>& tree = ordered_indexes_[idx];
  return store_->Scan([&](RowId id, const Row& row) {
    tree.Insert(IndexKey{row[idx], id});
    return true;
  });
}

Result<RowId> Table::Insert(const Row& row) {
  ITAG_RETURN_IF_ERROR(schema_.Validate(row));
  if (unique_col_ >= 0) {
    auto it = unique_index_.find(row[unique_col_]);
    if (it != unique_index_.end()) {
      return Status::AlreadyExists("duplicate key " +
                                   row[unique_col_].ToString() + " in " +
                                   name_);
    }
  }
  RowId id = next_id_;
  ITAG_RETURN_IF_ERROR(store_->Put(id, row));
  next_id_ = id + 1;
  IndexRow(id, row);
  return id;
}

Status Table::InsertWithId(RowId id, const Row& row) {
  ITAG_RETURN_IF_ERROR(schema_.Validate(row));
  if (store_->Contains(id)) {
    return Status::AlreadyExists("row id " + std::to_string(id) + " taken");
  }
  if (unique_col_ >= 0 && unique_index_.count(row[unique_col_])) {
    return Status::AlreadyExists("duplicate key in " + name_);
  }
  ITAG_RETURN_IF_ERROR(store_->Put(id, row));
  if (id >= next_id_) next_id_ = id + 1;
  IndexRow(id, row);
  return Status::OK();
}

Result<Row> Table::Get(RowId id) const {
  Result<Row> row = store_->Get(id);
  if (!row.ok() && row.status().IsNotFound()) {
    return Status::NotFound("row " + std::to_string(id) + " in " + name_);
  }
  return row;
}

Status Table::Update(RowId id, const Row& row) {
  ITAG_RETURN_IF_ERROR(schema_.Validate(row));
  Result<Row> old = store_->Get(id);
  if (!old.ok()) {
    if (old.status().IsNotFound()) {
      return Status::NotFound("row " + std::to_string(id) + " in " + name_);
    }
    return old.status();
  }
  if (unique_col_ >= 0) {
    auto u = unique_index_.find(row[unique_col_]);
    if (u != unique_index_.end() && u->second != id) {
      return Status::AlreadyExists("duplicate key in " + name_);
    }
  }
  UnindexRow(id, old.value());
  Status s = store_->Put(id, row);
  if (!s.ok()) {
    IndexRow(id, old.value());  // keep indexes consistent with the heap
    return s;
  }
  IndexRow(id, row);
  return Status::OK();
}

Status Table::Delete(RowId id) {
  Result<Row> old = store_->Get(id);
  if (!old.ok()) {
    if (old.status().IsNotFound()) {
      return Status::NotFound("row " + std::to_string(id) + " in " + name_);
    }
    return old.status();
  }
  UnindexRow(id, old.value());
  Status s = store_->Erase(id);
  if (!s.ok()) {
    IndexRow(id, old.value());
    return s;
  }
  return Status::OK();
}

Result<RowId> Table::LookupUnique(const std::string& column,
                                  const Value& key) const {
  int idx = schema_.ColumnIndex(column);
  if (idx < 0 || idx != unique_col_) {
    return Status::NotFound("no unique index on '" + column + "'");
  }
  auto it = unique_index_.find(key);
  if (it == unique_index_.end()) {
    return Status::NotFound("key " + key.ToString() + " in " + name_);
  }
  return it->second;
}

std::vector<RowId> Table::LookupEqual(const std::string& column,
                                      const Value& key) const {
  std::vector<RowId> out;
  int idx = schema_.ColumnIndex(column);
  if (idx < 0) return out;
  auto tree_it = ordered_indexes_.find(idx);
  if (tree_it != ordered_indexes_.end()) {
    IndexKey lo{key, 0};
    IndexKey hi{key, UINT64_MAX};
    tree_it->second.ScanRange(lo, hi, [&](const IndexKey& k) {
      out.push_back(k.row_id);
      return true;
    });
    // UINT64_MAX itself is excluded by the half-open range; it is never a
    // real row id (ids start at 1 and are assigned sequentially).
    return out;
  }
  (void)store_->Scan([&](RowId id, const Row& row) {
    if (row[idx] == key) out.push_back(id);
    return true;
  });
  return out;
}

std::vector<RowId> Table::LookupRange(const std::string& column,
                                      const Value& lo, const Value& hi) const {
  std::vector<RowId> out;
  int idx = schema_.ColumnIndex(column);
  if (idx < 0) return out;
  auto tree_it = ordered_indexes_.find(idx);
  if (tree_it != ordered_indexes_.end()) {
    tree_it->second.ScanRange(IndexKey{lo, 0}, IndexKey{hi, 0},
                              [&](const IndexKey& k) {
                                out.push_back(k.row_id);
                                return true;
                              });
    return out;
  }
  std::vector<std::pair<Value, RowId>> hits;
  (void)store_->Scan([&](RowId id, const Row& row) {
    if (!(row[idx] < lo) && row[idx] < hi) hits.emplace_back(row[idx], id);
    return true;
  });
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) {
              if (a.first < b.first) return true;
              if (b.first < a.first) return false;
              return a.second < b.second;
            });
  for (const auto& [v, id] : hits) out.push_back(id);
  return out;
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  (void)store_->Scan(fn);
}

size_t Table::CountWhere(const std::function<bool(const Row&)>& pred) const {
  size_t n = 0;
  (void)store_->Scan([&](RowId id, const Row& row) {
    (void)id;
    if (pred(row)) ++n;
    return true;
  });
  return n;
}

void Table::IndexRow(RowId id, const Row& row) {
  if (unique_col_ >= 0) unique_index_.emplace(row[unique_col_], id);
  for (auto& [col, tree] : ordered_indexes_) {
    tree.Insert(IndexKey{row[col], id});
  }
}

void Table::UnindexRow(RowId id, const Row& row) {
  if (unique_col_ >= 0) {
    auto it = unique_index_.find(row[unique_col_]);
    if (it != unique_index_.end() && it->second == id) {
      unique_index_.erase(it);
    }
  }
  for (auto& [col, tree] : ordered_indexes_) {
    tree.Erase(IndexKey{row[col], id});
  }
}

void Table::EncodeTo(std::string* out) const {
  uint32_t nlen = static_cast<uint32_t>(name_.size());
  out->append(reinterpret_cast<const char*>(&nlen), 4);
  out->append(name_);
  schema_.EncodeTo(out);
  out->push_back(static_cast<char>(unique_col_ >= 0 ? unique_col_ + 1 : 0));
  uint32_t nidx = static_cast<uint32_t>(ordered_indexes_.size());
  out->append(reinterpret_cast<const char*>(&nidx), 4);
  for (const auto& [col, tree] : ordered_indexes_) {
    (void)tree;
    uint32_t c = static_cast<uint32_t>(col);
    out->append(reinterpret_cast<const char*>(&c), 4);
  }
  uint64_t next = next_id_;
  out->append(reinterpret_cast<const char*>(&next), 8);
  uint64_t nrows = store_->size();
  out->append(reinterpret_cast<const char*>(&nrows), 8);
  (void)store_->Scan([&](RowId id, const Row& row) {
    out->append(reinterpret_cast<const char*>(&id), 8);
    for (const Value& v : row) v.EncodeTo(out);
    return true;
  });
}

bool Table::DecodeFrom(const std::string& data, size_t* offset, Table* out) {
  auto need = [&](size_t n) { return *offset + n <= data.size(); };
  if (!need(4)) return false;
  uint32_t nlen;
  std::memcpy(&nlen, data.data() + *offset, 4);
  *offset += 4;
  if (!need(nlen)) return false;
  std::string name = data.substr(*offset, nlen);
  *offset += nlen;
  Schema schema;
  if (!Schema::DecodeFrom(data, offset, &schema)) return false;
  *out = Table(name, schema);
  if (!need(1)) return false;
  int unique_plus1 = static_cast<unsigned char>(data[*offset]);
  ++*offset;
  if (unique_plus1 > 0) {
    out->unique_col_ = unique_plus1 - 1;
  }
  if (!need(4)) return false;
  uint32_t nidx;
  std::memcpy(&nidx, data.data() + *offset, 4);
  *offset += 4;
  std::vector<int> index_cols;
  for (uint32_t i = 0; i < nidx; ++i) {
    if (!need(4)) return false;
    uint32_t c;
    std::memcpy(&c, data.data() + *offset, 4);
    *offset += 4;
    index_cols.push_back(static_cast<int>(c));
  }
  if (!need(8 + 8)) return false;
  uint64_t next, nrows;
  std::memcpy(&next, data.data() + *offset, 8);
  *offset += 8;
  std::memcpy(&nrows, data.data() + *offset, 8);
  *offset += 8;
  for (uint64_t i = 0; i < nrows; ++i) {
    if (!need(8)) return false;
    RowId id;
    std::memcpy(&id, data.data() + *offset, 8);
    *offset += 8;
    Row row(out->schema_.num_columns());
    for (size_t c = 0; c < row.size(); ++c) {
      if (!Value::DecodeFrom(data, offset, &row[c])) return false;
    }
    if (!out->store_->Put(id, row).ok()) return false;
  }
  out->next_id_ = next;
  // Rebuild in-memory indexes from the restored heap.
  for (int col : index_cols) {
    out->ordered_indexes_.emplace(col, BPlusTree<IndexKey>());
  }
  (void)out->store_->Scan([&](RowId id, const Row& row) {
    out->IndexRow(id, row);
    return true;
  });
  return true;
}

}  // namespace itag::storage
