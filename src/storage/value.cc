#include "storage/value.h"

#include <cstring>
#include <functional>

namespace itag::storage {

const char* FieldTypeName(FieldType t) {
  switch (t) {
    case FieldType::kNull:
      return "null";
    case FieldType::kBool:
      return "bool";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kDouble:
      return "double";
    case FieldType::kString:
      return "string";
  }
  return "?";
}

FieldType Value::type() const {
  switch (data_.index()) {
    case 0:
      return FieldType::kNull;
    case 1:
      return FieldType::kBool;
    case 2:
      return FieldType::kInt64;
    case 3:
      return FieldType::kDouble;
    case 4:
      return FieldType::kString;
  }
  return FieldType::kNull;
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  return data_ < other.data_;
}

bool Value::operator==(const Value& other) const { return data_ == other.data_; }

std::string Value::ToString() const {
  switch (type()) {
    case FieldType::kNull:
      return "NULL";
    case FieldType::kBool:
      return as_bool() ? "true" : "false";
    case FieldType::kInt64:
      return std::to_string(as_int());
    case FieldType::kDouble:
      return std::to_string(as_double());
    case FieldType::kString:
      return as_string();
  }
  return "?";
}

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU32(const std::string& data, size_t* offset, uint32_t* v) {
  if (*offset + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *offset, 4);
  *offset += 4;
  return true;
}

bool GetU64(const std::string& data, size_t* offset, uint64_t* v) {
  if (*offset + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *offset, 8);
  *offset += 8;
  return true;
}

}  // namespace

void Value::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case FieldType::kNull:
      break;
    case FieldType::kBool:
      out->push_back(as_bool() ? 1 : 0);
      break;
    case FieldType::kInt64:
      PutU64(out, static_cast<uint64_t>(as_int()));
      break;
    case FieldType::kDouble: {
      uint64_t bits;
      double d = as_double();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case FieldType::kString: {
      const std::string& s = as_string();
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
  }
}

bool Value::DecodeFrom(const std::string& data, size_t* offset, Value* out) {
  if (*offset >= data.size()) return false;
  FieldType t = static_cast<FieldType>(data[*offset]);
  ++*offset;
  switch (t) {
    case FieldType::kNull:
      *out = Value::Null();
      return true;
    case FieldType::kBool: {
      if (*offset >= data.size()) return false;
      *out = Value::Bool(data[*offset] != 0);
      ++*offset;
      return true;
    }
    case FieldType::kInt64: {
      uint64_t v;
      if (!GetU64(data, offset, &v)) return false;
      *out = Value::Int(static_cast<int64_t>(v));
      return true;
    }
    case FieldType::kDouble: {
      uint64_t bits;
      if (!GetU64(data, offset, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *out = Value::Real(d);
      return true;
    }
    case FieldType::kString: {
      uint32_t len;
      if (!GetU32(data, offset, &len)) return false;
      if (*offset + len > data.size()) return false;
      *out = Value::Str(data.substr(*offset, len));
      *offset += len;
      return true;
    }
  }
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case FieldType::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case FieldType::kBool:
      return as_bool() ? 0x1234567 : 0x7654321;
    case FieldType::kInt64:
      return std::hash<int64_t>{}(as_int());
    case FieldType::kDouble:
      return std::hash<double>{}(as_double());
    case FieldType::kString:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

}  // namespace itag::storage
