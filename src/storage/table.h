#ifndef ITAG_STORAGE_TABLE_H_
#define ITAG_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/row_store.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace itag::storage {

/// Composite key for ordered secondary indexes: (column value, row id).
/// Appending the row id makes entries unique even for non-unique columns and
/// gives deterministic scan order among duplicates.
struct IndexKey {
  Value value;
  RowId row_id;

  bool operator<(const IndexKey& other) const {
    if (value < other.value) return true;
    if (other.value < value) return false;
    return row_id < other.row_id;
  }
};

/// One heap table: schema-validated rows addressed by RowId, with an optional
/// unique hash index and any number of ordered B+-tree secondary indexes.
///
/// The Table itself is storage-only; durability is layered on by Database,
/// which write-ahead-logs every mutation before applying it here.
class Table {
 public:
  /// Creates an empty table over the in-memory row heap.
  Table(std::string name, Schema schema);

  /// Creates a table over a caller-supplied row heap (the paged engine
  /// passes a PagedRowStore rehydrated from its catalog) with the row-id
  /// counter restored to `next_row_id`.
  Table(std::string name, Schema schema, std::unique_ptr<RowStore> store,
        RowId next_row_id);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t row_count() const { return static_cast<size_t>(store_->size()); }

  /// The id the next Insert will assign (persisted by paged checkpoints).
  RowId next_row_id() const { return next_id_; }

  /// Declares a unique index on `column`. Inserts that duplicate an existing
  /// key fail with AlreadyExists. Existing rows are backfilled; declaring
  /// the index fails with AlreadyExists if they contain duplicates.
  Status AddUniqueIndex(const std::string& column);

  /// Declares an ordered (non-unique) secondary index on `column`. May be
  /// declared at any time; existing rows are indexed immediately.
  Status AddOrderedIndex(const std::string& column);

  /// Validates and inserts `row`, returning its new RowId.
  Result<RowId> Insert(const Row& row);

  /// Inserts with a caller-chosen row id (used only by recovery). Fails if
  /// the id is already taken.
  Status InsertWithId(RowId id, const Row& row);

  /// Fetches a row by id.
  Result<Row> Get(RowId id) const;

  /// Replaces the row at `id` with `row` (revalidated; indexes maintained).
  Status Update(RowId id, const Row& row);

  /// Deletes the row at `id`.
  Status Delete(RowId id);

  /// Looks up by unique index; NotFound if no such key or index.
  Result<RowId> LookupUnique(const std::string& column,
                             const Value& key) const;

  /// Collects ids of rows whose `column` equals `key`, via the ordered index
  /// if one exists, else a full scan.
  std::vector<RowId> LookupEqual(const std::string& column,
                                 const Value& key) const;

  /// Collects ids of rows with `lo <= column < hi` via the ordered index
  /// (falls back to a scan when no index exists). Results are in key order.
  std::vector<RowId> LookupRange(const std::string& column, const Value& lo,
                                 const Value& hi) const;

  /// Visits every (id, row); `fn` returns false to stop. Iteration order is
  /// ascending RowId.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Counts rows satisfying `pred`.
  size_t CountWhere(const std::function<bool(const Row&)>& pred) const;

  /// Serializes the full table (schema + rows) into `out` for snapshots.
  void EncodeTo(std::string* out) const;

  /// Restores a table from snapshot bytes; false on malformed input.
  static bool DecodeFrom(const std::string& data, size_t* offset, Table* out);

 private:
  void IndexRow(RowId id, const Row& row);
  void UnindexRow(RowId id, const Row& row);

  std::string name_;
  Schema schema_;
  std::unique_ptr<RowStore> store_;  // id-ordered, so Scan is id-ascending
  RowId next_id_ = 1;

  int unique_col_ = -1;
  std::unordered_map<Value, RowId, ValueHash> unique_index_;

  // column position -> ordered index
  std::map<int, BPlusTree<IndexKey>> ordered_indexes_;
};

}  // namespace itag::storage

#endif  // ITAG_STORAGE_TABLE_H_
