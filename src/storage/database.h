#ifndef ITAG_STORAGE_DATABASE_H_
#define ITAG_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace itag::storage {

/// Durability configuration for a Database.
struct DatabaseOptions {
  /// Directory holding the snapshot and WAL files. Empty means fully
  /// in-memory (no durability) — the mode tests and benchmarks default to.
  std::string directory;

  /// Snapshot file name inside `directory`.
  std::string snapshot_file = "snapshot.db";

  /// WAL file name inside `directory`.
  std::string wal_file = "wal.log";
};

/// The embedded relational engine standing in for the MySQL instance in the
/// paper's architecture (Fig. 2). It is a catalog of named Tables with
/// logical write-ahead logging and snapshot checkpointing:
///
///   * every mutation (create/drop/insert/update/delete) is appended to the
///     WAL before being applied to the in-memory tables;
///   * Checkpoint() serializes all tables to the snapshot file and truncates
///     the WAL;
///   * Open() loads the snapshot (if any) and replays the WAL tail, so a
///     process crash between checkpoints loses nothing that was appended.
///
/// Single-writer by design: the simulator and the iTag managers drive it from
/// one event loop, matching the demo system's single MySQL connection.
class Database {
 public:
  Database() = default;

  /// Opens (and recovers) a database per `options`.
  Status Open(const DatabaseOptions& options);

  /// Creates a table; fails with AlreadyExists on name collision.
  Status CreateTable(const std::string& name, const Schema& schema);

  /// Drops a table and its rows.
  Status DropTable(const std::string& name);

  /// Returns the table or nullptr. The pointer stays valid until the table
  /// is dropped.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Declares indexes (not WAL-logged: index definitions are part of the
  /// caller's schema-registration code path, re-run on every open).
  Status AddUniqueIndex(const std::string& table, const std::string& column);
  Status AddOrderedIndex(const std::string& table, const std::string& column);

  /// Logged mutations. These are the only write paths the managers use.
  Result<RowId> Insert(const std::string& table, const Row& row);
  Status Update(const std::string& table, RowId id, const Row& row);
  Status Delete(const std::string& table, RowId id);

  /// Writes the snapshot and truncates the WAL.
  Status Checkpoint();

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Total rows across all tables (monitoring).
  size_t TotalRows() const;

  bool durable() const { return durable_; }

 private:
  Status LogOp(WalOp op, const std::string& table, RowId row_id,
               std::string payload);
  Status Recover();
  Status LoadSnapshot(const std::string& path);
  Status ApplyWalRecord(const WalRecord& rec);

  DatabaseOptions options_;
  bool durable_ = false;
  WalWriter wal_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

/// Encodes a row for WAL payloads.
std::string EncodeRow(const Row& row);

/// Decodes a row with `arity` columns; false on malformed input.
bool DecodeRow(const std::string& data, size_t arity, Row* out);

}  // namespace itag::storage

#endif  // ITAG_STORAGE_DATABASE_H_
