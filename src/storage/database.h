#ifndef ITAG_STORAGE_DATABASE_H_
#define ITAG_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace itag::storage {

namespace pager {
class PagedEngine;
}  // namespace pager

/// Durability configuration for a Database.
struct DatabaseOptions {
  /// Directory holding the snapshot and WAL files. Empty means fully
  /// in-memory (no durability) — the mode tests and benchmarks default to.
  std::string directory;

  /// Snapshot file name inside `directory`.
  std::string snapshot_file = "snapshot.db";

  /// WAL file name inside `directory`.
  std::string wal_file = "wal.log";

  /// Paged mode: rows live in a fixed-size-page file (storage/pager) instead
  /// of the monolithic snapshot. Checkpoint() flushes dirty pages and a
  /// catalog root rather than serializing every table, and Open() reads only
  /// the page-file meta + catalog — cold start is O(catalog), not O(rows),
  /// and tables may exceed RAM. Ignored when `directory` is empty.
  bool paged = false;

  /// Page file name inside `directory` (paged mode).
  std::string page_file = "pages.db";

  /// Page-cache budget in MiB (paged mode).
  size_t page_cache_mb = 64;

  /// Page size in bytes when creating the page file; an existing file's
  /// recorded size wins.
  size_t page_size = 4096;

  /// Compress page payloads (pagez) on write (paged mode).
  bool page_compression = false;

  /// Keep the WAL across checkpoints instead of truncating it. Replication
  /// primaries need this: a follower resumes by asking for "everything after
  /// LSN N", which only works while the log still holds those frames.
  /// Recovery stays exact either way — the snapshot (v2) and the paged
  /// engine both record their checkpoint LSN, and replay skips frames the
  /// checkpoint already contains. Costs unbounded log growth; see
  /// docs/replication.md.
  bool retain_wal = false;
};

/// What the last Open() had to do to reach the recovered state; tests use
/// this to assert that a clean paged restart does not replay the full WAL.
struct RecoveryStats {
  uint64_t wal_records_scanned = 0;   ///< frames read from the WAL file
  uint64_t wal_records_replayed = 0;  ///< frames actually applied
  uint64_t wal_bytes_scanned = 0;     ///< payload bytes across scanned frames
};

/// The embedded relational engine standing in for the MySQL instance in the
/// paper's architecture (Fig. 2). It is a catalog of named Tables with
/// logical write-ahead logging and snapshot checkpointing:
///
///   * every mutation (create/drop/insert/update/delete) is appended to the
///     WAL before being applied to the in-memory tables;
///   * Checkpoint() serializes all tables to the snapshot file and truncates
///     the WAL;
///   * Open() loads the snapshot (if any) and replays the WAL tail, so a
///     process crash between checkpoints loses nothing that was appended.
///
/// Single-writer by design: the simulator and the iTag managers drive it from
/// one event loop, matching the demo system's single MySQL connection.
class Database {
 public:
  Database();
  ~Database();

  /// Opens (and recovers) a database per `options`.
  Status Open(const DatabaseOptions& options);

  /// Creates a table; fails with AlreadyExists on name collision.
  Status CreateTable(const std::string& name, const Schema& schema);

  /// Drops a table and its rows.
  Status DropTable(const std::string& name);

  /// Returns the table or nullptr. The pointer stays valid until the table
  /// is dropped.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Declares indexes (not WAL-logged: index definitions are part of the
  /// caller's schema-registration code path, re-run on every open).
  Status AddUniqueIndex(const std::string& table, const std::string& column);
  Status AddOrderedIndex(const std::string& table, const std::string& column);

  /// Logged mutations. These are the only write paths the managers use.
  Result<RowId> Insert(const std::string& table, const Row& row);
  Status Update(const std::string& table, RowId id, const Row& row);
  Status Delete(const std::string& table, RowId id);

  /// Opens an atomic WAL batch: until the matching CommitBatch, logged
  /// mutations are applied to the in-memory tables immediately but buffered
  /// into ONE framed WAL record, so recovery replays the whole group or
  /// none of it. Re-entrant (nested Begin/Commit pairs fold into the
  /// outermost batch); pair every Begin with a Commit — prefer BatchScope.
  void BeginBatch();

  /// Closes the innermost batch; at depth zero, appends the buffered group
  /// as one kBatch record (no-op when nothing was logged or not durable).
  Status CommitBatch();

  /// Current batch nesting depth (0 = not batching).
  size_t batch_depth() const { return batch_depth_; }

  /// First WAL-append failure, if any. Once an append fails the database
  /// is sticky-poisoned: every further logged mutation and Checkpoint()
  /// returns this status instead of silently diverging the durable state
  /// from memory (a write acknowledged after a lost append would otherwise
  /// vanish on recovery with no error ever surfaced — the RocksDB
  /// "background error" convention).
  const Status& wal_error() const { return wal_error_; }

  /// Writes the snapshot and truncates the WAL. Fails with
  /// FailedPrecondition while a batch is open (the snapshot would split an
  /// atomic group).
  Status Checkpoint();

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Total rows across all tables (monitoring).
  size_t TotalRows() const;

  bool durable() const { return durable_; }

  /// True when this database runs on the paged engine.
  bool paged() const { return engine_ != nullptr; }

  /// What the last Open() replayed (see RecoveryStats).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// The paged engine underneath, or nullptr in snapshot/in-memory mode
  /// (benchmarks and tests inspect page/cache counters through it).
  pager::PagedEngine* engine() { return engine_.get(); }

  // ------------------------------------------------------------ replication
  /// LSN of the last record appended (or replicated in); 0 when empty.
  /// With `retain_wal` this is the resume cursor a follower subscribes from.
  uint64_t last_lsn() const { return next_lsn_ - 1; }

  /// Highest LSN contained in the last durable checkpoint (snapshot v2 or
  /// paged meta); 0 when never checkpointed or pre-v2.
  uint64_t checkpoint_lsn() const;

  /// Absolute path of the WAL file ("" when in-memory) — what a replication
  /// primary hands to its storage::WalTailer.
  std::string wal_path() const;

  /// Applies one record shipped from a primary. The record keeps its
  /// original LSN: a duplicate (lsn <= last_lsn()) is skipped silently (OK)
  /// so re-delivery after a reconnect can never double-apply, a gap
  /// (lsn > last_lsn() + 1) fails with OutOfRange so the follower knows to
  /// resubscribe from its cursor, and the in-order record is appended to
  /// this database's own WAL verbatim and applied to the tables. AlreadyExists
  /// from replay (a deterministic local init raced the stream's copy of the
  /// same DDL) is tolerated, matching Recover().
  Status ApplyReplicated(const WalRecord& rec);

 private:
  Status LogOp(WalOp op, const std::string& table, RowId row_id,
               std::string payload);
  Status Recover();
  Status RecoverPaged();
  Status LoadSnapshot(const std::string& path);
  Status ApplyWalRecord(const WalRecord& rec);
  /// Creates a Table (and, in paged mode, its engine-side tree+catalog
  /// entry); shared by CreateTable and WAL replay.
  Status MakeTable(const std::string& name, const Schema& schema);

  DatabaseOptions options_;
  bool durable_ = false;
  WalWriter wal_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::unique_ptr<pager::PagedEngine> engine_;  ///< set iff paged mode
  uint64_t next_lsn_ = 1;  ///< LSN the next appended WAL frame gets
  uint64_t snapshot_lsn_ = 0;  ///< checkpoint LSN of the loaded/written snapshot
  RecoveryStats recovery_stats_;
  size_t batch_depth_ = 0;
  std::string batch_buf_;  ///< length-prefixed sub-records of the open batch
  size_t batch_ops_ = 0;   ///< sub-records buffered in the open batch
  Status wal_error_ = Status::OK();  ///< sticky first append failure
};

/// RAII guard for an atomic WAL batch. The destructor commits if Commit()
/// was not called explicitly; a failure there is not lost — it poisons the
/// database (see Database::wal_error), so the next logged mutation or
/// checkpoint surfaces it. Call Commit() where an immediate Status matters.
class BatchScope {
 public:
  explicit BatchScope(Database* db) : db_(db) { db_->BeginBatch(); }
  ~BatchScope() {
    if (!committed_) (void)db_->CommitBatch();
  }
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

  Status Commit() {
    committed_ = true;
    return db_->CommitBatch();
  }

 private:
  Database* db_;
  bool committed_ = false;
};

}  // namespace itag::storage

#endif  // ITAG_STORAGE_DATABASE_H_
