#ifndef ITAG_STORAGE_ROW_STORE_H_
#define ITAG_STORAGE_ROW_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/pager/paged_btree.h"
#include "storage/schema.h"

namespace itag::storage {

/// Row identifier assigned by the table; monotonically increasing, never
/// reused.
using RowId = uint64_t;

/// Encodes a row for WAL payloads and the paged row heap.
std::string EncodeRow(const Row& row);

/// Decodes a row with `arity` columns; false on malformed input.
bool DecodeRow(const std::string& data, size_t arity, Row* out);

/// The primary row heap behind a Table: RowId -> Row, iterable in id order.
/// Two implementations exist — the original in-memory map and a paged one
/// backed by an on-disk B+tree (storage/pager) — so a Table is oblivious to
/// whether its rows live in RAM or in the page file. Secondary indexes stay
/// in-memory in Table either way.
///
/// Methods are const where a reader calls them; the paged implementation
/// mutates its page cache underneath, which is invisible to callers.
class RowStore {
 public:
  virtual ~RowStore() = default;

  /// Fetches the row at `id`; NotFound when absent.
  virtual Result<Row> Get(RowId id) const = 0;

  /// True when `id` is present. IO errors read as false (the paged store
  /// records them; they resurface on the next Get/Put/Erase).
  virtual bool Contains(RowId id) const = 0;

  /// Inserts or replaces the row at `id`.
  virtual Status Put(RowId id, const Row& row) = 0;

  /// Removes the row at `id`; NotFound when absent.
  virtual Status Erase(RowId id) = 0;

  /// Number of rows.
  virtual uint64_t size() const = 0;

  /// Visits every (id, row) in ascending id order; `fn` returns false to
  /// stop early. The store must not be mutated during the scan.
  virtual Status Scan(
      const std::function<bool(RowId, const Row&)>& fn) const = 0;
};

/// The original heap: a std::map of materialized rows.
class MemRowStore : public RowStore {
 public:
  Result<Row> Get(RowId id) const override;
  bool Contains(RowId id) const override;
  Status Put(RowId id, const Row& row) override;
  Status Erase(RowId id) override;
  uint64_t size() const override { return rows_.size(); }
  Status Scan(const std::function<bool(RowId, const Row&)>& fn) const override;

 private:
  std::map<RowId, Row> rows_;
};

/// Rows serialized into an on-disk B+tree; only the pages a query touches
/// are resident (in the shared PageCache), so the table can exceed RAM.
/// The tree handle is owned by the PagedEngine that also owns the pager and
/// cache; `arity` is the table's column count, used to validate decoded rows.
class PagedRowStore : public RowStore {
 public:
  PagedRowStore(pager::PagedBTree* tree, size_t arity, uint64_t row_count)
      : tree_(tree), arity_(arity), count_(row_count) {}

  Result<Row> Get(RowId id) const override;
  bool Contains(RowId id) const override;
  Status Put(RowId id, const Row& row) override;
  Status Erase(RowId id) override;
  uint64_t size() const override { return count_; }
  Status Scan(const std::function<bool(RowId, const Row&)>& fn) const override;

 private:
  pager::PagedBTree* tree_;
  size_t arity_;
  uint64_t count_;
};

}  // namespace itag::storage

#endif  // ITAG_STORAGE_ROW_STORE_H_
