#include <chrono>
#include <thread>
#include <utility>

#include "repl/repl.h"

namespace itag::repl {

Primary::Primary(core::ShardedSystem* system, PrimaryOptions options)
    : system_(system), options_(std::move(options)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  subscribers_ = reg.GetGauge("repl.subscribers");
  batches_sent_ = reg.GetCounter("repl.batches_sent");
  bytes_sent_ = reg.GetCounter("repl.bytes_sent");
  handshake_rejects_ = reg.GetCounter("repl.handshake_rejects");
}

Primary::~Primary() { Stop(); }

net::ReplHooks Primary::Hooks() {
  net::ReplHooks hooks;
  hooks.on_frame = [this](uint64_t conn_id, net::Frame frame,
                          net::ReplHooks::Sender sender) {
    OnFrame(conn_id, std::move(frame), std::move(sender));
  };
  hooks.on_close = [this](uint64_t conn_id) { OnClose(conn_id); };
  return hooks;
}

size_t Primary::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& sub : subs_) {
    if (!sub->done.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void Primary::OnFrame(uint64_t conn_id, net::Frame frame,
                      net::ReplHooks::Sender sender) {
  switch (frame.kind) {
    case net::FrameKind::kReplSubscribe: {
      net::ReplSubscribe msg;
      Status s = net::DecodeReplSubscribe(frame, &msg);
      // The handshake must prove the follower replays the same universe:
      // same DB layout, same shard count, same deterministic seed. A
      // mismatch cannot be papered over — the follower's own init wrote
      // different LSN-1..k records — so it gets a typed error and no
      // stream.
      if (s.ok() && msg.num_dbs != system_->NumReplDbs()) {
        s = Status::FailedPrecondition(
            "subscriber speaks " + std::to_string(msg.num_dbs) +
            " DBs, primary has " + std::to_string(system_->NumReplDbs()));
      }
      if (s.ok() && msg.num_shards != system_->num_shards()) {
        s = Status::FailedPrecondition(
            "subscriber has " + std::to_string(msg.num_shards) +
            " shards, primary has " + std::to_string(system_->num_shards()));
      }
      if (s.ok() && msg.seed != system_->options().shard.seed) {
        s = Status::FailedPrecondition("subscriber seed mismatch");
      }
      if (s.ok() && msg.from_lsns.size() != system_->NumReplDbs()) {
        s = Status::InvalidArgument("from_lsns must cover every DB");
      }
      if (s.ok()) {
        for (const std::string& path : system_->ReplWalPaths()) {
          if (path.empty()) {
            s = Status::FailedPrecondition(
                "primary is not durable; nothing to ship");
            break;
          }
        }
      }
      if (!s.ok()) {
        handshake_rejects_->Inc();
        sender(net::EncodeErrorFrame(frame.correlation, s));
        return;
      }
      auto sub = std::make_shared<Subscriber>();
      sub->conn_id = conn_id;
      sub->sender = std::move(sender);
      sub->from_lsns = std::move(msg.from_lsns);
      sub->acked_lsns.assign(system_->NumReplDbs(), 0);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
        // A resubscribe on the same connection (post-gap) replaces the old
        // streamer; it notices its stop flag within one poll interval.
        for (const auto& old : subs_) {
          if (old->conn_id == conn_id) {
            old->stop.store(true, std::memory_order_release);
          }
        }
        ReapLocked();
        sub->thread = std::thread([this, sub] { StreamTo(sub); });
        subs_.push_back(sub);
        subscribers_->Set(static_cast<int64_t>(subs_.size()));
      }
      return;
    }
    case net::FrameKind::kReplAck: {
      net::ReplAck ack;
      if (!net::DecodeReplAck(frame, &ack).ok()) return;
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& sub : subs_) {
        if (sub->conn_id == conn_id &&
            ack.applied_lsns.size() == sub->acked_lsns.size()) {
          sub->acked_lsns = ack.applied_lsns;
        }
      }
      return;
    }
    default:
      // A primary never receives batches; anything else on a repl kind is
      // a peer bug worth a typed answer.
      sender(net::EncodeErrorFrame(
          frame.correlation,
          Status::InvalidArgument("unexpected replication frame kind")));
      return;
  }
}

void Primary::OnClose(uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sub : subs_) {
    if (sub->conn_id == conn_id) {
      sub->stop.store(true, std::memory_order_release);
    }
  }
  ReapLocked();
  subscribers_->Set(static_cast<int64_t>(subs_.size()));
}

void Primary::ReapLocked() {
  for (auto it = subs_.begin(); it != subs_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

void Primary::StreamTo(const std::shared_ptr<Subscriber>& sub) {
  // Local copies: the tailers and cursors are this streamer's alone, and
  // the sender closure is immutable after subscribe — no shared state with
  // the reactor beyond the stop/done flags.
  net::ReplHooks::Sender sender = sub->sender;
  std::vector<std::string> paths = system_->ReplWalPaths();
  std::vector<storage::WalTailer> tailers;
  tailers.reserve(paths.size());
  for (std::string& path : paths) tailers.emplace_back(std::move(path));
  std::vector<uint64_t> cursors = sub->from_lsns;

  while (!sub->stop.load(std::memory_order_acquire)) {
    bool sent_any = false;
    for (size_t db = 0; db < tailers.size(); ++db) {
      for (size_t n = 0; n < options_.burst_records; ++n) {
        storage::WalRecord rec;
        bool have = false;
        Status s = tailers[db].Next(&rec, &have);
        if (!s.ok()) {
          // History vanished under the tailer (truncation) or the log is
          // corrupt: this stream cannot continue honestly. Tell the
          // follower why and end the streamer; the follower must resync
          // from a fresh copy.
          sender(net::EncodeErrorFrame(0, s));
          sub->done.store(true, std::memory_order_release);
          return;
        }
        if (!have) break;
        if (rec.lsn != 0 && rec.lsn <= cursors[db]) continue;
        net::ReplBatch batch;
        batch.db_index = static_cast<uint32_t>(db);
        batch.head_lsn = tailers[db].head_lsn();
        batch.head_bytes = tailers[db].head_bytes();
        batch.record = storage::EncodeWalRecord(rec);
        bytes_sent_->Inc(batch.record.size());
        batches_sent_->Inc();
        sender(net::EncodeReplBatchFrame(0, batch));
        if (rec.lsn != 0) cursors[db] = rec.lsn;
        sent_any = true;
      }
    }
    if (!sent_any) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
    }
  }
  sub->done.store(true, std::memory_order_release);
}

void Primary::Stop() {
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    subs.swap(subs_);
    subscribers_->Set(0);
  }
  for (const auto& sub : subs) {
    sub->stop.store(true, std::memory_order_release);
  }
  for (const auto& sub : subs) {
    if (sub->thread.joinable()) sub->thread.join();
  }
}

}  // namespace itag::repl
