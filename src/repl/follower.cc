#include <sys/socket.h>

#include <chrono>
#include <filesystem>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "repl/repl.h"

namespace itag::repl {

namespace {
/// Interruptible backoff: sleeps `ms` total in small slices so Stop() is
/// honored within ~5ms instead of a full backoff window.
void SleepUnless(const std::atomic<bool>& stop, int ms) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!stop.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}
}  // namespace

Follower::Follower(core::ShardedSystem* system, FollowerOptions options)
    : system_(system), options_(std::move(options)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reconnects_ = reg.GetCounter("repl.stream_reconnects");
  batches_applied_ = reg.GetCounter("repl.batches_applied");
  dup_skips_ = reg.GetCounter("repl.duplicate_skips");
  gap_resyncs_ = reg.GetCounter("repl.gap_resyncs");
  lag_batches_ = reg.GetGauge("repl.lag_batches");
  lag_bytes_ = reg.GetGauge("repl.lag_bytes");
  applied_gauges_.reserve(system_->NumReplDbs());
  for (size_t i = 0; i < system_->NumReplDbs(); ++i) {
    applied_gauges_.push_back(
        reg.GetGauge("repl.db." + std::to_string(i) + ".applied_lsn"));
  }
}

Follower::~Follower() { Stop(); }

Status Follower::Start() {
  if (started_) return Status::FailedPrecondition("follower already started");
  if (!system_->read_only()) {
    return Status::FailedPrecondition(
        "follower system must be Init()ed with read_only = true");
  }
  started_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Follower::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    // Kick the thread out of a blocking read; the fd stays owned by the
    // Socket in RunOnce, we only shut it down.
    std::lock_guard<std::mutex> lock(sock_mu_);
    if (live_fd_ >= 0) ::shutdown(live_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

std::vector<uint64_t> Follower::applied_lsns() const {
  std::lock_guard<std::mutex> lock(lsns_mu_);
  return published_lsns_;
}

void Follower::Run() {
  bool first = true;
  while (!stop_.load(std::memory_order_acquire)) {
    if (!first) {
      reconnects_->Inc();
      reconnects_count_.fetch_add(1, std::memory_order_relaxed);
      SleepUnless(stop_, options_.reconnect_backoff_ms);
      if (stop_.load(std::memory_order_acquire)) break;
    }
    first = false;
    RunOnce();
  }
}

void Follower::RunOnce() {
  Result<Socket> sock =
      Socket::Connect(options_.primary_host, options_.primary_port);
  if (!sock.ok()) return;
  {
    std::lock_guard<std::mutex> lock(sock_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    live_fd_ = sock->fd();
  }
  (void)sock->SetNoDelay(true);

  const size_t num_dbs = system_->NumReplDbs();
  const size_t num_shards = system_->num_shards();

  // Subscribe from our own durable cursor — after a restart this is
  // whatever our recovered WALs prove we applied, so the primary resends
  // exactly the unseen suffix (anything duplicated is skipped by LSN).
  net::ReplSubscribe sub;
  sub.num_dbs = static_cast<uint32_t>(num_dbs);
  sub.num_shards = static_cast<uint32_t>(num_shards);
  sub.seed = system_->options().shard.seed;
  sub.from_lsns = system_->ReplLsns();
  std::vector<uint64_t> lsns = sub.from_lsns;
  {
    std::lock_guard<std::mutex> lock(lsns_mu_);
    published_lsns_ = lsns;
  }
  for (size_t i = 0; i < num_dbs; ++i) {
    applied_gauges_[i]->Set(static_cast<int64_t>(lsns[i]));
  }
  std::string hello = net::EncodeReplSubscribeFrame(1, sub);
  if (!sock->WriteAll(hello.data(), hello.size()).ok()) {
    std::lock_guard<std::mutex> lock(sock_mu_);
    live_fd_ = -1;
    return;
  }

  // Byte cursor per DB for lag_bytes: the stream is byte-identical to the
  // primary's log, so our own WAL sizes are the exact resume offsets.
  std::vector<uint64_t> applied_bytes(num_dbs, 0);
  {
    std::vector<std::string> paths = system_->ReplWalPaths();
    for (size_t i = 0; i < num_dbs; ++i) {
      std::error_code ec;
      uint64_t size = std::filesystem::file_size(paths[i], ec);
      if (!ec) applied_bytes[i] = size;
    }
  }
  std::vector<uint64_t> head_lsns(num_dbs, 0);
  std::vector<uint64_t> head_bytes(num_dbs, 0);
  std::vector<bool> dirty(num_shards, false);
  bool placement_dirty = false;

  std::string inbuf;
  char buf[65536];
  uint64_t since_ack = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) break;
    Result<size_t> got = sock->ReadSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    inbuf.append(buf, *got);

    size_t parsed = 0;
    size_t burst_applied = 0;
    bool sever = false;
    for (;;) {
      net::Frame frame;
      size_t consumed = 0;
      Status s = net::TryDecodeFrame(std::string_view(inbuf).substr(parsed),
                                     &frame, &consumed);
      if (!s.ok()) {
        sever = true;
        break;
      }
      if (consumed == 0) break;
      parsed += consumed;
      if (frame.kind == net::FrameKind::kError) {
        // Typed refusal (handshake mismatch, truncated primary history):
        // nothing to do on this connection; retry with backoff.
        sever = true;
        break;
      }
      if (frame.kind != net::FrameKind::kReplBatch) continue;
      net::ReplBatch batch;
      if (!net::DecodeReplBatch(frame, &batch).ok() ||
          batch.db_index >= num_dbs) {
        sever = true;
        break;
      }
      storage::WalRecord rec;
      if (!storage::DecodeWalRecord(batch.record, &rec)) {
        sever = true;
        break;
      }
      head_lsns[batch.db_index] = batch.head_lsn;
      head_bytes[batch.db_index] = batch.head_bytes;
      Status applied = system_->ApplyReplicated(batch.db_index, rec);
      if (applied.IsOutOfRange()) {
        // A gap (dropped frame): the stream is no longer contiguous.
        // Resubscribe from our durable cursor rather than guess.
        gap_resyncs_->Inc();
        sever = true;
        break;
      }
      if (!applied.ok()) {
        sever = true;
        break;
      }
      if (rec.lsn > lsns[batch.db_index]) {
        lsns[batch.db_index] = rec.lsn;
        // 8 bytes of [len][crc] framing + the payload, mirroring Wal::Append.
        applied_bytes[batch.db_index] += 8 + batch.record.size();
        batches_applied_->Inc();
        ++burst_applied;
        ++since_ack;
        if (batch.db_index < num_shards) {
          dirty[batch.db_index] = true;
        } else {
          placement_dirty = true;
        }
        if (since_ack >= options_.ack_every_records) {
          std::string ack = net::EncodeReplAckFrame(0, net::ReplAck{lsns});
          (void)sock->WriteAll(ack.data(), ack.size());
          since_ack = 0;
        }
      } else {
        dup_skips_->Inc();
      }
    }
    inbuf.erase(0, parsed);

    // End of burst: re-derive the touched shards' in-memory state, THEN
    // publish the cursors — readers that see an LSN see its state.
    if (burst_applied > 0) {
      Status pub = PublishBurst(burst_applied, &dirty, &placement_dirty, lsns,
                                head_lsns, head_bytes, applied_bytes);
      if (!pub.ok()) break;
      if (since_ack > 0) {
        std::string ack = net::EncodeReplAckFrame(0, net::ReplAck{lsns});
        (void)sock->WriteAll(ack.data(), ack.size());
        since_ack = 0;
      }
    }
    if (sever) break;
  }
  std::lock_guard<std::mutex> lock(sock_mu_);
  live_fd_ = -1;
}

Status Follower::PublishBurst(size_t records, std::vector<bool>* dirty,
                              bool* placement_dirty,
                              const std::vector<uint64_t>& lsns,
                              const std::vector<uint64_t>& head_lsns,
                              const std::vector<uint64_t>& head_bytes,
                              const std::vector<uint64_t>& applied_bytes) {
  obs::Span span("repl.apply");
  span.Annotate("records", static_cast<uint64_t>(records));
  size_t reattached = 0;
  for (size_t i = 0; i < dirty->size(); ++i) {
    if (!(*dirty)[i]) continue;
    ITAG_RETURN_IF_ERROR(system_->ReattachShard(i));
    (*dirty)[i] = false;
    ++reattached;
  }
  if (*placement_dirty) {
    ITAG_RETURN_IF_ERROR(system_->ReloadPlacement());
    *placement_dirty = false;
  }
  span.Annotate("shards", static_cast<uint64_t>(reattached));

  {
    std::lock_guard<std::mutex> lock(lsns_mu_);
    published_lsns_ = lsns;
  }
  int64_t lag_b = 0;
  int64_t lag_y = 0;
  for (size_t i = 0; i < lsns.size(); ++i) {
    applied_gauges_[i]->Set(static_cast<int64_t>(lsns[i]));
    if (head_lsns[i] > lsns[i]) {
      lag_b += static_cast<int64_t>(head_lsns[i] - lsns[i]);
    }
    if (head_bytes[i] > applied_bytes[i]) {
      lag_y += static_cast<int64_t>(head_bytes[i] - applied_bytes[i]);
    }
  }
  lag_batches_->Set(lag_b);
  lag_bytes_->Set(lag_y);
  return Status::OK();
}

}  // namespace itag::repl
