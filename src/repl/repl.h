#ifndef ITAG_REPL_REPL_H_
#define ITAG_REPL_REPL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "itag/sharded_system.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "storage/wal.h"

namespace itag::repl {

// WAL-shipping replication (docs/replication.md). The primary tails its
// committed WAL files and streams each record as a kReplBatch frame; a
// follower applies them into its own ShardedSystem (WAL-first, original
// LSNs), re-derives in-memory state per touched shard, and serves reads.
// LSNs make the stream idempotent: duplicates are skipped, gaps trigger a
// resubscribe, so any cut/replayed prefix of the stream converges.

// --------------------------------------------------------------- primary

struct PrimaryOptions {
  /// How often an idle streamer re-polls the WAL files for new frames.
  int poll_interval_ms = 2;
  /// Records drained from one DB before the streamer rotates to the next,
  /// so one hot shard cannot starve the placement DB of the same stream.
  size_t burst_records = 256;
};

/// The send side: owns one streamer thread per subscribed follower, each
/// tailing every WAL of `system` (shards + placement) from the follower's
/// resume cursors. Installed into a net::Server via Hooks(); the server
/// routes kReplSubscribe/kReplAck frames here and reports connection
/// closes so dead subscribers are reaped.
///
/// The wrapped system must be durable and opened with
/// `shard.db.retain_wal = true` — checkpoints on a truncating primary
/// would cut history out from under the tailers (subscribers then get a
/// typed error and must resync from a fresh copy).
class Primary {
 public:
  explicit Primary(core::ShardedSystem* system, PrimaryOptions options = {});
  ~Primary();

  Primary(const Primary&) = delete;
  Primary& operator=(const Primary&) = delete;

  /// The hook pair to install on the serving net::Server before Start().
  net::ReplHooks Hooks();

  /// Stops and joins every streamer thread. Idempotent; the destructor
  /// calls it.
  void Stop();

  /// Live subscriber count (streamers not yet reaped are excluded).
  size_t subscriber_count() const;

 private:
  struct Subscriber {
    uint64_t conn_id = 0;
    net::ReplHooks::Sender sender;
    std::vector<uint64_t> from_lsns;
    std::thread thread;
    std::atomic<bool> stop{false};
    std::atomic<bool> done{false};
    /// Last ReplAck cursors (advisory; mu-guarded).
    std::vector<uint64_t> acked_lsns;
  };

  void OnFrame(uint64_t conn_id, net::Frame frame,
               net::ReplHooks::Sender sender);
  void OnClose(uint64_t conn_id);
  /// The per-subscriber streamer body: tail every WAL, ship records with
  /// lsn > the subscriber's cursor, round-robin across DBs.
  void StreamTo(const std::shared_ptr<Subscriber>& sub);
  /// Joins and erases subscribers whose streamer has exited. mu_ held.
  void ReapLocked();

  core::ShardedSystem* system_;
  PrimaryOptions options_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Subscriber>> subs_;
  bool stopping_ = false;

  obs::Gauge* subscribers_;      ///< repl.subscribers
  obs::Counter* batches_sent_;   ///< repl.batches_sent
  obs::Counter* bytes_sent_;     ///< repl.bytes_sent (payload bytes)
  obs::Counter* handshake_rejects_;  ///< repl.handshake_rejects
};

// -------------------------------------------------------------- follower

struct FollowerOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Delay before a reconnect attempt after a failed connect, a severed
  /// stream, or a gap-triggered resubscribe.
  int reconnect_backoff_ms = 50;
  /// A ReplAck is sent after every burst that applied at least one record,
  /// and at most once per this many applied records within a burst.
  size_t ack_every_records = 512;
};

/// The receive side: one thread that connects to the primary, subscribes
/// from its own durable LSNs, applies shipped records into `system`
/// (which must have been Init()ed with `read_only = true` on a durable
/// directory), re-derives the in-memory state of every shard a burst
/// touched, and only then publishes the new applied LSNs — so a reader
/// that observes an LSN also observes the state it implies.
///
/// Resilient by construction: reconnects with backoff on any stream
/// failure, resubscribes from its own cursor after a gap, dedupes
/// duplicates by LSN (storage::Database::ApplyReplicated), and never
/// double-applies a record across restarts (the cursor is the follower's
/// own WAL, recovered like any other database).
class Follower {
 public:
  Follower(core::ShardedSystem* system, FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Spawns the streaming thread. FailedPrecondition when already started.
  Status Start();

  /// Severs the stream and joins the thread. Idempotent; call before
  /// ShardedSystem::Promote().
  void Stop();

  /// The published per-DB applied LSNs (stream-index order, placement
  /// last). Updated only after the matching Reattach, so state queried at
  /// these LSNs is already visible.
  std::vector<uint64_t> applied_lsns() const;

  /// Stream reconnect attempts so far (mirror of repl.stream_reconnects).
  uint64_t reconnects() const {
    return reconnects_count_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  /// One connect → subscribe → apply-until-severed cycle. Returns when the
  /// stream breaks (connect failure, EOF, gap, decode error).
  void RunOnce();
  /// Applies the burst-local dirty set (Reattach touched shards, reload
  /// placement) under a repl.apply span, then publishes cursors + lag
  /// gauges. A Reattach error ends the stream cycle.
  Status PublishBurst(size_t records, std::vector<bool>* dirty,
                      bool* placement_dirty,
                      const std::vector<uint64_t>& lsns,
                      const std::vector<uint64_t>& head_lsns,
                      const std::vector<uint64_t>& head_bytes,
                      const std::vector<uint64_t>& applied_bytes);

  core::ShardedSystem* system_;
  FollowerOptions options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  /// Poked by Stop() to interrupt a blocking read (shutdown on the fd).
  std::mutex sock_mu_;
  int live_fd_ = -1;

  mutable std::mutex lsns_mu_;
  std::vector<uint64_t> published_lsns_;

  std::atomic<uint64_t> reconnects_count_{0};

  obs::Counter* reconnects_;      ///< repl.stream_reconnects
  obs::Counter* batches_applied_; ///< repl.batches_applied
  obs::Counter* dup_skips_;       ///< repl.duplicate_skips
  obs::Counter* gap_resyncs_;     ///< repl.gap_resyncs
  obs::Gauge* lag_batches_;       ///< repl.lag_batches
  obs::Gauge* lag_bytes_;         ///< repl.lag_bytes
  std::vector<obs::Gauge*> applied_gauges_;  ///< repl.db.<i>.applied_lsn
};

}  // namespace itag::repl

#endif  // ITAG_REPL_REPL_H_
