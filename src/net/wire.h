#ifndef ITAG_NET_WIRE_H_
#define ITAG_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/requests.h"
#include "common/status.h"

namespace itag::net {

// ---------------------------------------------------------------- framing
//
// Every message on an iTag connection is one length-prefixed frame:
//
//   offset  size  field
//        0     4  magic        0x67615469 ("iTag" as little-endian bytes)
//        4     4  version      api::kApiVersion of the sender
//        8     1  kind         0 request / 1 response / 2 error reply
//        9     1  reserved     must be 0
//       10     2  type         AnyRequest/AnyResponse variant index
//       12     8  correlation  echoed verbatim on the reply
//       20     4  payload_size bytes following the header
//       24     4  crc          CRC-32 over header[0..24) + payload
//       28     …  payload      body, encoded per docs/wire-protocol.md
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern, so responses round-trip bit-exactly. The CRC (the WAL's
// common/crc32.h) covers the header *and* payload: a flipped bit anywhere
// is Corruption, not a silently wrong reply.

inline constexpr uint32_t kMagic = 0x67615469;  // "iTag"
inline constexpr size_t kHeaderSize = 28;
/// Default cap on payload_size; a header announcing more is malformed
/// (protects the server from one rogue frame allocating gigabytes).
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameKind : uint8_t {
  kRequest = 0,
  kResponse = 1,
  /// A typed Status instead of a response: version mismatch
  /// (FailedPrecondition), overload (ResourceExhausted), malformed payload
  /// (InvalidArgument), unknown type tag (Unimplemented).
  kError = 2,
  /// Replication stream (v5). A follower opens an ordinary connection and
  /// sends one kReplSubscribe; the primary answers with a continuous flow of
  /// kReplBatch frames (one WAL record each) and the follower reports
  /// progress with periodic kReplAck frames. `type` is 0 for all three; the
  /// kind alone routes them. See docs/replication.md.
  kReplSubscribe = 3,
  kReplBatch = 4,
  kReplAck = 5,
};

/// One decoded frame. For kRequest/kResponse `type` is the variant index;
/// for kError the payload is an encoded Status and `type` echoes the
/// request's type when known.
struct Frame {
  FrameKind kind = FrameKind::kRequest;
  uint32_t version = 0;
  uint16_t type = 0;
  uint64_t correlation = 0;
  std::string payload;
};

// ------------------------------------------------------------- primitives

/// Append-only little-endian writer the serializers build payloads with.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u32 byte count + raw bytes (no terminator; embedded NULs survive).
  void Str(std::string_view s);
  void Raw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over an encoded payload. Every getter returns
/// false (and poisons the reader) once the input is exhausted; decoders
/// check the final AtEnd() so trailing garbage is rejected too.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  bool Str(std::string* v);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ----------------------------------------------------------------- Status

/// Statuses travel code **and** message, so a client sees exactly the
/// per-item diagnostics an in-process caller would (error fidelity).
void EncodeStatus(WireWriter& w, const Status& status);
bool DecodeStatus(WireReader& r, Status* out);

// ----------------------------------------------------------------- frames

/// Encodes a whole request frame. `version` defaults to the binary's own
/// api::kApiVersion; tests (and future compatibility shims) may stamp a
/// different one to exercise the server's version negotiation.
std::string EncodeRequestFrame(uint64_t correlation,
                               const api::AnyRequest& request,
                               uint32_t version = api::kApiVersion);
std::string EncodeResponseFrame(uint64_t correlation,
                                const api::AnyResponse& response);
/// Encodes an error-reply frame carrying `error` (must not be OK).
/// `type` should echo the offending request's type tag when known.
std::string EncodeErrorFrame(uint64_t correlation, const Status& error,
                             uint16_t type = 0);

/// Extracts one frame from the front of `buf`. Returns OK with
/// `*consumed > 0` when a full valid frame was parsed, OK with
/// `*consumed == 0` when more bytes are needed, and an error when the
/// stream is unrecoverable (bad magic → Corruption, oversized
/// payload_size → InvalidArgument, CRC mismatch → Corruption).
Status TryDecodeFrame(std::string_view buf, Frame* out, size_t* consumed,
                      size_t max_frame_bytes = kDefaultMaxFrameBytes);

// --------------------------------------------------------------- payloads

/// The frame type tag of a request/response: its variant index.
uint16_t TypeTagOf(const api::AnyRequest& request);
uint16_t TypeTagOf(const api::AnyResponse& response);

std::string EncodeRequestPayload(const api::AnyRequest& request);
std::string EncodeResponsePayload(const api::AnyResponse& response);

/// Rebuilds the request of variant index `type` from `payload`. Unknown
/// `type` → Unimplemented; a payload that does not parse (or leaves
/// trailing bytes) → InvalidArgument.
Status DecodeRequestPayload(uint16_t type, std::string_view payload,
                            api::AnyRequest* out);
Status DecodeResponsePayload(uint16_t type, std::string_view payload,
                             api::AnyResponse* out);

// ------------------------------------------------------------- replication
//
// The v5 stream messages (kinds 3–5). They ride the same framing (magic,
// version, CRC) as requests, so the fuzz harness and the frame decoder
// treat them uniformly; only the payload schema differs.

/// Follower → primary: start (or resume) streaming. The config triple must
/// match the primary's exactly — a follower replaying the same deterministic
/// init against a different shard count or seed would diverge silently, so
/// the primary answers a mismatch with a kError frame and closes.
struct ReplSubscribe {
  uint32_t num_dbs = 0;    ///< shard DBs + 1 placement DB; must match
  uint32_t num_shards = 0; ///< primary's shard count; must match
  uint64_t seed = 0;       ///< primary's base seed; must match
  /// Resume cursors, one per DB in index order (placement last): the highest
  /// LSN the follower has durably applied; the primary streams strictly
  /// after these.
  std::vector<uint64_t> from_lsns;
};

/// Primary → follower: one committed WAL record of one DB, plus the
/// primary's log head at send time so the follower can compute lag without
/// a round-trip.
struct ReplBatch {
  uint32_t db_index = 0;   ///< which DB the record belongs to
  uint64_t head_lsn = 0;   ///< primary's highest LSN in this DB's log
  uint64_t head_bytes = 0; ///< primary's log size in bytes (for lag_bytes)
  std::string record;      ///< storage::EncodeWalRecord payload (has its LSN)
};

/// Follower → primary: durable progress, one LSN per DB in index order.
/// Advisory in this version (the primary logs it); carried on the wire so
/// a future primary can gate WAL truncation on subscriber progress.
struct ReplAck {
  std::vector<uint64_t> applied_lsns;
};

std::string EncodeReplSubscribeFrame(uint64_t correlation,
                                     const ReplSubscribe& msg,
                                     uint32_t version = api::kApiVersion);
std::string EncodeReplBatchFrame(uint64_t correlation, const ReplBatch& msg);
std::string EncodeReplAckFrame(uint64_t correlation, const ReplAck& msg);

/// Parse the payload of a frame whose kind already matched. InvalidArgument
/// on a malformed (or trailing-bytes) payload, like the request decoders.
Status DecodeReplSubscribe(const Frame& frame, ReplSubscribe* out);
Status DecodeReplBatch(const Frame& frame, ReplBatch* out);
Status DecodeReplAck(const Frame& frame, ReplAck* out);

}  // namespace itag::net

#endif  // ITAG_NET_WIRE_H_
