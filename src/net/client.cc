#include "net/client.h"

#include <utility>
#include <variant>

namespace itag::net {

Client::Client(ClientOptions options) : options_(options) {}

Status Client::Connect(const std::string& host, uint16_t port) {
  ITAG_ASSIGN_OR_RETURN(sock_, Socket::Connect(host, port));
  ITAG_RETURN_IF_ERROR(sock_.SetNoDelay(true));
  inbuf_.clear();
  pending_.clear();
  ready_.clear();
  return Status::OK();
}

Result<uint64_t> Client::DispatchAsync(const api::AnyRequest& request) {
  if (!sock_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  uint64_t correlation = next_correlation_++;
  std::string frame = EncodeRequestFrame(correlation, request, wire_version_);
  ITAG_RETURN_IF_ERROR(sock_.WriteAll(frame.data(), frame.size()));
  pending_.insert(correlation);
  return correlation;
}

Result<Frame> Client::ReadFrame() {
  char buf[16384];
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    ITAG_RETURN_IF_ERROR(TryDecodeFrame(inbuf_, &frame, &consumed,
                                        options_.max_frame_bytes));
    if (consumed > 0) {
      inbuf_.erase(0, consumed);
      return frame;
    }
    ITAG_ASSIGN_OR_RETURN(size_t got, sock_.ReadSome(buf, sizeof(buf)));
    inbuf_.append(buf, got);
  }
}

Result<api::AnyResponse> Client::InterpretFrame(const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kError: {
      // A typed refusal from the server; the carried Status *is* the
      // result. Version is deliberately not checked here — the mismatch
      // reply of a newer/older server must still be readable.
      WireReader r(frame.payload);
      Status error;
      if (!DecodeStatus(r, &error) || !r.AtEnd()) {
        return Status::Corruption("malformed error reply");
      }
      if (error.ok()) {
        return Status::Internal("server sent an OK error reply");
      }
      return error;
    }
    case FrameKind::kResponse: {
      if (!api::IsCompatibleApiVersion(frame.version)) {
        return Status::FailedPrecondition(
            "response frame speaks api v" + std::to_string(frame.version) +
            ", client speaks v" + std::to_string(api::kApiVersion));
      }
      api::AnyResponse response;
      ITAG_RETURN_IF_ERROR(
          DecodeResponsePayload(frame.type, frame.payload, &response));
      return response;
    }
    case FrameKind::kRequest:
    case FrameKind::kReplSubscribe:
    case FrameKind::kReplBatch:
    case FrameKind::kReplAck:
      break;
  }
  return Status::Corruption("server sent a non-response frame");
}

Result<api::AnyResponse> Client::Await(uint64_t correlation) {
  auto ready = ready_.find(correlation);
  if (ready != ready_.end()) {
    Result<api::AnyResponse> result = std::move(ready->second);
    ready_.erase(ready);
    return result;
  }
  if (pending_.find(correlation) == pending_.end()) {
    return Status::InvalidArgument("unknown correlation id " +
                                   std::to_string(correlation));
  }
  for (;;) {
    ITAG_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    Result<api::AnyResponse> result = InterpretFrame(frame);
    if (frame.correlation == correlation) {
      pending_.erase(correlation);
      return result;
    }
    // A pipelined sibling overtook us: park it for its own Await().
    if (pending_.erase(frame.correlation) > 0) {
      ready_.emplace(frame.correlation, std::move(result));
    }
    // Unsolicited correlation ids are dropped (a server bug, but not one
    // worth poisoning the stream over).
  }
}

Result<api::AnyResponse> Client::Dispatch(const api::AnyRequest& request) {
  ITAG_ASSIGN_OR_RETURN(uint64_t correlation, DispatchAsync(request));
  return Await(correlation);
}

template <typename Resp>
Result<Resp> Client::Call(const api::AnyRequest& request) {
  Result<api::AnyResponse> any = Dispatch(request);
  if (!any.ok()) return any.status();
  Resp* typed = std::get_if<Resp>(&any.value());
  if (typed == nullptr) {
    return Status::Internal("server response type does not match request");
  }
  return std::move(*typed);
}

Result<api::RegisterProviderResponse> Client::RegisterProvider(
    const api::RegisterProviderRequest& req) {
  return Call<api::RegisterProviderResponse>(req);
}
Result<api::RegisterTaggerResponse> Client::RegisterTagger(
    const api::RegisterTaggerRequest& req) {
  return Call<api::RegisterTaggerResponse>(req);
}
Result<api::CreateProjectResponse> Client::CreateProject(
    const api::CreateProjectRequest& req) {
  return Call<api::CreateProjectResponse>(req);
}
Result<api::BatchUploadResourcesResponse> Client::BatchUploadResources(
    const api::BatchUploadResourcesRequest& req) {
  return Call<api::BatchUploadResourcesResponse>(req);
}
Result<api::BatchControlResponse> Client::BatchControl(
    const api::BatchControlRequest& req) {
  return Call<api::BatchControlResponse>(req);
}
Result<api::ProjectQueryResponse> Client::ProjectQuery(
    const api::ProjectQueryRequest& req) {
  return Call<api::ProjectQueryResponse>(req);
}
Result<api::BatchAcceptTasksResponse> Client::BatchAcceptTasks(
    const api::BatchAcceptTasksRequest& req) {
  return Call<api::BatchAcceptTasksResponse>(req);
}
Result<api::BatchSubmitTagsResponse> Client::BatchSubmitTags(
    const api::BatchSubmitTagsRequest& req) {
  return Call<api::BatchSubmitTagsResponse>(req);
}
Result<api::BatchDecideResponse> Client::BatchDecide(
    const api::BatchDecideRequest& req) {
  return Call<api::BatchDecideResponse>(req);
}
Result<api::StepResponse> Client::Step(const api::StepRequest& req) {
  return Call<api::StepResponse>(req);
}
Result<api::CheckpointResponse> Client::Checkpoint(
    const api::CheckpointRequest& req) {
  return Call<api::CheckpointResponse>(req);
}
Result<api::MetricsQueryResponse> Client::Metrics(
    const api::MetricsQueryRequest& req) {
  return Call<api::MetricsQueryResponse>(req);
}
Result<api::TraceQueryResponse> Client::Traces(
    const api::TraceQueryRequest& req) {
  return Call<api::TraceQueryResponse>(req);
}

Result<api::PromoteResponse> Client::Promote(const api::PromoteRequest& req) {
  return Call<api::PromoteResponse>(req);
}

}  // namespace itag::net
