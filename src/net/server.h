#ifndef ITAG_NET_SERVER_H_
#define ITAG_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/service.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/wire.h"
#include "obs/trace.h"

namespace itag::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// IO reactor threads. Each reactor owns an epoll loop, a disjoint set of
  /// connections (accepted round-robin), and the write side of those
  /// connections; 0 picks hardware_concurrency (at least 1). One reactor
  /// reproduces the original single-IO-thread server exactly.
  size_t reactors = 1;
  /// Dispatch worker threads; 0 picks hardware_concurrency (at least 1).
  size_t workers = 0;
  /// Per-connection cap on requests dispatched but not yet answered. A
  /// frame arriving above the cap is answered immediately with a typed
  /// ResourceExhausted error reply — backpressure the client can see and
  /// retry on, instead of unbounded queueing.
  size_t max_in_flight = 256;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cap on how long queued response bytes may wait for the peer to drain
  /// its receive buffer. Workers never block on writes (they append to the
  /// connection's output queue and the owning reactor flushes it); when a
  /// flush stalls on a full socket buffer for longer than this, the
  /// connection is marked dead and its remaining responses are dropped.
  int write_timeout_ms = 10000;
  /// Cap on bytes buffered for one connection's unread responses. A peer
  /// that pipelines hard while never reading is disconnected at this bound
  /// instead of growing the queue until write_timeout_ms fires.
  size_t max_pending_write_bytes = 64u << 20;
  /// Requests grouped into one dispatch task (and one merged backend batch
  /// for BatchSubmitTags) never exceed this, so a deep burst still spreads
  /// across workers.
  size_t max_dispatch_batch = 64;
  /// Kernel accept-queue depth; connection storms (the 10k soak) need this
  /// well above the 128 default.
  int listen_backlog = 1024;
  /// Test seam: runs on the worker thread right before Service::Dispatch.
  /// Lets tests hold workers busy deterministically (e.g. to force the
  /// overload path); leave unset in production.
  std::function<void(const api::AnyRequest&)> before_dispatch;
};

/// Replication seam: when installed, frames carrying a replication kind
/// (kReplSubscribe / kReplBatch / kReplAck) are routed to `on_frame` on
/// the owning reactor thread instead of the request path, together with a
/// Sender that queues already-encoded frames back onto that connection
/// (callable from any thread; it never blocks on the peer and drops bytes
/// once the connection dies). `on_close` fires on the reactor thread when
/// the connection goes away — the last chance to forget its Sender.
/// `conn_id` is unique per accepted connection for the server's lifetime
/// (never recycled, unlike fds). Without hooks, replication frames get a
/// typed FailedPrecondition error reply. Install before Start().
struct ReplHooks {
  using Sender = std::function<void(std::string)>;
  std::function<void(uint64_t conn_id, Frame frame, Sender sender)> on_frame;
  std::function<void(uint64_t conn_id)> on_close;
};

/// Monotonic counters, readable while the server runs. Each one is
/// mirrored into the process metrics registry under `net.*` (see
/// docs/observability.md), so MetricsQuery sees the same numbers.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_received = 0;
  uint64_t responses_sent = 0;
  uint64_t errors_sent = 0;       ///< error replies (subset counted below)
  uint64_t overload_rejections = 0;
  uint64_t version_rejections = 0;
  /// Connections the server closed defensively: unparseable framing (bad
  /// magic/kind/CRC, oversized payload) or an error-reply backlog the peer
  /// refuses to drain.
  uint64_t protocol_errors = 0;
  uint64_t bytes_received = 0;  ///< raw socket bytes in (incl. framing)
  uint64_t bytes_sent = 0;      ///< raw socket bytes out (incl. framing)
};

/// Multi-client TCP front over an api::Service.
///
/// N reactor threads each run an epoll loop over a disjoint subset of the
/// connections (reactor 0 accepts and hands new sockets off round-robin).
/// A reactor decodes frames, groups the requests of one event burst by
/// destination shard (peeking the project id out of the encoded payload),
/// and submits each group as ONE worker-pool task — so under load a single
/// pool handoff, and for BatchSubmitTags a single merged backend batch,
/// amortizes over many requests, while an idle connection's lone request
/// still dispatches immediately (the batching window is the event burst:
/// it adapts to load and adds no timer latency). Responses are appended to
/// a per-connection output queue and flushed by the owning reactor with
/// one gathering writev per syscall — workers never block on a slow peer.
///
/// The correlation id ties replies to requests, so clients may pipeline
/// freely; replies can overtake each other. The wrapped Service must be
/// thread-safe whenever `workers > 1`, `reactors > 1`, or more than one
/// client connects — i.e. back it with a core::ShardedSystem (see
/// api/service.h). Protocol rules, the error taxonomy, and the
/// backpressure contract are specified in docs/wire-protocol.md.
class Server {
 public:
  /// Serves `service` (borrowed; must outlive the server).
  explicit Server(api::Service* service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, then spawns the reactor threads and worker pool. Fails with
  /// IOError when the address cannot be bound, FailedPrecondition when
  /// already started.
  Status Start();

  /// Stops accepting, joins the reactors, drains in-flight dispatches, and
  /// makes a final bounded attempt to flush queued responses. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Reactor threads actually running (valid after Start()).
  size_t reactor_count() const { return reactors_.size(); }

  /// Installs the replication seam (see ReplHooks). Call before Start().
  void SetReplHooks(ReplHooks hooks) { repl_hooks_ = std::move(hooks); }

  ServerStats stats() const;

 private:
  struct Reactor;

  /// Per-connection state. The owning reactor runs inbuf/parsing and the
  /// flush; workers append responses under write_mu. Kept alive by
  /// shared_ptr until the last in-flight worker and queue entry are done.
  struct Conn {
    explicit Conn(Socket s) : sock(std::move(s)) {}
    Socket sock;
    uint64_t id = 0;  ///< process-unique, never recycled (fds are)
    Reactor* owner = nullptr;
    std::string inbuf;  ///< owning reactor only

    std::mutex write_mu;
    /// Encoded response frames awaiting flush (guarded by write_mu).
    /// out_head is how much of outq.front() already went out;
    /// out_bytes the queued total; flush_queued whether the conn is
    /// already on its owner's flush list.
    std::deque<std::string> outq;
    size_t out_head = 0;
    size_t out_bytes = 0;
    bool flush_queued = false;

    /// Owning reactor only: EPOLLOUT armed, and the stalled-write deadline.
    bool want_epollout = false;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};

    std::atomic<size_t> in_flight{0};
    std::atomic<bool> dead{false};
  };

  /// One (connection, decoded frame) unit of dispatch work.
  ///
  /// Carries the request's trace context across the reactor→worker hop.
  /// The root span lives behind a shared_ptr only because ThreadPool
  /// tasks must stay copyable; exactly one Work ever owns it, and the
  /// dispatch path resets it (ending the span) after the response is
  /// queued.
  struct Work {
    std::shared_ptr<Conn> conn;
    Frame frame;
    obs::TraceContext trace;
    std::shared_ptr<obs::Span> root;
  };

  /// The dispatch groups of one event burst: requests routable to a single
  /// shard keyed by that shard, mergeable BatchSubmitTags requests
  /// together, everything else dispatched as it arrives.
  struct DispatchGroups {
    std::unordered_map<size_t, std::vector<Work>> by_shard;
    std::vector<Work> submits;
  };

  void ReactorLoop(Reactor& r);
  void AcceptBurst(Reactor& r);
  void RegisterConn(Reactor& r, Socket sock);
  void DrainInbox(Reactor& r);
  void HandleReadable(Reactor& r, const std::shared_ptr<Conn>& conn,
                      DispatchGroups& groups);
  void HandleFrame(Reactor& r, const std::shared_ptr<Conn>& conn,
                   Frame frame, DispatchGroups& groups);
  /// Submits every non-empty group of the burst to the pool, one task per
  /// group (chunked at max_dispatch_batch).
  void FlushDispatchGroups(DispatchGroups& groups);
  /// Decode + before_dispatch + Dispatch + queue-response for one unit.
  void DispatchOne(Work& work);
  /// The merged path: N BatchSubmitTags requests through one backend batch.
  void DispatchMergedSubmits(std::vector<Work>& group);
  /// Encodes and queues `response` (or the oversize refusal) for `work`.
  void FinishDispatch(const Work& work, const api::AnyResponse& response);
  /// Annotates the root span with the connection's queued write bytes and
  /// ends it (no-op when the request is untraced).
  void CloseRootSpan(Work& work);
  void CloseConn(Reactor& r, int fd);
  /// Flushes the connection's output queue with gathering writes; arms
  /// EPOLLOUT + the write deadline when the socket stops accepting bytes.
  void FlushConn(Reactor& r, const std::shared_ptr<Conn>& conn);
  /// Kills connections whose flush has been stalled past write_timeout_ms.
  void ExpireWriteDeadlines(Reactor& r, std::chrono::steady_clock::time_point now);
  /// epoll_wait timeout honoring the earliest write deadline (-1 = none).
  int NextTimeoutMs(Reactor& r) const;
  /// Wakes a reactor out of epoll_wait.
  void WakeReactor(Reactor& r);
  /// Marks `conn` dead and schedules an owner-reactor close. Any thread.
  void AbandonConn(const std::shared_ptr<Conn>& conn);
  /// Appends an encoded frame to the connection's output queue and
  /// notifies the owning reactor. Drops the bytes once the conn is dead;
  /// disconnects when the queue cap is exceeded. Any thread; never blocks
  /// on the peer.
  void QueueWrite(const std::shared_ptr<Conn>& conn, std::string bytes);
  /// Queues a typed error reply directly (error frames are small and
  /// encode in microseconds — no pool hop). A peer that floods frames
  /// while refusing to drain its error replies is disconnected once
  /// kErrorBacklogBytes of refusals pile up.
  void SendError(const std::shared_ptr<Conn>& conn, uint64_t correlation,
                 const Status& error, uint16_t type);
  /// Destination-shard hint peeked from an encoded request payload, or
  /// SIZE_MAX when the request has no single-shard routing.
  size_t ShardHintOf(const Frame& frame) const;

  api::Service* service_;
  ServerOptions options_;
  ReplHooks repl_hooks_;
  std::atomic<uint64_t> next_conn_id_{1};
  /// Shard count of the backend (1 for a single-system backend); the
  /// modulus of the global-id shard routing mirrored by ShardHintOf.
  size_t num_shards_ = 1;

  Socket listener_;
  uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  /// Round-robin accept cursor (touched only by reactor 0).
  size_t next_reactor_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> errors_sent_{0};
  std::atomic<uint64_t> overload_rejections_{0};
  std::atomic<uint64_t> version_rejections_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> bytes_sent_{0};

  /// Registry mirrors (net.* metrics), cached at construction; counters
  /// aggregate across all Server instances in the process.
  struct Metrics;
  const Metrics* metrics_;
};

}  // namespace itag::net

#endif  // ITAG_NET_SERVER_H_
