#ifndef ITAG_NET_SERVER_H_
#define ITAG_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/service.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/wire.h"

namespace itag::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// Dispatch worker threads; 0 picks hardware_concurrency (at least 1).
  size_t workers = 0;
  /// Per-connection cap on requests dispatched but not yet answered. A
  /// frame arriving above the cap is answered immediately with a typed
  /// ResourceExhausted error reply — backpressure the client can see and
  /// retry on, instead of unbounded queueing.
  size_t max_in_flight = 256;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cap on how long one response write may wait for the peer to drain its
  /// receive buffer. A client that stops reading while keeping requests in
  /// flight would otherwise park dispatch workers forever inside
  /// WriteAll's poll; on expiry the connection is marked dead and its
  /// remaining responses are dropped.
  int write_timeout_ms = 10000;
  /// Test seam: runs on the worker thread right before Service::Dispatch.
  /// Lets tests hold workers busy deterministically (e.g. to force the
  /// overload path); leave unset in production.
  std::function<void(const api::AnyRequest&)> before_dispatch;
};

/// Monotonic counters, readable while the server runs. Each one is
/// mirrored into the process metrics registry under `net.*` (see
/// docs/observability.md), so MetricsQuery sees the same numbers.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_received = 0;
  uint64_t responses_sent = 0;
  uint64_t errors_sent = 0;       ///< error replies (subset counted below)
  uint64_t overload_rejections = 0;
  uint64_t version_rejections = 0;
  /// Connections the server closed defensively: unparseable framing (bad
  /// magic/kind/CRC, oversized payload) or flooding past the error-reply
  /// slack above max_in_flight.
  uint64_t protocol_errors = 0;
  uint64_t bytes_received = 0;  ///< raw socket bytes in (incl. framing)
  uint64_t bytes_sent = 0;      ///< raw socket bytes out (incl. framing)
};

/// Multi-client TCP front over an api::Service.
///
/// One epoll IO thread accepts connections and decodes frames; each decoded
/// request is dispatched on a ThreadPool and its response frame is written
/// back by the worker that finished it — out of request order when a later
/// request completes first. The correlation id ties replies to requests, so
/// clients may pipeline freely.
///
/// The wrapped Service must be thread-safe whenever `workers > 1` or more
/// than one client connects — i.e. back it with a core::ShardedSystem
/// (see api/service.h). Protocol rules, the error taxonomy, and the
/// backpressure contract are specified in docs/wire-protocol.md.
class Server {
 public:
  /// Serves `service` (borrowed; must outlive the server).
  explicit Server(api::Service* service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, then spawns the IO thread and worker pool. Fails with IOError
  /// when the address cannot be bound, FailedPrecondition when already
  /// started.
  Status Start();

  /// Stops accepting, joins the IO thread, and drains in-flight dispatches
  /// (their responses are still written). Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  /// Per-connection state. IO thread owns inbuf/parsing; workers share the
  /// write side under write_mu. Kept alive by shared_ptr until the last
  /// in-flight worker response has been written.
  struct Conn {
    explicit Conn(Socket s) : sock(std::move(s)) {}
    Socket sock;
    std::string inbuf;
    std::mutex write_mu;
    std::atomic<size_t> in_flight{0};
    std::atomic<bool> dead{false};
  };

  void IoLoop();
  void AcceptOne();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame);
  void CloseConn(int fd);
  /// Reaps connections whose writer gave up (IO thread only).
  void ReapDead();
  /// Wakes the IO thread out of epoll_wait.
  void Wake();
  /// Marks `conn` dead and schedules it for an IO-thread close. Safe from
  /// any thread.
  void AbandonConn(const std::shared_ptr<Conn>& conn);
  /// Serializes `bytes` onto the connection; drops them once it is dead.
  /// On a write failure/timeout, marks the connection dead and schedules
  /// it for reaping. Called from pool workers.
  void WriteToConn(const std::shared_ptr<Conn>& conn,
                   const std::string& bytes);
  /// Queues a typed error reply on the worker pool (the IO thread must
  /// never block on a peer's full receive buffer). Error tasks get a small
  /// in-flight slack above max_in_flight so an overload refusal is still
  /// deliverable; beyond the slack the reply is dropped — the peer is
  /// flooding and nothing was executed for it anyway.
  void SendError(const std::shared_ptr<Conn>& conn, uint64_t correlation,
                 const Status& error, uint16_t type);

  api::Service* service_;
  ServerOptions options_;

  Socket listener_;
  uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unique_ptr<ThreadPool> pool_;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  /// fd -> connection; touched only by the IO thread.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  /// Connections a worker marked dead, awaiting an IO-thread close
  /// (guarded by dead_mu_; workers push, IO thread drains). Holding the
  /// shared_ptr (not the raw fd) keeps the fd from being reused before
  /// the reap, and ReapDead double-checks identity against conns_.
  std::mutex dead_mu_;
  std::vector<std::shared_ptr<Conn>> dead_conns_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> errors_sent_{0};
  std::atomic<uint64_t> overload_rejections_{0};
  std::atomic<uint64_t> version_rejections_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> bytes_sent_{0};

  /// Registry mirrors (net.* metrics), cached at construction; counters
  /// aggregate across all Server instances in the process.
  struct Metrics;
  const Metrics* metrics_;
};

}  // namespace itag::net

#endif  // ITAG_NET_SERVER_H_
