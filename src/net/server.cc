#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace itag::net {

/// Registry mirrors of the ServerStats counters plus the two live levels
/// only the registry carries (in-flight dispatch depth, open connections).
/// One process-wide set: servers are rare (one per daemon), and tests
/// asserting exact counts use stats(), which stays per-instance.
struct Server::Metrics {
  obs::Counter* connections;
  obs::Counter* frames;
  obs::Counter* responses;
  obs::Counter* errors;
  obs::Counter* overload_rejections;
  obs::Counter* version_rejections;
  obs::Counter* protocol_errors;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Gauge* in_flight;
  obs::Gauge* open_connections;

  static const Metrics& Get() {
    static const Metrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      Metrics n;
      n.connections = reg.GetCounter("net.connections");
      n.frames = reg.GetCounter("net.frames");
      n.responses = reg.GetCounter("net.responses");
      n.errors = reg.GetCounter("net.errors");
      n.overload_rejections = reg.GetCounter("net.overload_rejections");
      n.version_rejections = reg.GetCounter("net.version_rejections");
      n.protocol_errors = reg.GetCounter("net.protocol_errors");
      n.bytes_in = reg.GetCounter("net.bytes_in");
      n.bytes_out = reg.GetCounter("net.bytes_out");
      n.in_flight = reg.GetGauge("net.in_flight");
      n.open_connections = reg.GetGauge("net.open_connections");
      return n;
    }();
    return m;
  }
};

Server::Server(api::Service* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      metrics_(&Metrics::Get()) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (io_thread_.joinable()) {
    return Status::FailedPrecondition("server already started");
  }
  ITAG_ASSIGN_OR_RETURN(listener_,
                        Socket::Listen(options_.host, options_.port));
  ITAG_ASSIGN_OR_RETURN(uint16_t port, listener_.LocalPort());
  port_ = port;
  ITAG_RETURN_IF_ERROR(listener_.SetNonBlocking(true));

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  io_thread_ = std::thread(&Server::IoLoop, this);
  return Status::OK();
}

void Server::Stop() {
  if (!io_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  io_thread_.join();
  // Drain the workers: in-flight dispatches still write their responses
  // (their Conn references keep the sockets open).
  pool_.reset();
  metrics_->open_connections->Sub(static_cast<int64_t>(conns_.size()));
  conns_.clear();
  {
    // Connections abandoned after the IO thread exited would otherwise
    // hold their sockets open (and their peers' Awaits hostage) until the
    // Server object itself is destroyed.
    std::lock_guard<std::mutex> lock(dead_mu_);
    dead_conns_.clear();
  }
  listener_.Close();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.frames_received = frames_received_.load();
  s.responses_sent = responses_sent_.load();
  s.errors_sent = errors_sent_.load();
  s.overload_rejections = overload_rejections_.load();
  s.version_rejections = version_rejections_.load();
  s.protocol_errors = protocol_errors_.load();
  s.bytes_received = bytes_received_.load();
  s.bytes_sent = bytes_sent_.load();
  return s;
}

void Server::IoLoop() {
  std::vector<epoll_event> events(64);
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        [[maybe_unused]] ssize_t got = ::read(wake_fd_, &drain, sizeof(drain));
        ReapDead();  // stop flag re-checked at the loop head
        continue;
      }
      if (fd == listener_.fd()) {
        AcceptOne();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(fd);
      } else if (events[i].events & EPOLLIN) {
        HandleReadable(it->second);
      }
    }
  }
}

void Server::AcceptOne() {
  Result<Socket> accepted = listener_.Accept();
  if (!accepted.ok()) return;  // transient (EAGAIN after a racing accept)
  Socket sock = std::move(accepted).value();
  if (!sock.SetNonBlocking(true).ok()) return;
  (void)sock.SetNoDelay(true);
  int fd = sock.fd();
  auto conn = std::make_shared<Conn>(std::move(sock));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return;
  conns_.emplace(fd, std::move(conn));
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  metrics_->connections->Inc();
  metrics_->open_connections->Add(1);
}

void Server::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  it->second->dead.store(true, std::memory_order_release);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // The fd itself closes when the last worker holding this Conn finishes.
  conns_.erase(it);
  metrics_->open_connections->Sub(1);
}

void Server::ReapDead() {
  std::vector<std::shared_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> lock(dead_mu_);
    dead.swap(dead_conns_);
  }
  for (const std::shared_ptr<Conn>& conn : dead) {
    // Identity check: only close if this fd still maps to *this*
    // connection (it may already have been reaped via EPOLLHUP).
    int fd = conn->sock.fd();
    auto it = conns_.find(fd);
    if (it != conns_.end() && it->second == conn) CloseConn(fd);
  }
}

void Server::Wake() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::AbandonConn(const std::shared_ptr<Conn>& conn) {
  conn->dead.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(dead_mu_);
    dead_conns_.push_back(conn);
  }
  Wake();
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  int fd = conn->sock.fd();
  if (conn->dead.load(std::memory_order_acquire)) {
    // A worker gave up on this peer (write error or timeout); reap it.
    CloseConn(fd);
    return;
  }
  char buf[16384];
  bool peer_gone = false;
  for (;;) {
    Result<size_t> got = conn->sock.ReadSome(buf, sizeof(buf));
    if (!got.ok()) {
      // EOF or socket error — but frames already received (possibly in
      // this very read burst) must still be dispatched: a fire-and-forget
      // client may send and close in one breath.
      peer_gone = true;
      break;
    }
    if (*got == 0) break;  // drained for now
    conn->inbuf.append(buf, *got);
    bytes_received_.fetch_add(*got, std::memory_order_relaxed);
    metrics_->bytes_in->Inc(*got);
  }
  size_t parsed = 0;
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    Status s = TryDecodeFrame(
        std::string_view(conn->inbuf).substr(parsed), &frame, &consumed,
        options_.max_frame_bytes);
    if (!s.ok()) {
      // Unparseable stream (bad magic/CRC/kind): nothing after this point
      // can be framed reliably, so the only safe move is to hang up.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      metrics_->protocol_errors->Inc();
      CloseConn(fd);
      return;
    }
    if (consumed == 0) break;  // need more bytes
    parsed += consumed;
    HandleFrame(conn, std::move(frame));
  }
  conn->inbuf.erase(0, parsed);
  if (peer_gone) CloseConn(fd);
}

void Server::HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  metrics_->frames->Inc();
  if (frame.kind != FrameKind::kRequest) {
    SendError(conn, frame.correlation,
              Status::InvalidArgument("expected a request frame"), frame.type);
    return;
  }
  if (!api::IsCompatibleApiVersion(frame.version)) {
    version_rejections_.fetch_add(1, std::memory_order_relaxed);
    metrics_->version_rejections->Inc();
    SendError(conn, frame.correlation,
              Status::FailedPrecondition(
                  "api version mismatch: frame speaks v" +
                  std::to_string(frame.version) + ", server speaks v" +
                  std::to_string(api::kApiVersion)),
              frame.type);
    return;
  }
  if (conn->in_flight.load(std::memory_order_acquire) >=
      options_.max_in_flight) {
    overload_rejections_.fetch_add(1, std::memory_order_relaxed);
    metrics_->overload_rejections->Inc();
    SendError(conn, frame.correlation,
              Status::ResourceExhausted(
                  "server overloaded: " +
                  std::to_string(options_.max_in_flight) +
                  " requests already in flight on this connection"),
              frame.type);
    return;
  }
  // Payload decoding (and everything after) runs on the pool: a frame near
  // the size cap must not stall the IO thread's accepts and reads for
  // every other connection. The IO thread does framing only.
  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  metrics_->in_flight->Add(1);
  pool_->Submit([this, conn, frame = std::move(frame)]() {
    api::AnyRequest request;
    Status decoded =
        DecodeRequestPayload(frame.type, frame.payload, &request);
    if (!decoded.ok()) {
      errors_sent_.fetch_add(1, std::memory_order_relaxed);
      metrics_->errors->Inc();
      WriteToConn(conn,
                  EncodeErrorFrame(frame.correlation, decoded, frame.type));
    } else {
      if (options_.before_dispatch) options_.before_dispatch(request);
      api::AnyResponse response = service_->Dispatch(request);
      std::string bytes = EncodeResponseFrame(frame.correlation, response);
      if (bytes.size() - kHeaderSize > options_.max_frame_bytes) {
        // A legal request can amplify into a response the peer's decoder
        // would reject as unrecoverable (its frame cap mirrors ours).
        // Answer with a typed refusal instead of breaking the stream.
        errors_sent_.fetch_add(1, std::memory_order_relaxed);
        metrics_->errors->Inc();
        WriteToConn(conn,
                    EncodeErrorFrame(
                        frame.correlation,
                        Status::ResourceExhausted(
                            "response of " +
                            std::to_string(bytes.size() - kHeaderSize) +
                            " bytes exceeds the frame cap; narrow the "
                            "request (fewer items / details)"),
                        frame.type));
      } else {
        // Count before writing: once the client holds the reply, the stat
        // must already reflect it (tests assert equality right after).
        responses_sent_.fetch_add(1, std::memory_order_relaxed);
        metrics_->responses->Inc();
        WriteToConn(conn, bytes);
      }
    }
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    metrics_->in_flight->Sub(1);
  });
}

void Server::WriteToConn(const std::shared_ptr<Conn>& conn,
                         const std::string& bytes) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead.load(std::memory_order_acquire)) return;
  if (conn->sock.WriteAll(bytes.data(), bytes.size(),
                          options_.write_timeout_ms)
          .ok()) {
    bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
    metrics_->bytes_out->Inc(bytes.size());
  } else {
    // Peer went away mid-write, or stopped draining for longer than
    // write_timeout_ms. Hand the connection to the IO thread for a real
    // close — otherwise a peer with outstanding Awaits would hang forever
    // on a half-abandoned socket.
    AbandonConn(conn);
  }
}

void Server::SendError(const std::shared_ptr<Conn>& conn,
                       uint64_t correlation, const Status& error,
                       uint16_t type) {
  // Small slack above max_in_flight: enough for the overload refusal
  // itself to ride the pool, while bounding how much queued write work a
  // frame-flooding peer can pile up. Past the slack the peer is
  // disconnected — never silently unanswered, which would strand its
  // Await forever (see docs/wire-protocol.md).
  constexpr size_t kErrorSlack = 16;
  if (conn->in_flight.load(std::memory_order_acquire) >=
      options_.max_in_flight + kErrorSlack) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_->protocol_errors->Inc();
    AbandonConn(conn);
    return;
  }
  errors_sent_.fetch_add(1, std::memory_order_relaxed);
  metrics_->errors->Inc();
  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  metrics_->in_flight->Add(1);
  pool_->Submit(
      [this, conn, bytes = EncodeErrorFrame(correlation, error, type)]() {
        WriteToConn(conn, bytes);
        conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
        metrics_->in_flight->Sub(1);
      });
}

}  // namespace itag::net
