#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <iterator>
#include <utility>
#include <vector>

#include "common/sharding.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itag::net {

namespace {

/// Error replies a flooding peer has left undrained before we give up on
/// the connection (each refusal is ~100 bytes, so this is thousands of
/// unanswered-and-unread refusals — a peer that far behind is not a
/// client, it is a hose).
constexpr size_t kErrorBacklogBytes = 1u << 20;

/// iovec entries per gathering write; deeper queues just take another
/// syscall per 64 frames.
constexpr size_t kMaxIov = 64;

}  // namespace

/// Registry mirrors of the ServerStats counters plus the live levels and
/// shapes only the registry carries (in-flight dispatch depth, open
/// connections, dispatch batch sizes, frames per flush syscall). One
/// process-wide set: servers are rare (one per daemon), and tests
/// asserting exact counts use stats(), which stays per-instance.
struct Server::Metrics {
  obs::Counter* connections;
  obs::Counter* frames;
  obs::Counter* responses;
  obs::Counter* errors;
  obs::Counter* overload_rejections;
  obs::Counter* version_rejections;
  obs::Counter* protocol_errors;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Gauge* in_flight;
  obs::Gauge* open_connections;
  /// Requests per dispatch-group pool task — the adaptive batching window
  /// made visible: p50 of 1 at low load, rising with pipelining depth.
  obs::Histogram* batch_size;
  /// Whole response frames retired per flush syscall (writev coalescing).
  obs::Histogram* coalesced_frames;

  static const Metrics& Get() {
    static const Metrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      Metrics n;
      n.connections = reg.GetCounter("net.connections");
      n.frames = reg.GetCounter("net.frames");
      n.responses = reg.GetCounter("net.responses");
      n.errors = reg.GetCounter("net.errors");
      n.overload_rejections = reg.GetCounter("net.overload_rejections");
      n.version_rejections = reg.GetCounter("net.version_rejections");
      n.protocol_errors = reg.GetCounter("net.protocol_errors");
      n.bytes_in = reg.GetCounter("net.bytes_in");
      n.bytes_out = reg.GetCounter("net.bytes_out");
      n.in_flight = reg.GetGauge("net.in_flight");
      n.open_connections = reg.GetGauge("net.open_connections");
      n.batch_size = reg.GetHistogram("net.dispatch.batch_size");
      n.coalesced_frames = reg.GetHistogram("net.flush.coalesced_frames");
      return n;
    }();
    return m;
  }
};

/// One reactor: an epoll loop plus the connections it owns. Everything
/// except the inbox (mu + the three hand-off vectors) is touched only by
/// the reactor's own thread.
struct Server::Reactor {
  size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  /// Connections with an armed write deadline (lazily pruned).
  std::vector<std::shared_ptr<Conn>> deadlined;

  /// Cross-thread inbox: reactor 0 hands off accepted sockets, workers
  /// hand off flush-ready and abandoned connections; the owner drains on
  /// its eventfd wake.
  std::mutex mu;
  std::vector<Socket> pending_accepts;
  std::vector<std::shared_ptr<Conn>> flush_ready;
  std::vector<std::shared_ptr<Conn>> dead_conns;

  /// Per-reactor registry counters (net.reactor.<i>.*) — the balance
  /// check for the round-robin handoff.
  obs::Counter* frames = nullptr;
  obs::Counter* connections = nullptr;
};

Server::Server(api::Service* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      metrics_(&Metrics::Get()) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  ITAG_ASSIGN_OR_RETURN(
      listener_,
      Socket::Listen(options_.host, options_.port, options_.listen_backlog));
  ITAG_ASSIGN_OR_RETURN(uint16_t port, listener_.LocalPort());
  port_ = port;
  ITAG_RETURN_IF_ERROR(listener_.SetNonBlocking(true));

  // The shard-hint routing mirrors the backend's `global % num_shards`;
  // a single-system backend degenerates to one routing bucket.
  core::ShardedSystem* sharded = service_->sharded();
  num_shards_ =
      (sharded != nullptr && sharded->num_shards() > 0) ? sharded->num_shards()
                                                        : 1;

  size_t n_reactors = options_.reactors;
  if (n_reactors == 0) {
    n_reactors = std::max(1u, std::thread::hardware_concurrency());
  }
  auto teardown = [this] {
    for (auto& r : reactors_) {
      if (r->epoll_fd >= 0) ::close(r->epoll_fd);
      if (r->wake_fd >= 0) ::close(r->wake_fd);
    }
    reactors_.clear();
    listener_.Close();
  };
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  for (size_t i = 0; i < n_reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    r->epoll_fd = ::epoll_create1(0);
    r->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (r->epoll_fd < 0 || r->wake_fd < 0) {
      reactors_.push_back(std::move(r));
      teardown();
      return Status::IOError("epoll_create1/eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wake_fd;
    ::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->wake_fd, &ev);
    const std::string prefix = "net.reactor." + std::to_string(i) + ".";
    r->frames = reg.GetCounter(prefix + "frames");
    r->connections = reg.GetCounter(prefix + "connections");
    reactors_.push_back(std::move(r));
  }
  // Reactor 0 owns the listener and hands accepted sockets off round-robin.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  ::epoll_ctl(reactors_[0]->epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &ev);

  stopping_.store(false, std::memory_order_release);
  next_reactor_ = 0;
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  for (auto& r : reactors_) {
    r->thread = std::thread(&Server::ReactorLoop, this, std::ref(*r));
  }
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& r : reactors_) WakeReactor(*r);
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  // Drain the workers. Their responses land in the output queues (and
  // their flush notifications on still-open eventfds, harmlessly — the
  // loops have exited).
  pool_.reset();
  // Final bounded flush: deliver what the drain queued, then tear down.
  for (auto& r : reactors_) {
    for (auto& [fd, conn] : r->conns) {
      if (conn->dead.load(std::memory_order_acquire)) continue;
      std::lock_guard<std::mutex> lock(conn->write_mu);
      for (size_t i = 0; i < conn->outq.size(); ++i) {
        const std::string& s = conn->outq[i];
        const char* data = s.data();
        size_t len = s.size();
        if (i == 0) {
          data += conn->out_head;
          len -= conn->out_head;
        }
        if (!conn->sock.WriteAll(data, len, options_.write_timeout_ms).ok()) {
          break;
        }
        bytes_sent_.fetch_add(len, std::memory_order_relaxed);
        metrics_->bytes_out->Inc(len);
      }
      conn->outq.clear();
      conn->out_head = 0;
      conn->out_bytes = 0;
      conn->dead.store(true, std::memory_order_release);
    }
    metrics_->open_connections->Sub(static_cast<int64_t>(r->conns.size()));
    r->conns.clear();
    r->deadlined.clear();
    if (r->epoll_fd >= 0) ::close(r->epoll_fd);
    if (r->wake_fd >= 0) ::close(r->wake_fd);
  }
  reactors_.clear();
  listener_.Close();
  started_ = false;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.frames_received = frames_received_.load();
  s.responses_sent = responses_sent_.load();
  s.errors_sent = errors_sent_.load();
  s.overload_rejections = overload_rejections_.load();
  s.version_rejections = version_rejections_.load();
  s.protocol_errors = protocol_errors_.load();
  s.bytes_received = bytes_received_.load();
  s.bytes_sent = bytes_sent_.load();
  return s;
}

void Server::ReactorLoop(Reactor& r) {
  std::vector<epoll_event> events(128);
  DispatchGroups groups;
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(r.epoll_fd, events.data(),
                         static_cast<int>(events.size()), NextTimeoutMs(r));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == r.wake_fd) {
        uint64_t drain;
        [[maybe_unused]] ssize_t got = ::read(r.wake_fd, &drain, sizeof(drain));
        DrainInbox(r);  // stop flag re-checked at the loop head
        continue;
      }
      if (r.index == 0 && fd == listener_.fd()) {
        AcceptBurst(r);
        continue;
      }
      auto it = r.conns.find(fd);
      if (it == r.conns.end()) continue;
      std::shared_ptr<Conn> conn = it->second;  // handlers may erase the entry
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(r, fd);
        continue;
      }
      if (events[i].events & EPOLLOUT) FlushConn(r, conn);
      if (events[i].events & EPOLLIN) HandleReadable(r, conn, groups);
    }
    // End of the event burst — the adaptive batching window closes and
    // every accumulated group goes to the pool as one task.
    FlushDispatchGroups(groups);
    ExpireWriteDeadlines(r, std::chrono::steady_clock::now());
  }
}

int Server::NextTimeoutMs(Reactor& r) const {
  if (r.deadlined.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  int timeout = -1;
  for (const auto& conn : r.deadlined) {
    if (conn->dead.load(std::memory_order_acquire) || !conn->has_deadline) {
      continue;
    }
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    conn->deadline - now)
                    .count();
    int t = left <= 0 ? 0 : static_cast<int>(left) + 1;
    timeout = timeout < 0 ? t : std::min(timeout, t);
  }
  return timeout;
}

void Server::AcceptBurst(Reactor& r0) {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // EAGAIN — the burst is drained
    Socket sock = std::move(accepted).value();
    if (!sock.SetNonBlocking(true).ok()) continue;
    (void)sock.SetNoDelay(true);
    size_t target = next_reactor_ % reactors_.size();
    ++next_reactor_;
    if (target == 0) {
      RegisterConn(r0, std::move(sock));
    } else {
      Reactor& rt = *reactors_[target];
      {
        std::lock_guard<std::mutex> lock(rt.mu);
        rt.pending_accepts.push_back(std::move(sock));
      }
      WakeReactor(rt);
    }
  }
}

void Server::RegisterConn(Reactor& r, Socket sock) {
  int fd = sock.fd();
  auto conn = std::make_shared<Conn>(std::move(sock));
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->owner = &r;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) return;
  r.conns.emplace(fd, std::move(conn));
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  metrics_->connections->Inc();
  metrics_->open_connections->Add(1);
  r.connections->Inc();
}

void Server::DrainInbox(Reactor& r) {
  std::vector<Socket> accepts;
  std::vector<std::shared_ptr<Conn>> flush;
  std::vector<std::shared_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    accepts.swap(r.pending_accepts);
    flush.swap(r.flush_ready);
    dead.swap(r.dead_conns);
  }
  for (Socket& s : accepts) RegisterConn(r, std::move(s));
  for (const std::shared_ptr<Conn>& conn : flush) FlushConn(r, conn);
  for (const std::shared_ptr<Conn>& conn : dead) {
    // Identity check: only close if this fd still maps to *this*
    // connection (it may already have been reaped via EPOLLHUP).
    int fd = conn->sock.fd();
    auto it = r.conns.find(fd);
    if (it != r.conns.end() && it->second == conn) CloseConn(r, fd);
  }
}

void Server::CloseConn(Reactor& r, int fd) {
  auto it = r.conns.find(fd);
  if (it == r.conns.end()) return;
  if (repl_hooks_.on_close) repl_hooks_.on_close(it->second->id);
  it->second->dead.store(true, std::memory_order_release);
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  // The fd itself closes when the last worker holding this Conn finishes.
  r.conns.erase(it);
  metrics_->open_connections->Sub(1);
}

void Server::WakeReactor(Reactor& r) {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(r.wake_fd, &one, sizeof(one));
}

void Server::AbandonConn(const std::shared_ptr<Conn>& conn) {
  conn->dead.store(true, std::memory_order_release);
  Reactor& r = *conn->owner;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.dead_conns.push_back(conn);
  }
  WakeReactor(r);
}

void Server::HandleReadable(Reactor& r, const std::shared_ptr<Conn>& conn,
                            DispatchGroups& groups) {
  int fd = conn->sock.fd();
  if (conn->dead.load(std::memory_order_acquire)) {
    // A worker gave up on this peer (write error or overflow); reap it.
    CloseConn(r, fd);
    return;
  }
  char buf[16384];
  bool peer_gone = false;
  for (;;) {
    Result<size_t> got = conn->sock.ReadSome(buf, sizeof(buf));
    if (!got.ok()) {
      // EOF or socket error — but frames already received (possibly in
      // this very read burst) must still be dispatched: a fire-and-forget
      // client may send and close in one breath.
      peer_gone = true;
      break;
    }
    if (*got == 0) break;  // drained for now
    conn->inbuf.append(buf, *got);
    bytes_received_.fetch_add(*got, std::memory_order_relaxed);
    metrics_->bytes_in->Inc(*got);
  }
  size_t parsed = 0;
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    Status s = TryDecodeFrame(
        std::string_view(conn->inbuf).substr(parsed), &frame, &consumed,
        options_.max_frame_bytes);
    if (!s.ok()) {
      // Unparseable stream (bad magic/CRC/kind): nothing after this point
      // can be framed reliably, so the only safe move is to hang up.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      metrics_->protocol_errors->Inc();
      CloseConn(r, fd);
      return;
    }
    if (consumed == 0) break;  // need more bytes
    parsed += consumed;
    HandleFrame(r, conn, std::move(frame), groups);
  }
  conn->inbuf.erase(0, parsed);
  if (peer_gone) CloseConn(r, fd);
}

void Server::HandleFrame(Reactor& r, const std::shared_ptr<Conn>& conn,
                         Frame frame, DispatchGroups& groups) {
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  metrics_->frames->Inc();
  r.frames->Inc();
  if (frame.kind == FrameKind::kReplSubscribe ||
      frame.kind == FrameKind::kReplBatch ||
      frame.kind == FrameKind::kReplAck) {
    if (!repl_hooks_.on_frame) {
      SendError(conn, frame.correlation,
                Status::FailedPrecondition(
                    "replication is not enabled on this server"),
                frame.type);
      return;
    }
    // The Sender closure pins the Conn; the hook owner must drop it on
    // on_close so the socket can actually be reclaimed.
    repl_hooks_.on_frame(
        conn->id, std::move(frame),
        [this, conn](std::string bytes) { QueueWrite(conn, std::move(bytes)); });
    return;
  }
  if (frame.kind != FrameKind::kRequest) {
    SendError(conn, frame.correlation,
              Status::InvalidArgument("expected a request frame"), frame.type);
    return;
  }
  if (!api::IsCompatibleApiVersion(frame.version)) {
    version_rejections_.fetch_add(1, std::memory_order_relaxed);
    metrics_->version_rejections->Inc();
    SendError(conn, frame.correlation,
              Status::FailedPrecondition(
                  "api version mismatch: frame speaks v" +
                  std::to_string(frame.version) + ", server speaks v" +
                  std::to_string(api::kApiVersion)),
              frame.type);
    return;
  }
  if (conn->in_flight.load(std::memory_order_acquire) >=
      options_.max_in_flight) {
    overload_rejections_.fetch_add(1, std::memory_order_relaxed);
    metrics_->overload_rejections->Inc();
    SendError(conn, frame.correlation,
              Status::ResourceExhausted(
                  "server overloaded: " +
                  std::to_string(options_.max_in_flight) +
                  " requests already in flight on this connection"),
              frame.type);
    return;
  }
  // Payload decoding (and everything after) runs on the pool: a frame near
  // the size cap must not stall this reactor's accepts and reads for every
  // other connection. Reactors do framing and routing only.
  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  metrics_->in_flight->Add(1);
  // The trace root opens here — frame decoded, request admitted — so the
  // root duration covers the pool queue wait, dispatch, and response
  // encode. Untraced requests pay one atomic increment and carry an empty
  // context.
  obs::TraceContext trace = obs::Tracer::Default().Begin();
  std::shared_ptr<obs::Span> root;
  if (trace.active()) {
    root = std::make_shared<obs::Span>("net.request", trace, 0);
    root->Annotate("reactor", static_cast<uint64_t>(r.index));
    root->Annotate("conn", static_cast<uint64_t>(conn->sock.fd()));
    root->Annotate("correlation", frame.correlation);
  }
  if (frame.type == api::kRequestTypeIndex<api::BatchSubmitTagsRequest>) {
    // Mergeable: the whole group becomes ONE backend batch (see
    // Service::BatchSubmitTagsMulti for the bit-equality argument).
    groups.submits.push_back(
        Work{conn, std::move(frame), trace, std::move(root)});
    return;
  }
  size_t shard = ShardHintOf(frame);
  if (shard != SIZE_MAX) {
    groups.by_shard[shard].push_back(
        Work{conn, std::move(frame), trace, std::move(root)});
    return;
  }
  // Unroutable (registrations, Step, Checkpoint, MetricsQuery, malformed):
  // one pool task each, preserving worker parallelism for endpoints that
  // fan out internally or block.
  pool_->Submit(
      [this, w = Work{conn, std::move(frame), trace, std::move(root)}]() mutable {
        DispatchOne(w);
      });
}

size_t Server::ShardHintOf(const Frame& frame) const {
  // Requests whose encoded payload leads with the target project's global
  // id (little-endian u64, per docs/wire-protocol.md): BatchUploadResources,
  // BatchControl and ProjectQuery at offset 0; BatchAcceptTasks carries the
  // tagger id first, project id at offset 8. Everything else (or a payload
  // too short to peek — the decode on the worker answers it with a typed
  // error) has no single-shard routing.
  size_t off;
  switch (frame.type) {
    case api::kRequestTypeIndex<api::BatchUploadResourcesRequest>:
    case api::kRequestTypeIndex<api::BatchControlRequest>:
    case api::kRequestTypeIndex<api::ProjectQueryRequest>:
      off = 0;
      break;
    case api::kRequestTypeIndex<api::BatchAcceptTasksRequest>:
      off = 8;
      break;
    default:
      return SIZE_MAX;
  }
  if (frame.payload.size() < off + 8) return SIZE_MAX;
  const auto* p =
      reinterpret_cast<const unsigned char*>(frame.payload.data()) + off;
  uint64_t project = 0;
  for (int i = 7; i >= 0; --i) {
    project = (project << 8) | static_cast<uint64_t>(p[i]);
  }
  return ShardOfId(project, num_shards_);
}

void Server::FlushDispatchGroups(DispatchGroups& groups) {
  const size_t cap =
      options_.max_dispatch_batch == 0 ? 1 : options_.max_dispatch_batch;
  auto submit_chunks = [&](std::vector<Work>& vec, bool merged) {
    for (size_t start = 0; start < vec.size(); start += cap) {
      const size_t end = std::min(vec.size(), start + cap);
      metrics_->batch_size->Observe(end - start);
      if (end - start == 1) {
        // Low load: a singleton group dispatches exactly like the
        // unbatched server — no added latency.
        pool_->Submit([this, w = std::move(vec[start])]() mutable {
          DispatchOne(w);
        });
        continue;
      }
      std::vector<Work> chunk(std::make_move_iterator(vec.begin() + start),
                              std::make_move_iterator(vec.begin() + end));
      if (merged) {
        pool_->Submit([this, g = std::move(chunk)]() mutable {
          DispatchMergedSubmits(g);
        });
      } else {
        pool_->Submit([this, g = std::move(chunk)]() mutable {
          for (Work& w : g) DispatchOne(w);
        });
      }
    }
    vec.clear();
  };
  for (auto& [shard, vec] : groups.by_shard) submit_chunks(vec, false);
  groups.by_shard.clear();
  submit_chunks(groups.submits, true);
}

void Server::DispatchOne(Work& work) {
  api::AnyRequest request;
  Status decoded =
      DecodeRequestPayload(work.frame.type, work.frame.payload, &request);
  if (!decoded.ok()) {
    errors_sent_.fetch_add(1, std::memory_order_relaxed);
    metrics_->errors->Inc();
    QueueWrite(work.conn,
               EncodeErrorFrame(work.frame.correlation, decoded,
                                work.frame.type));
  } else {
    // Make the request's trace current on this worker so the api/core/
    // storage spans opened inside Dispatch parent under the net root.
    obs::ScopedTraceContext trace_scope(
        work.trace, work.root ? work.root->span_id() : 0);
    if (options_.before_dispatch) options_.before_dispatch(request);
    FinishDispatch(work, service_->Dispatch(request));
  }
  CloseRootSpan(work);
  work.conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  metrics_->in_flight->Sub(1);
}

void Server::DispatchMergedSubmits(std::vector<Work>& group) {
  std::vector<api::BatchSubmitTagsRequest> reqs;
  std::vector<size_t> origin;  // group index of reqs[k]
  reqs.reserve(group.size());
  origin.reserve(group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    Work& w = group[i];
    api::AnyRequest request;
    Status decoded =
        DecodeRequestPayload(w.frame.type, w.frame.payload, &request);
    if (!decoded.ok()) {
      errors_sent_.fetch_add(1, std::memory_order_relaxed);
      metrics_->errors->Inc();
      QueueWrite(w.conn, EncodeErrorFrame(w.frame.correlation, decoded,
                                          w.frame.type));
      CloseRootSpan(w);
      w.conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      metrics_->in_flight->Sub(1);
      continue;
    }
    if (options_.before_dispatch) options_.before_dispatch(request);
    reqs.push_back(std::get<api::BatchSubmitTagsRequest>(std::move(request)));
    origin.push_back(i);
  }
  if (reqs.empty()) return;
  // The merged backend call serves every request in the group at once, so
  // each traced request gets its own api.BatchSubmitTags span covering the
  // whole merged call (that IS the latency it experienced), annotated with
  // the merge width. The core/storage spans the call emits attach to the
  // FIRST traced request — one backend pass cannot belong to N traces.
  std::vector<obs::Span> api_spans;
  api_spans.reserve(origin.size());
  const obs::TraceContext* lead_ctx = nullptr;
  uint64_t lead_parent = 0;
  for (size_t k = 0; k < origin.size(); ++k) {
    Work& w = group[origin[k]];
    api_spans.emplace_back("api.BatchSubmitTags", w.trace,
                           w.root ? w.root->span_id() : 0);
    if (!api_spans.back().active()) continue;
    api_spans.back().Annotate("merged", static_cast<uint64_t>(reqs.size()));
    if (lead_ctx == nullptr) {
      lead_ctx = &w.trace;
      lead_parent = api_spans.back().span_id();
    }
  }
  std::vector<api::BatchSubmitTagsResponse> resps;
  {
    obs::ScopedTraceContext trace_scope(
        lead_ctx != nullptr ? *lead_ctx : obs::TraceContext{}, lead_parent);
    resps = service_->BatchSubmitTagsMulti(reqs);
  }
  for (obs::Span& s : api_spans) s.End();
  for (size_t k = 0; k < resps.size(); ++k) {
    Work& w = group[origin[k]];
    FinishDispatch(w, api::AnyResponse(std::move(resps[k])));
    CloseRootSpan(w);
    w.conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    metrics_->in_flight->Sub(1);
  }
}

void Server::FinishDispatch(const Work& work,
                            const api::AnyResponse& response) {
  std::string bytes = EncodeResponseFrame(work.frame.correlation, response);
  if (bytes.size() - kHeaderSize > options_.max_frame_bytes) {
    // A legal request can amplify into a response the peer's decoder
    // would reject as unrecoverable (its frame cap mirrors ours).
    // Answer with a typed refusal instead of breaking the stream.
    errors_sent_.fetch_add(1, std::memory_order_relaxed);
    metrics_->errors->Inc();
    QueueWrite(work.conn,
               EncodeErrorFrame(
                   work.frame.correlation,
                   Status::ResourceExhausted(
                       "response of " +
                       std::to_string(bytes.size() - kHeaderSize) +
                       " bytes exceeds the frame cap; narrow the "
                       "request (fewer items / details)"),
                   work.frame.type));
    return;
  }
  // Count before queueing: once the client holds the reply, the stat must
  // already reflect it (tests assert equality right after).
  responses_sent_.fetch_add(1, std::memory_order_relaxed);
  metrics_->responses->Inc();
  QueueWrite(work.conn, std::move(bytes));
}

void Server::CloseRootSpan(Work& work) {
  if (!work.root) return;
  size_t queued = 0;
  {
    // out_bytes is guarded by write_mu (it is not atomic); the response
    // queued by FinishDispatch is already counted, so this is the depth
    // the reply is waiting behind.
    std::lock_guard<std::mutex> lock(work.conn->write_mu);
    queued = work.conn->out_bytes;
  }
  work.root->Annotate("write_queue_bytes", static_cast<uint64_t>(queued));
  work.root.reset();  // ends the root span; the trace is retained or dropped
}

void Server::QueueWrite(const std::shared_ptr<Conn>& conn, std::string bytes) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  bool notify = false;
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->dead.load(std::memory_order_acquire)) return;
    if (conn->out_bytes + bytes.size() > options_.max_pending_write_bytes) {
      overflow = true;
    } else {
      conn->out_bytes += bytes.size();
      conn->outq.push_back(std::move(bytes));
      if (!conn->flush_queued) {
        conn->flush_queued = true;
        notify = true;
      }
    }
  }
  if (overflow) {
    // The peer pipelined far more than it is willing to read. Cutting the
    // connection is the only bounded-memory option left.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_->protocol_errors->Inc();
    AbandonConn(conn);
    return;
  }
  if (notify) {
    Reactor& r = *conn->owner;
    {
      std::lock_guard<std::mutex> lock(r.mu);
      r.flush_ready.push_back(conn);
    }
    WakeReactor(r);
  }
}

void Server::FlushConn(Reactor& r, const std::shared_ptr<Conn>& conn) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(conn->write_mu);
  for (;;) {
    if (conn->outq.empty()) {
      conn->flush_queued = false;
      lock.unlock();
      // Fully drained: back to read-only interest, deadline disarmed.
      if (conn->want_epollout) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = conn->sock.fd();
        ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->sock.fd(), &ev);
        conn->want_epollout = false;
      }
      conn->has_deadline = false;
      return;
    }
    iovec iov[kMaxIov];
    size_t n = 0;
    size_t head = conn->out_head;
    for (const std::string& s : conn->outq) {
      if (n == kMaxIov) break;
      iov[n].iov_base = const_cast<char*>(s.data()) + head;
      iov[n].iov_len = s.size() - head;
      head = 0;
      ++n;
    }
    Result<size_t> sent = conn->sock.WritevSome(iov, n);
    if (!sent.ok()) {
      // Peer went away mid-write; drop the queue with the connection.
      lock.unlock();
      CloseConn(r, conn->sock.fd());
      return;
    }
    if (*sent == 0) {
      // Socket buffer full: hand the rest to EPOLLOUT, bounded by the
      // write deadline — the queue survives, this thread moves on.
      lock.unlock();
      if (!conn->want_epollout) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn->sock.fd();
        ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->sock.fd(), &ev);
        conn->want_epollout = true;
      }
      if (!conn->has_deadline) {
        conn->has_deadline = true;
        conn->deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.write_timeout_ms);
        r.deadlined.push_back(conn);
      }
      return;
    }
    bytes_sent_.fetch_add(*sent, std::memory_order_relaxed);
    metrics_->bytes_out->Inc(*sent);
    size_t remaining = *sent;
    uint64_t frames_done = 0;
    while (remaining > 0) {
      std::string& front = conn->outq.front();
      const size_t avail = front.size() - conn->out_head;
      if (remaining >= avail) {
        remaining -= avail;
        conn->out_bytes -= avail;
        conn->outq.pop_front();
        conn->out_head = 0;
        ++frames_done;
      } else {
        conn->out_head += remaining;
        conn->out_bytes -= remaining;
        remaining = 0;
      }
    }
    if (frames_done > 0) metrics_->coalesced_frames->Observe(frames_done);
  }
}

void Server::ExpireWriteDeadlines(Reactor& r,
                                  std::chrono::steady_clock::time_point now) {
  if (r.deadlined.empty()) return;
  std::vector<std::shared_ptr<Conn>> keep;
  for (const std::shared_ptr<Conn>& conn : r.deadlined) {
    if (conn->dead.load(std::memory_order_acquire) || !conn->has_deadline) {
      continue;  // resolved (drained, or closed by another path)
    }
    if (now >= conn->deadline) {
      // Stalled past write_timeout_ms with the peer not draining; queued
      // responses are dropped with the connection, like the blocking
      // write timeout before it.
      CloseConn(r, conn->sock.fd());
      continue;
    }
    keep.push_back(conn);
  }
  r.deadlined.swap(keep);
}

void Server::SendError(const std::shared_ptr<Conn>& conn,
                       uint64_t correlation, const Status& error,
                       uint16_t type) {
  // Error frames are tiny and encode in microseconds, so they are queued
  // straight from the reactor — refusing a frame must not consume the
  // worker capacity the refusal is protecting. The backlog check bounds a
  // peer that floods requests while never reading its refusals: past the
  // cap it is disconnected — never silently unanswered, which would
  // strand its Await forever (see docs/wire-protocol.md).
  size_t backlog;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    backlog = conn->out_bytes;
  }
  if (backlog > kErrorBacklogBytes) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_->protocol_errors->Inc();
    AbandonConn(conn);
    return;
  }
  errors_sent_.fetch_add(1, std::memory_order_relaxed);
  metrics_->errors->Inc();
  QueueWrite(conn, EncodeErrorFrame(correlation, error, type));
}

}  // namespace itag::net
