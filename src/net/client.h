#ifndef ITAG_NET_CLIENT_H_
#define ITAG_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "api/requests.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "net/wire.h"

namespace itag::net {

struct ClientOptions {
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Blocking client for the iTag wire protocol, mirroring the api::Service
/// endpoint surface over one TCP connection.
///
/// Two calling styles:
///  - Synchronous: `Dispatch()` (or a typed endpoint wrapper) sends one
///    request and blocks for its reply.
///  - Pipelined: `DispatchAsync()` sends without waiting and returns the
///    frame's correlation id; `Await(id)` blocks until *that* reply arrives,
///    parking replies that overtake it (the server answers out of order).
///
/// Error model: a transport or framing failure surfaces as the Result's
/// status (IOError/Corruption) and poisons the connection; a *typed* error
/// reply from the server (version mismatch → FailedPrecondition, overload →
/// ResourceExhausted, malformed payload → InvalidArgument) surfaces as the
/// Result's status while the connection stays usable. Application-level
/// failures arrive inside the response structs, exactly as in-process.
///
/// Not thread-safe: one Client per thread (connections are cheap).
class Client {
 public:
  explicit Client(ClientOptions options = {});
  ~Client() = default;

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  Status Connect(const std::string& host, uint16_t port);
  void Close() { sock_.Close(); }
  bool connected() const { return sock_.valid(); }

  /// One synchronous round trip.
  Result<api::AnyResponse> Dispatch(const api::AnyRequest& request);

  /// Sends without waiting; returns the correlation id to Await() on.
  Result<uint64_t> DispatchAsync(const api::AnyRequest& request);

  /// Blocks until the reply for `correlation` arrives. Replies for other
  /// pending ids received meanwhile are parked for their own Await().
  Result<api::AnyResponse> Await(uint64_t correlation);

  /// Replies already parked (receivable without blocking via Await()).
  size_t ready_count() const { return ready_.size(); }

  // ------------------------------------------------- typed endpoint mirror

  Result<api::RegisterProviderResponse> RegisterProvider(
      const api::RegisterProviderRequest& req);
  Result<api::RegisterTaggerResponse> RegisterTagger(
      const api::RegisterTaggerRequest& req);
  Result<api::CreateProjectResponse> CreateProject(
      const api::CreateProjectRequest& req);
  Result<api::BatchUploadResourcesResponse> BatchUploadResources(
      const api::BatchUploadResourcesRequest& req);
  Result<api::BatchControlResponse> BatchControl(
      const api::BatchControlRequest& req);
  Result<api::ProjectQueryResponse> ProjectQuery(
      const api::ProjectQueryRequest& req);
  Result<api::BatchAcceptTasksResponse> BatchAcceptTasks(
      const api::BatchAcceptTasksRequest& req);
  Result<api::BatchSubmitTagsResponse> BatchSubmitTags(
      const api::BatchSubmitTagsRequest& req);
  Result<api::BatchDecideResponse> BatchDecide(
      const api::BatchDecideRequest& req);
  Result<api::StepResponse> Step(const api::StepRequest& req);
  Result<api::CheckpointResponse> Checkpoint(const api::CheckpointRequest& req);
  /// v3 observability endpoint: the server's metrics snapshot, optionally
  /// filtered by name prefix (see api::MetricsQueryRequest).
  Result<api::MetricsQueryResponse> Metrics(const api::MetricsQueryRequest& req);
  /// v4 tracing endpoint: retained request traces (span trees), newest
  /// first, filtered by min duration / endpoint (see api::TraceQueryRequest).
  Result<api::TraceQueryResponse> Traces(const api::TraceQueryRequest& req);
  /// v5 failover endpoint: flips a read replica writable (see
  /// api::PromoteRequest for the idempotency contract).
  Result<api::PromoteResponse> Promote(const api::PromoteRequest& req);

  /// The version stamped on outgoing frames. Defaults to api::kApiVersion;
  /// overridable so tests (and future downgrade shims) can exercise the
  /// server's version negotiation.
  uint32_t wire_version() const { return wire_version_; }
  void set_wire_version(uint32_t version) { wire_version_ = version; }

 private:
  template <typename Resp>
  Result<Resp> Call(const api::AnyRequest& request);

  /// Reads one whole frame off the socket (blocking).
  Result<Frame> ReadFrame();
  /// Turns a received frame into the caller-visible result.
  Result<api::AnyResponse> InterpretFrame(const Frame& frame);

  ClientOptions options_;
  Socket sock_;
  std::string inbuf_;
  uint64_t next_correlation_ = 1;
  uint32_t wire_version_ = api::kApiVersion;
  std::unordered_set<uint64_t> pending_;
  std::unordered_map<uint64_t, Result<api::AnyResponse>> ready_;
};

}  // namespace itag::net

#endif  // ITAG_NET_CLIENT_H_
