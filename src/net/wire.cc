#include "net/wire.h"

#include <cstring>
#include <utility>

#include "common/crc32.h"

namespace itag::net {

// ------------------------------------------------------------- primitives

namespace {

/// Appends `v` little-endian, independent of host byte order.
template <typename T>
void AppendLe(std::string* buf, T v) {
  char bytes[sizeof(T)];
  for (size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>(v & 0xFF);
    v = static_cast<T>(v >> 8);
  }
  buf->append(bytes, sizeof(T));
}

}  // namespace

void WireWriter::U16(uint16_t v) { AppendLe(&buf_, v); }
void WireWriter::U32(uint32_t v) { AppendLe(&buf_, v); }
void WireWriter::U64(uint64_t v) { AppendLe(&buf_, v); }

void WireWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

bool WireReader::Take(void* out, size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) { return Take(v, 1); }

namespace {

template <typename T>
bool TakeLe(WireReader* r, bool (WireReader::*take8)(uint8_t*), T* v) {
  *v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    uint8_t b;
    if (!(r->*take8)(&b)) return false;
    *v = static_cast<T>(*v | (static_cast<T>(b) << (8 * i)));
  }
  return true;
}

}  // namespace

bool WireReader::U16(uint16_t* v) { return TakeLe(this, &WireReader::U8, v); }
bool WireReader::U32(uint32_t* v) { return TakeLe(this, &WireReader::U8, v); }
bool WireReader::U64(uint64_t* v) { return TakeLe(this, &WireReader::U8, v); }

bool WireReader::I64(int64_t* v) {
  uint64_t u;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::Str(std::string* v) {
  uint32_t n;
  if (!U32(&n)) return false;
  if (data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  v->assign(data_.data() + pos_, n);
  pos_ += n;
  return true;
}

// ------------------------------------------------- field (de)serializers
//
// One Put/Get overload pair per wire-visible type, fields in struct
// declaration order. Enums are a single byte, range-checked on decode so a
// corrupt or future-version value fails the parse instead of smuggling an
// out-of-range enum into the core.

namespace {

void Put(WireWriter& w, uint32_t v) { w.U32(v); }
bool Get(WireReader& r, uint32_t* v) { return r.U32(v); }

void Put(WireWriter& w, uint64_t v) { w.U64(v); }
bool Get(WireReader& r, uint64_t* v) { return r.U64(v); }

void Put(WireWriter& w, const std::string& s) { w.Str(s); }
bool Get(WireReader& r, std::string* s) { return r.Str(s); }

void PutBool(WireWriter& w, bool v) { w.U8(v ? 1 : 0); }
bool GetBool(WireReader& r, bool* v) {
  uint8_t b;
  if (!r.U8(&b) || b > 1) return false;
  *v = b != 0;
  return true;
}

template <typename E>
void PutEnum(WireWriter& w, E v) {
  w.U8(static_cast<uint8_t>(v));
}
template <typename E>
bool GetEnum(WireReader& r, E* v, uint8_t max_value) {
  uint8_t b;
  if (!r.U8(&b) || b > max_value) return false;
  *v = static_cast<E>(b);
  return true;
}

void Put(WireWriter& w, const Status& s) { EncodeStatus(w, s); }
bool Get(WireReader& r, Status* s) { return DecodeStatus(r, s); }

// Forward declarations so the PutVec/GetVec templates below resolve
// element overloads defined later in this file (the element types live in
// itag::core / itag::api, so ADL cannot find these).
void Put(WireWriter& w, const core::QualityPoint& p);
bool Get(WireReader& r, core::QualityPoint* p);
void Put(WireWriter& w, const core::TagFrequency& t);
bool Get(WireReader& r, core::TagFrequency* t);
void Put(WireWriter& w, const core::QualityManager::ResourceDetail& d);
bool Get(WireReader& r, core::QualityManager::ResourceDetail* d);
void Put(WireWriter& w, const core::AcceptedTask& t);
bool Get(WireReader& r, core::AcceptedTask* t);
void Put(WireWriter& w, const api::UploadResourceItem& m);
bool Get(WireReader& r, api::UploadResourceItem* m);
void Put(WireWriter& w, const api::ControlItem& m);
bool Get(WireReader& r, api::ControlItem* m);
void Put(WireWriter& w, const api::SubmitTagsItem& m);
bool Get(WireReader& r, api::SubmitTagsItem* m);
void Put(WireWriter& w, const api::DecideItem& m);
bool Get(WireReader& r, api::DecideItem* m);
void Put(WireWriter& w, const obs::MetricSample& m);
bool Get(WireReader& r, obs::MetricSample* m);
void Put(WireWriter& w, const obs::SpanAnnotation& m);
bool Get(WireReader& r, obs::SpanAnnotation* m);
void Put(WireWriter& w, const obs::SpanRecord& m);
bool Get(WireReader& r, obs::SpanRecord* m);
void Put(WireWriter& w, const obs::TraceRecord& m);
bool Get(WireReader& r, obs::TraceRecord* m);

template <typename T>
void PutVec(WireWriter& w, const std::vector<T>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (const T& e : v) Put(w, e);
}
template <typename T>
bool GetVec(WireReader& r, std::vector<T>* v) {
  uint32_t n;
  if (!r.U32(&n)) return false;
  v->clear();
  // No reserve(n): every element consumes >= 1 byte, so a lying count
  // fails fast on read instead of pre-allocating gigabytes.
  for (uint32_t i = 0; i < n; ++i) {
    T e{};
    if (!Get(r, &e)) return false;
    v->push_back(std::move(e));
  }
  return true;
}

// ---- shared core structs

void Put(WireWriter& w, const core::ProjectSpec& s) {
  w.Str(s.name);
  PutEnum(w, s.kind);
  w.Str(s.description);
  w.U32(s.budget);
  w.U32(s.pay_cents);
  PutEnum(w, s.platform);
  PutEnum(w, s.strategy);
}
bool Get(WireReader& r, core::ProjectSpec* s) {
  return r.Str(&s->name) &&
         GetEnum(r, &s->kind,
                 static_cast<uint8_t>(tagging::ResourceKind::kScientificPaper)) &&
         r.Str(&s->description) && r.U32(&s->budget) && r.U32(&s->pay_cents) &&
         GetEnum(r, &s->platform,
                 static_cast<uint8_t>(core::PlatformChoice::kAudience)) &&
         GetEnum(r, &s->strategy,
                 static_cast<uint8_t>(strategy::StrategyKind::kEstimatedGain));
}

void Put(WireWriter& w, const core::ProjectInfo& i) {
  w.U64(i.id);
  w.U64(i.provider);
  Put(w, i.spec);
  PutEnum(w, i.state);
  w.U32(i.budget_remaining);
  w.U32(i.tasks_completed);
  w.U64(i.num_resources);
  w.F64(i.quality);
  w.F64(i.projected_gain);
}
bool Get(WireReader& r, core::ProjectInfo* i) {
  uint64_t num_resources = 0;
  bool ok =
      r.U64(&i->id) && r.U64(&i->provider) && Get(r, &i->spec) &&
      GetEnum(r, &i->state,
              static_cast<uint8_t>(core::ProjectState::kStopped)) &&
      r.U32(&i->budget_remaining) && r.U32(&i->tasks_completed) &&
      r.U64(&num_resources) && r.F64(&i->quality) && r.F64(&i->projected_gain);
  i->num_resources = static_cast<size_t>(num_resources);
  return ok;
}

void Put(WireWriter& w, const core::QualityPoint& p) {
  w.U32(p.tasks);
  w.F64(p.quality);
  w.I64(p.time);
}
bool Get(WireReader& r, core::QualityPoint* p) {
  return r.U32(&p->tasks) && r.F64(&p->quality) && r.I64(&p->time);
}

void Put(WireWriter& w, const core::TagFrequency& t) {
  w.Str(t.tag);
  w.U32(t.count);
}
bool Get(WireReader& r, core::TagFrequency* t) {
  return r.Str(&t->tag) && r.U32(&t->count);
}

void Put(WireWriter& w, const core::QualityManager::ResourceDetail& d) {
  w.U32(d.resource);
  w.U32(d.posts);
  w.F64(d.quality);
  w.F64(d.projected_gain_next_task);
  PutBool(w, d.stopped);
  PutVec(w, d.top_tags);
}
bool Get(WireReader& r, core::QualityManager::ResourceDetail* d) {
  return r.U32(&d->resource) && r.U32(&d->posts) && r.F64(&d->quality) &&
         r.F64(&d->projected_gain_next_task) && GetBool(r, &d->stopped) &&
         GetVec(r, &d->top_tags);
}

void Put(WireWriter& w, const core::AcceptedTask& t) {
  w.U64(t.handle);
  w.U64(t.project);
  w.U32(t.resource);
  w.Str(t.uri);
  w.U32(t.pay_cents);
}
bool Get(WireReader& r, core::AcceptedTask* t) {
  return r.U64(&t->handle) && r.U64(&t->project) && r.U32(&t->resource) &&
         r.Str(&t->uri) && r.U32(&t->pay_cents);
}

void Put(WireWriter& w, const api::BatchOutcome& o) {
  PutVec(w, o.statuses);
  w.U64(o.ok_count);
}
bool Get(WireReader& r, api::BatchOutcome* o) {
  uint64_t ok_count = 0;
  bool ok = GetVec(r, &o->statuses) && r.U64(&ok_count);
  o->ok_count = static_cast<size_t>(ok_count);
  return ok;
}

// ---- request structs

void Put(WireWriter& w, const api::RegisterProviderRequest& m) {
  w.Str(m.name);
}
bool Get(WireReader& r, api::RegisterProviderRequest* m) {
  return r.Str(&m->name);
}

void Put(WireWriter& w, const api::RegisterTaggerRequest& m) { w.Str(m.name); }
bool Get(WireReader& r, api::RegisterTaggerRequest* m) {
  return r.Str(&m->name);
}

void Put(WireWriter& w, const api::CreateProjectRequest& m) {
  w.U64(m.provider);
  Put(w, m.spec);
}
bool Get(WireReader& r, api::CreateProjectRequest* m) {
  return r.U64(&m->provider) && Get(r, &m->spec);
}

void Put(WireWriter& w, const api::UploadResourceItem& m) {
  PutEnum(w, m.kind);
  w.Str(m.uri);
  w.Str(m.description);
  PutVec(w, m.initial_tags);
}
bool Get(WireReader& r, api::UploadResourceItem* m) {
  return GetEnum(r, &m->kind,
                 static_cast<uint8_t>(
                     tagging::ResourceKind::kScientificPaper)) &&
         r.Str(&m->uri) && r.Str(&m->description) &&
         GetVec(r, &m->initial_tags);
}

void Put(WireWriter& w, const api::BatchUploadResourcesRequest& m) {
  w.U64(m.project);
  PutVec(w, m.items);
}
bool Get(WireReader& r, api::BatchUploadResourcesRequest* m) {
  return r.U64(&m->project) && GetVec(r, &m->items);
}

void Put(WireWriter& w, const api::ControlItem& m) {
  PutEnum(w, m.action);
  w.U32(m.resource);
  w.U32(m.budget_tasks);
  PutEnum(w, m.strategy);
}
bool Get(WireReader& r, api::ControlItem* m) {
  return GetEnum(r, &m->action,
                 static_cast<uint8_t>(api::ControlAction::kSwitchStrategy)) &&
         r.U32(&m->resource) && r.U32(&m->budget_tasks) &&
         GetEnum(r, &m->strategy,
                 static_cast<uint8_t>(strategy::StrategyKind::kEstimatedGain));
}

void Put(WireWriter& w, const api::BatchControlRequest& m) {
  w.U64(m.project);
  PutVec(w, m.items);
}
bool Get(WireReader& r, api::BatchControlRequest* m) {
  return r.U64(&m->project) && GetVec(r, &m->items);
}

void Put(WireWriter& w, const api::ProjectQueryRequest& m) {
  w.U64(m.project);
  PutBool(w, m.include_feed);
  PutVec(w, m.detail_resources);
}
bool Get(WireReader& r, api::ProjectQueryRequest* m) {
  return r.U64(&m->project) && GetBool(r, &m->include_feed) &&
         GetVec(r, &m->detail_resources);
}

void Put(WireWriter& w, const api::BatchAcceptTasksRequest& m) {
  w.U64(m.tagger);
  w.U64(m.project);
  w.U64(static_cast<uint64_t>(m.count));
}
bool Get(WireReader& r, api::BatchAcceptTasksRequest* m) {
  uint64_t count = 0;
  bool ok = r.U64(&m->tagger) && r.U64(&m->project) && r.U64(&count);
  m->count = static_cast<size_t>(count);
  return ok;
}

void Put(WireWriter& w, const api::SubmitTagsItem& m) {
  w.U64(m.tagger);
  w.U64(m.handle);
  PutVec(w, m.tags);
}
bool Get(WireReader& r, api::SubmitTagsItem* m) {
  return r.U64(&m->tagger) && r.U64(&m->handle) && GetVec(r, &m->tags);
}

void Put(WireWriter& w, const api::BatchSubmitTagsRequest& m) {
  PutVec(w, m.items);
}
bool Get(WireReader& r, api::BatchSubmitTagsRequest* m) {
  return GetVec(r, &m->items);
}

void Put(WireWriter& w, const api::DecideItem& m) {
  w.U64(m.handle);
  PutBool(w, m.approve);
}
bool Get(WireReader& r, api::DecideItem* m) {
  return r.U64(&m->handle) && GetBool(r, &m->approve);
}

void Put(WireWriter& w, const api::BatchDecideRequest& m) {
  w.U64(m.provider);
  PutVec(w, m.items);
}
bool Get(WireReader& r, api::BatchDecideRequest* m) {
  return r.U64(&m->provider) && GetVec(r, &m->items);
}

void Put(WireWriter& w, const api::StepRequest& m) { w.I64(m.ticks); }
bool Get(WireReader& r, api::StepRequest* m) { return r.I64(&m->ticks); }

void Put(WireWriter& w, const api::CheckpointRequest& m) { (void)w; (void)m; }
bool Get(WireReader& r, api::CheckpointRequest* m) {
  (void)r;
  (void)m;
  return true;  // empty payload; DecodeInto's AtEnd() rejects extra bytes
}

void Put(WireWriter& w, const api::MetricsQueryRequest& m) {
  w.Str(m.prefix);
}
bool Get(WireReader& r, api::MetricsQueryRequest* m) {
  return r.Str(&m->prefix);
}

void Put(WireWriter& w, const api::TraceQueryRequest& m) {
  w.U64(m.min_duration_us);
  w.Str(m.endpoint);
  w.U32(m.max_traces);
}
bool Get(WireReader& r, api::TraceQueryRequest* m) {
  return r.U64(&m->min_duration_us) && r.Str(&m->endpoint) &&
         r.U32(&m->max_traces);
}

// ---- response structs

void Put(WireWriter& w, const api::RegisterProviderResponse& m) {
  Put(w, m.status);
  w.U64(m.provider);
}
bool Get(WireReader& r, api::RegisterProviderResponse* m) {
  return Get(r, &m->status) && r.U64(&m->provider);
}

void Put(WireWriter& w, const api::RegisterTaggerResponse& m) {
  Put(w, m.status);
  w.U64(m.tagger);
}
bool Get(WireReader& r, api::RegisterTaggerResponse* m) {
  return Get(r, &m->status) && r.U64(&m->tagger);
}

void Put(WireWriter& w, const api::CreateProjectResponse& m) {
  Put(w, m.status);
  w.U64(m.project);
}
bool Get(WireReader& r, api::CreateProjectResponse* m) {
  return Get(r, &m->status) && r.U64(&m->project);
}

void Put(WireWriter& w, const api::BatchUploadResourcesResponse& m) {
  Put(w, m.outcome);
  PutVec(w, m.resources);
}
bool Get(WireReader& r, api::BatchUploadResourcesResponse* m) {
  return Get(r, &m->outcome) && GetVec(r, &m->resources);
}

void Put(WireWriter& w, const api::BatchControlResponse& m) {
  Put(w, m.outcome);
}
bool Get(WireReader& r, api::BatchControlResponse* m) {
  return Get(r, &m->outcome);
}

void Put(WireWriter& w, const api::ProjectQueryResponse& m) {
  Put(w, m.status);
  Put(w, m.info);
  PutVec(w, m.feed);
  PutVec(w, m.details);
  Put(w, m.detail_outcome);
}
bool Get(WireReader& r, api::ProjectQueryResponse* m) {
  return Get(r, &m->status) && Get(r, &m->info) && GetVec(r, &m->feed) &&
         GetVec(r, &m->details) && Get(r, &m->detail_outcome);
}

void Put(WireWriter& w, const api::BatchAcceptTasksResponse& m) {
  Put(w, m.status);
  PutVec(w, m.tasks);
}
bool Get(WireReader& r, api::BatchAcceptTasksResponse* m) {
  return Get(r, &m->status) && GetVec(r, &m->tasks);
}

void Put(WireWriter& w, const api::BatchSubmitTagsResponse& m) {
  Put(w, m.outcome);
}
bool Get(WireReader& r, api::BatchSubmitTagsResponse* m) {
  return Get(r, &m->outcome);
}

void Put(WireWriter& w, const api::BatchDecideResponse& m) {
  Put(w, m.outcome);
}
bool Get(WireReader& r, api::BatchDecideResponse* m) {
  return Get(r, &m->outcome);
}

void Put(WireWriter& w, const api::StepResponse& m) {
  Put(w, m.status);
  w.I64(m.now);
}
bool Get(WireReader& r, api::StepResponse* m) {
  return Get(r, &m->status) && r.I64(&m->now);
}

void Put(WireWriter& w, const api::CheckpointResponse& m) {
  Put(w, m.status);
  PutBool(w, m.durable);
  w.U64(m.tables);
  w.U64(m.rows);
}
bool Get(WireReader& r, api::CheckpointResponse* m) {
  return Get(r, &m->status) && GetBool(r, &m->durable) && r.U64(&m->tables) &&
         r.U64(&m->rows);
}

// ---- observability structs

void Put(WireWriter& w, const obs::MetricSample& m) {
  w.Str(m.name);
  PutEnum(w, m.kind);
  w.U64(m.count);
  w.I64(m.gauge);
  w.U64(m.sum);
  PutVec(w, m.buckets);
}
bool Get(WireReader& r, obs::MetricSample* m) {
  return r.Str(&m->name) &&
         GetEnum(r, &m->kind,
                 static_cast<uint8_t>(obs::MetricKind::kHistogram)) &&
         r.U64(&m->count) && r.I64(&m->gauge) && r.U64(&m->sum) &&
         GetVec(r, &m->buckets) &&
         // The bucket model is fixed (kHistogramBuckets for histograms,
         // empty otherwise); any other length is a malformed sample, not
         // something ApproxQuantile/RenderText should be handed.
         (m->buckets.empty() ||
          m->buckets.size() == obs::kHistogramBuckets);
}

void Put(WireWriter& w, const api::MetricsQueryResponse& m) {
  Put(w, m.status);
  PutVec(w, m.metrics);
}
bool Get(WireReader& r, api::MetricsQueryResponse* m) {
  return Get(r, &m->status) && GetVec(r, &m->metrics);
}

// ---- tracing structs (v4 TraceQuery)

void Put(WireWriter& w, const obs::SpanAnnotation& m) {
  w.Str(m.key);
  w.Str(m.value);
}
bool Get(WireReader& r, obs::SpanAnnotation* m) {
  return r.Str(&m->key) && r.Str(&m->value);
}

void Put(WireWriter& w, const obs::SpanRecord& m) {
  w.U64(m.span_id);
  w.U64(m.parent_span_id);
  w.Str(m.name);
  w.U64(m.start_ns);
  w.U64(m.end_ns);
  PutVec(w, m.annotations);
}
bool Get(WireReader& r, obs::SpanRecord* m) {
  return r.U64(&m->span_id) && r.U64(&m->parent_span_id) && r.Str(&m->name) &&
         r.U64(&m->start_ns) && r.U64(&m->end_ns) &&
         GetVec(r, &m->annotations) &&
         // A span that ends before it starts (or a zero id) cannot have
         // been produced by the tracer; reject it as malformed rather than
         // letting renderers underflow the duration.
         m->span_id != 0 && m->end_ns >= m->start_ns;
}

void Put(WireWriter& w, const obs::TraceRecord& m) {
  w.U64(m.trace_id);
  PutBool(w, m.sampled);
  w.U64(m.duration_ns);
  w.Str(m.endpoint);
  PutVec(w, m.spans);
}
bool Get(WireReader& r, obs::TraceRecord* m) {
  return r.U64(&m->trace_id) && GetBool(r, &m->sampled) &&
         r.U64(&m->duration_ns) && r.Str(&m->endpoint) && GetVec(r, &m->spans);
}

void Put(WireWriter& w, const api::TraceQueryResponse& m) {
  Put(w, m.status);
  PutVec(w, m.traces);
}
bool Get(WireReader& r, api::TraceQueryResponse* m) {
  return Get(r, &m->status) && GetVec(r, &m->traces);
}

// ---- replication admin (v5 Promote)

void Put(WireWriter& w, const api::PromoteRequest& m) { (void)w; (void)m; }
bool Get(WireReader& r, api::PromoteRequest* m) {
  (void)r;
  (void)m;
  return true;  // empty payload; DecodeInto's AtEnd() rejects extra bytes
}

void Put(WireWriter& w, const api::PromoteResponse& m) {
  Put(w, m.status);
  PutBool(w, m.was_replica);
}
bool Get(WireReader& r, api::PromoteResponse* m) {
  return Get(r, &m->status) && GetBool(r, &m->was_replica);
}

/// Parses `payload` as message type T (rejecting trailing bytes) and stores
/// it into the variant `*out`.
template <typename T, typename Variant>
Status DecodeInto(std::string_view payload, Variant* out, const char* name) {
  WireReader r(payload);
  T msg{};
  if (!Get(r, &msg) || !r.AtEnd()) {
    return Status::InvalidArgument(std::string("malformed ") + name +
                                   " payload");
  }
  *out = std::move(msg);
  return Status::OK();
}

}  // namespace

// ----------------------------------------------------------------- Status

void EncodeStatus(WireWriter& w, const Status& status) {
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
}

bool DecodeStatus(WireReader& r, Status* out) {
  uint8_t code;
  std::string message;
  if (!r.U8(&code) || code > static_cast<uint8_t>(StatusCode::kInternal) ||
      !r.Str(&message)) {
    return false;
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

// ----------------------------------------------------------------- frames

namespace {

std::string EncodeFrame(FrameKind kind, uint16_t type, uint64_t correlation,
                        uint32_t version, const std::string& payload) {
  WireWriter w;
  w.U32(kMagic);
  w.U32(version);
  w.U8(static_cast<uint8_t>(kind));
  w.U8(0);  // reserved
  w.U16(type);
  w.U64(correlation);
  w.U32(static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32(w.buffer().data(), w.buffer().size());
  crc = Crc32Extend(crc, payload.data(), payload.size());
  w.U32(crc);
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

}  // namespace

std::string EncodeRequestFrame(uint64_t correlation,
                               const api::AnyRequest& request,
                               uint32_t version) {
  return EncodeFrame(FrameKind::kRequest, TypeTagOf(request), correlation,
                     version, EncodeRequestPayload(request));
}

std::string EncodeResponseFrame(uint64_t correlation,
                                const api::AnyResponse& response) {
  return EncodeFrame(FrameKind::kResponse, TypeTagOf(response), correlation,
                     api::kApiVersion, EncodeResponsePayload(response));
}

std::string EncodeErrorFrame(uint64_t correlation, const Status& error,
                             uint16_t type) {
  WireWriter w;
  EncodeStatus(w, error);
  return EncodeFrame(FrameKind::kError, type, correlation, api::kApiVersion,
                     w.buffer());
}

Status TryDecodeFrame(std::string_view buf, Frame* out, size_t* consumed,
                      size_t max_frame_bytes) {
  *consumed = 0;
  if (buf.size() < kHeaderSize) return Status::OK();
  WireReader r(buf.substr(0, kHeaderSize));
  uint32_t magic = 0, version = 0, payload_size = 0, crc = 0;
  uint8_t kind = 0, reserved = 0;
  uint16_t type = 0;
  uint64_t correlation = 0;
  r.U32(&magic);
  r.U32(&version);
  r.U8(&kind);
  r.U8(&reserved);
  r.U16(&type);
  r.U64(&correlation);
  r.U32(&payload_size);
  r.U32(&crc);
  if (magic != kMagic) return Status::Corruption("bad frame magic");
  if (kind > static_cast<uint8_t>(FrameKind::kReplAck)) {
    return Status::Corruption("bad frame kind " + std::to_string(kind));
  }
  if (reserved != 0) {
    return Status::Corruption("nonzero reserved header byte");
  }
  if (payload_size > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload_size) +
        " bytes exceeds cap of " + std::to_string(max_frame_bytes));
  }
  if (buf.size() - kHeaderSize < payload_size) return Status::OK();
  uint32_t expected = Crc32(buf.data(), kHeaderSize - sizeof(uint32_t));
  expected = Crc32Extend(expected, buf.data() + kHeaderSize, payload_size);
  if (expected != crc) return Status::Corruption("frame crc mismatch");
  out->kind = static_cast<FrameKind>(kind);
  out->version = version;
  out->type = type;
  out->correlation = correlation;
  out->payload.assign(buf.data() + kHeaderSize, payload_size);
  *consumed = kHeaderSize + payload_size;
  return Status::OK();
}

// --------------------------------------------------------------- payloads

uint16_t TypeTagOf(const api::AnyRequest& request) {
  return static_cast<uint16_t>(request.index());
}

uint16_t TypeTagOf(const api::AnyResponse& response) {
  return static_cast<uint16_t>(response.index());
}

std::string EncodeRequestPayload(const api::AnyRequest& request) {
  WireWriter w;
  std::visit([&w](const auto& m) { Put(w, m); }, request);
  return w.Take();
}

std::string EncodeResponsePayload(const api::AnyResponse& response) {
  WireWriter w;
  std::visit([&w](const auto& m) { Put(w, m); }, response);
  return w.Take();
}

Status DecodeRequestPayload(uint16_t type, std::string_view payload,
                            api::AnyRequest* out) {
  static_assert(api::kRequestTypeCount == 14,
                "new AnyRequest alternative: extend the codec switches");
  const char* name = api::RequestTypeName(type);
  switch (type) {
    case 0:
      return DecodeInto<api::RegisterProviderRequest>(payload, out, name);
    case 1:
      return DecodeInto<api::RegisterTaggerRequest>(payload, out, name);
    case 2:
      return DecodeInto<api::CreateProjectRequest>(payload, out, name);
    case 3:
      return DecodeInto<api::BatchUploadResourcesRequest>(payload, out, name);
    case 4:
      return DecodeInto<api::BatchControlRequest>(payload, out, name);
    case 5:
      return DecodeInto<api::ProjectQueryRequest>(payload, out, name);
    case 6:
      return DecodeInto<api::BatchAcceptTasksRequest>(payload, out, name);
    case 7:
      return DecodeInto<api::BatchSubmitTagsRequest>(payload, out, name);
    case 8:
      return DecodeInto<api::BatchDecideRequest>(payload, out, name);
    case 9:
      return DecodeInto<api::StepRequest>(payload, out, name);
    case 10:
      return DecodeInto<api::CheckpointRequest>(payload, out, name);
    case 11:
      return DecodeInto<api::MetricsQueryRequest>(payload, out, name);
    case 12:
      return DecodeInto<api::TraceQueryRequest>(payload, out, name);
    case 13:
      return DecodeInto<api::PromoteRequest>(payload, out, name);
    default:
      return Status::Unimplemented("unknown request type tag " +
                                   std::to_string(type));
  }
}

Status DecodeResponsePayload(uint16_t type, std::string_view payload,
                             api::AnyResponse* out) {
  const char* name = api::RequestTypeName(type);
  switch (type) {
    case 0:
      return DecodeInto<api::RegisterProviderResponse>(payload, out, name);
    case 1:
      return DecodeInto<api::RegisterTaggerResponse>(payload, out, name);
    case 2:
      return DecodeInto<api::CreateProjectResponse>(payload, out, name);
    case 3:
      return DecodeInto<api::BatchUploadResourcesResponse>(payload, out, name);
    case 4:
      return DecodeInto<api::BatchControlResponse>(payload, out, name);
    case 5:
      return DecodeInto<api::ProjectQueryResponse>(payload, out, name);
    case 6:
      return DecodeInto<api::BatchAcceptTasksResponse>(payload, out, name);
    case 7:
      return DecodeInto<api::BatchSubmitTagsResponse>(payload, out, name);
    case 8:
      return DecodeInto<api::BatchDecideResponse>(payload, out, name);
    case 9:
      return DecodeInto<api::StepResponse>(payload, out, name);
    case 10:
      return DecodeInto<api::CheckpointResponse>(payload, out, name);
    case 11:
      return DecodeInto<api::MetricsQueryResponse>(payload, out, name);
    case 12:
      return DecodeInto<api::TraceQueryResponse>(payload, out, name);
    case 13:
      return DecodeInto<api::PromoteResponse>(payload, out, name);
    default:
      return Status::Unimplemented("unknown response type tag " +
                                   std::to_string(type));
  }
}

// ------------------------------------------------------------- replication

std::string EncodeReplSubscribeFrame(uint64_t correlation,
                                     const ReplSubscribe& msg,
                                     uint32_t version) {
  WireWriter w;
  w.U32(msg.num_dbs);
  w.U32(msg.num_shards);
  w.U64(msg.seed);
  PutVec(w, msg.from_lsns);
  return EncodeFrame(FrameKind::kReplSubscribe, 0, correlation, version,
                     w.buffer());
}

std::string EncodeReplBatchFrame(uint64_t correlation, const ReplBatch& msg) {
  WireWriter w;
  w.U32(msg.db_index);
  w.U64(msg.head_lsn);
  w.U64(msg.head_bytes);
  w.Str(msg.record);
  return EncodeFrame(FrameKind::kReplBatch, 0, correlation, api::kApiVersion,
                     w.buffer());
}

std::string EncodeReplAckFrame(uint64_t correlation, const ReplAck& msg) {
  WireWriter w;
  PutVec(w, msg.applied_lsns);
  return EncodeFrame(FrameKind::kReplAck, 0, correlation, api::kApiVersion,
                     w.buffer());
}

Status DecodeReplSubscribe(const Frame& frame, ReplSubscribe* out) {
  WireReader r(frame.payload);
  ReplSubscribe msg;
  if (!r.U32(&msg.num_dbs) || !r.U32(&msg.num_shards) || !r.U64(&msg.seed) ||
      !GetVec(r, &msg.from_lsns) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed ReplSubscribe payload");
  }
  *out = std::move(msg);
  return Status::OK();
}

Status DecodeReplBatch(const Frame& frame, ReplBatch* out) {
  WireReader r(frame.payload);
  ReplBatch msg;
  if (!r.U32(&msg.db_index) || !r.U64(&msg.head_lsn) ||
      !r.U64(&msg.head_bytes) || !r.Str(&msg.record) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed ReplBatch payload");
  }
  *out = std::move(msg);
  return Status::OK();
}

Status DecodeReplAck(const Frame& frame, ReplAck* out) {
  WireReader r(frame.payload);
  ReplAck msg;
  if (!GetVec(r, &msg.applied_lsns) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed ReplAck payload");
  }
  *out = std::move(msg);
  return Status::OK();
}

}  // namespace itag::net
