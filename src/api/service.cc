#include "api/service.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace itag::api {

namespace {

/// Appends `status` to the outcome, counting successes.
void Record(BatchOutcome* outcome, Status status) {
  if (status.ok()) ++outcome->ok_count;
  outcome->statuses.push_back(std::move(status));
}

/// Per-request-type metric pointers, registered once per process under
/// `api.<Endpoint>.requests` / `api.<Endpoint>.latency_us` and cached so
/// the per-call cost is two relaxed atomic adds.
struct EndpointMetrics {
  obs::Counter* requests;
  obs::Histogram* latency;
};

const EndpointMetrics& MetricsForType(size_t type) {
  static const std::array<EndpointMetrics, kRequestTypeCount> kMetrics = [] {
    std::array<EndpointMetrics, kRequestTypeCount> a{};
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    for (size_t i = 0; i < kRequestTypeCount; ++i) {
      std::string base = std::string("api.") + RequestTypeName(i);
      a[i] = {reg.GetCounter(base + ".requests"),
              reg.GetHistogram(base + ".latency_us")};
    }
    return a;
  }();
  return kMetrics[type];
}

/// `api.<Endpoint>` span names by type index, interned once so the span
/// constructor never concatenates on the hot path.
const char* SpanNameForType(size_t type) {
  static const std::array<std::string, kRequestTypeCount> kNames = [] {
    std::array<std::string, kRequestTypeCount> a{};
    for (size_t i = 0; i < kRequestTypeCount; ++i) {
      a[i] = std::string("api.") + RequestTypeName(i);
    }
    return a;
  }();
  return kNames[type].c_str();
}

/// RAII per-endpoint probe: counts the call on entry, observes its wall
/// time on exit, and — when the calling thread carries a recorded
/// TraceContext — opens the endpoint child span of the request's trace.
/// Instantiated at the top of every endpoint with that endpoint's
/// compile-time type index.
class ApiCallScope {
 public:
  explicit ApiCallScope(size_t type)
      : span_(SpanNameForType(type)), timer_(MetricsForType(type).latency) {
    MetricsForType(type).requests->Inc();
  }

 private:
  obs::Span span_;
  obs::ScopedTimer timer_;
};

/// Current simulated time of either backend.
Tick NowOf(core::ITagSystem* system) { return system->clock().Now(); }
Tick NowOf(core::ShardedSystem* sharded) { return sharded->Now(); }

/// The typed per-item / whole-call admission failure.
Status AdmissionDenied(uint64_t project) {
  return Status::ResourceExhausted("project " + std::to_string(project) +
                                   " admission limit exceeded");
}

}  // namespace

AdmissionController::AdmissionController(uint64_t rps)
    : rps_(static_cast<double>(rps)),
      rejected_(obs::MetricsRegistry::Default().GetCounter(
          "api.admission.rejected")) {}

AdmissionController::Bucket& AdmissionController::BucketFor(
    uint64_t project) {
  auto [it, inserted] = buckets_.try_emplace(project);
  if (inserted) {
    it->second.tokens = rps_;
    it->second.last = std::chrono::steady_clock::now();
  }
  return it->second;
}

void AdmissionController::RefillLocked(Bucket* bucket) {
  auto now = std::chrono::steady_clock::now();
  double elapsed = std::chrono::duration<double>(now - bucket->last).count();
  bucket->last = now;
  bucket->tokens = std::min(rps_, bucket->tokens + elapsed * rps_);
}

uint64_t AdmissionController::AdmitUpTo(uint64_t project, uint64_t want) {
  if (want == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = BucketFor(project);
  RefillLocked(&bucket);
  uint64_t grant =
      std::min(want, static_cast<uint64_t>(bucket.tokens));
  bucket.tokens -= static_cast<double>(grant);
  if (grant < want) rejected_->Inc(want - grant);
  return grant;
}

bool AdmissionController::AdmitExactly(uint64_t project, uint64_t want) {
  if (want == 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = BucketFor(project);
  RefillLocked(&bucket);
  if (static_cast<uint64_t>(bucket.tokens) < want) {
    rejected_->Inc(want);
    return false;
  }
  bucket.tokens -= static_cast<double>(want);
  return true;
}

Service::Service(core::ITagSystemOptions options)
    : owned_(std::make_unique<core::ITagSystem>(std::move(options))),
      backend_(owned_.get()) {}

Service::Service(core::ITagSystem* system) : backend_(system) {}

Service::Service(core::ShardedSystemOptions options)
    : owned_sharded_(
          std::make_unique<core::ShardedSystem>(std::move(options))),
      backend_(owned_sharded_.get()) {}

Service::Service(core::ShardedSystem* sharded) : backend_(sharded) {}

Status Service::Init() {
  if (owned_ != nullptr) return owned_->Init();
  if (owned_sharded_ != nullptr) return owned_sharded_->Init();
  return Status::OK();
}

void Service::SetAdmissionLimit(uint64_t rps) {
  admission_ =
      rps == 0 ? nullptr : std::make_unique<AdmissionController>(rps);
}

void Service::SetReplicaMode(const std::string& leader_addr) {
  leader_addr_ = leader_addr;
  replica_.store(true, std::memory_order_release);
}

Status Service::ReplicaRejected() const {
  return Status::FailedPrecondition(
      "read replica rejects writes; redirect to leader=" + leader_addr_);
}

RegisterProviderResponse Service::RegisterProvider(
    const RegisterProviderRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<RegisterProviderRequest>);
  RegisterProviderResponse resp;
  if (replica_mode()) {
    resp.status = ReplicaRejected();
    return resp;
  }
  if (req.name.empty()) {
    resp.status = Status::InvalidArgument("provider name must be non-empty");
    return resp;
  }
  std::visit(
      [&](auto* sys) {
        Result<core::ProviderId> r = sys->RegisterProvider(req.name);
        resp.status = r.status();
        if (r.ok()) resp.provider = r.value();
      },
      backend_);
  return resp;
}

RegisterTaggerResponse Service::RegisterTagger(
    const RegisterTaggerRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<RegisterTaggerRequest>);
  RegisterTaggerResponse resp;
  if (replica_mode()) {
    resp.status = ReplicaRejected();
    return resp;
  }
  if (req.name.empty()) {
    resp.status = Status::InvalidArgument("tagger name must be non-empty");
    return resp;
  }
  std::visit(
      [&](auto* sys) {
        Result<core::UserTaggerId> r = sys->RegisterTagger(req.name);
        resp.status = r.status();
        if (r.ok()) resp.tagger = r.value();
      },
      backend_);
  return resp;
}

CreateProjectResponse Service::CreateProject(const CreateProjectRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<CreateProjectRequest>);
  CreateProjectResponse resp;
  if (replica_mode()) {
    resp.status = ReplicaRejected();
    return resp;
  }
  if (req.spec.name.empty()) {
    resp.status = Status::InvalidArgument("project name must be non-empty");
    return resp;
  }
  std::visit(
      [&](auto* sys) {
        Result<core::ProjectId> r = sys->CreateProject(req.provider, req.spec);
        resp.status = r.status();
        if (r.ok()) resp.project = r.value();
      },
      backend_);
  return resp;
}

BatchUploadResourcesResponse Service::BatchUploadResources(
    const BatchUploadResourcesRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<BatchUploadResourcesRequest>);
  BatchUploadResourcesResponse resp;
  resp.outcome.statuses.resize(req.items.size());
  resp.resources.assign(req.items.size(), tagging::kInvalidResource);
  if (replica_mode()) {
    for (Status& s : resp.outcome.statuses) s = ReplicaRejected();
    return resp;
  }
  // Pre-validate, then upload the valid items as one backend batch — a
  // single routed, locked pass on the sharded core. `routed` maps backend
  // results back to the request slots that passed validation.
  std::vector<core::ResourceUpload> uploads;
  std::vector<size_t> routed;
  for (size_t i = 0; i < req.items.size(); ++i) {
    const UploadResourceItem& item = req.items[i];
    if (item.uri.empty()) {
      resp.outcome.statuses[i] =
          Status::InvalidArgument("resource uri must be non-empty");
    } else {
      uploads.push_back(
          {item.kind, item.uri, item.description, item.initial_tags});
      routed.push_back(i);
    }
  }
  // Admission: the granted prefix proceeds; the rest fail typed without
  // touching the backend.
  if (admission_ != nullptr && !uploads.empty()) {
    size_t granted = static_cast<size_t>(
        admission_->AdmitUpTo(req.project, uploads.size()));
    for (size_t j = granted; j < routed.size(); ++j) {
      resp.outcome.statuses[routed[j]] = AdmissionDenied(req.project);
    }
    uploads.resize(granted);
    routed.resize(granted);
  }
  std::visit(
      [&](auto* sys) {
        std::vector<tagging::ResourceId> ids;
        std::vector<Status> statuses =
            sys->UploadResourceBatch(req.project, uploads, &ids);
        for (size_t j = 0; j < statuses.size(); ++j) {
          resp.outcome.statuses[routed[j]] = std::move(statuses[j]);
          resp.resources[routed[j]] = ids[j];
        }
      },
      backend_);
  for (const Status& s : resp.outcome.statuses) {
    if (s.ok()) ++resp.outcome.ok_count;
  }
  return resp;
}

BatchControlResponse Service::BatchControl(const BatchControlRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<BatchControlRequest>);
  BatchControlResponse resp;
  resp.outcome.statuses.reserve(req.items.size());
  if (replica_mode()) {
    for (size_t i = 0; i < req.items.size(); ++i) {
      Record(&resp.outcome, ReplicaRejected());
    }
    return resp;
  }
  size_t granted = req.items.size();
  if (admission_ != nullptr) {
    granted = static_cast<size_t>(
        admission_->AdmitUpTo(req.project, req.items.size()));
  }
  // Deliberately per-item on the sharded backend (one route + snapshot
  // refresh per verb): control batches are a console session's worth of
  // lifecycle verbs, not a bulk-ingest path like BatchUploadResources.
  std::visit(
      [&](auto* sys) {
        for (size_t i = 0; i < req.items.size(); ++i) {
          if (i >= granted) {
            Record(&resp.outcome, AdmissionDenied(req.project));
            continue;
          }
          const ControlItem& item = req.items[i];
          Status s;
          switch (item.action) {
            case ControlAction::kStart:
              s = sys->StartProject(req.project);
              break;
            case ControlAction::kPause:
              s = sys->PauseProject(req.project);
              break;
            case ControlAction::kStop:
              s = sys->StopProject(req.project);
              break;
            case ControlAction::kPromoteResource:
              s = sys->PromoteResource(req.project, item.resource);
              break;
            case ControlAction::kStopResource:
              s = sys->StopResource(req.project, item.resource);
              break;
            case ControlAction::kResumeResource:
              s = sys->ResumeResource(req.project, item.resource);
              break;
            case ControlAction::kAddBudget:
              s = item.budget_tasks == 0
                      ? Status::InvalidArgument("budget_tasks must be positive")
                      : sys->AddBudget(req.project, item.budget_tasks);
              break;
            case ControlAction::kSwitchStrategy:
              s = sys->SwitchStrategy(req.project, item.strategy);
              break;
          }
          Record(&resp.outcome, std::move(s));
        }
      },
      backend_);
  return resp;
}

ProjectQueryResponse Service::ProjectQuery(const ProjectQueryRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<ProjectQueryRequest>);
  ProjectQueryResponse resp;
  if (admission_ != nullptr && !admission_->AdmitExactly(req.project, 1)) {
    resp.status = AdmissionDenied(req.project);
    return resp;
  }
  std::visit(
      [&](auto* sys) {
        Result<core::ProjectInfo> info = sys->GetProjectInfo(req.project);
        resp.status = info.status();
        if (!info.ok()) return;
        resp.info = info.value();
        if (req.include_feed) resp.feed = sys->QualityFeed(req.project);
        resp.detail_outcome.statuses.reserve(req.detail_resources.size());
        for (tagging::ResourceId r : req.detail_resources) {
          Result<core::QualityManager::ResourceDetail> d =
              sys->GetResourceDetail(req.project, r);
          if (d.ok()) resp.details.push_back(d.value());
          Record(&resp.detail_outcome, d.status());
        }
      },
      backend_);
  return resp;
}

BatchAcceptTasksResponse Service::BatchAcceptTasks(
    const BatchAcceptTasksRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<BatchAcceptTasksRequest>);
  BatchAcceptTasksResponse resp;
  if (replica_mode()) {
    resp.status = ReplicaRejected();
    return resp;
  }
  if (req.count == 0) {
    resp.status = Status::InvalidArgument("count must be positive");
    return resp;
  }
  // All-or-nothing: a partially admitted accept would hand out fewer tasks
  // than granted tokens paid for on retry, so charge the full count.
  if (admission_ != nullptr &&
      !admission_->AdmitExactly(req.project, req.count)) {
    resp.status = AdmissionDenied(req.project);
    return resp;
  }
  std::visit(
      [&](auto* sys) {
        Result<std::vector<core::AcceptedTask>> r =
            sys->AcceptTasks(req.tagger, req.project, req.count);
        resp.status = r.status();
        if (r.ok()) resp.tasks = std::move(r).value();
      },
      backend_);
  return resp;
}

BatchSubmitTagsResponse Service::BatchSubmitTags(
    const BatchSubmitTagsRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<BatchSubmitTagsRequest>);
  BatchSubmitTagsResponse resp;
  resp.outcome.statuses.resize(req.items.size());
  if (replica_mode()) {
    for (Status& s : resp.outcome.statuses) s = ReplicaRejected();
    return resp;
  }
  // Pre-validate, then hand the valid items to the backend as one batch —
  // the sharded core groups them per shard and fans out on its pool.
  // `routed` maps backend results back to the request slots that passed.
  std::vector<core::TagSubmission> submissions;
  std::vector<size_t> routed;
  for (size_t i = 0; i < req.items.size(); ++i) {
    const SubmitTagsItem& item = req.items[i];
    if (item.handle == 0) {
      resp.outcome.statuses[i] =
          Status::InvalidArgument("handle must be non-zero");
    } else if (item.tags.empty()) {
      resp.outcome.statuses[i] =
          Status::InvalidArgument("submission must carry tags");
    } else {
      submissions.push_back({item.tagger, item.handle, item.tags});
      routed.push_back(i);
    }
  }
  std::visit(
      [&](auto* sys) {
        std::vector<Status> statuses = sys->SubmitTagsBatch(submissions);
        for (size_t j = 0; j < statuses.size(); ++j) {
          resp.outcome.statuses[routed[j]] = std::move(statuses[j]);
        }
      },
      backend_);
  for (const Status& s : resp.outcome.statuses) {
    if (s.ok()) ++resp.outcome.ok_count;
  }
  return resp;
}

std::vector<BatchSubmitTagsResponse> Service::BatchSubmitTagsMulti(
    const std::vector<BatchSubmitTagsRequest>& reqs) {
  // Metrics parity with the one-request path: N requests served by this
  // merged call bump the requests counter N times, and each observes the
  // full merged wall time (that IS the latency each request experienced).
  const EndpointMetrics& em =
      MetricsForType(kRequestTypeIndex<BatchSubmitTagsRequest>);
  em.requests->Inc(reqs.size());
  auto t0 = std::chrono::steady_clock::now();

  std::vector<BatchSubmitTagsResponse> resps(reqs.size());
  if (replica_mode()) {
    for (size_t r = 0; r < reqs.size(); ++r) {
      resps[r].outcome.statuses.assign(reqs[r].items.size(),
                                       ReplicaRejected());
    }
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    for (size_t r = 0; r < reqs.size(); ++r) em.latency->Observe(us);
    return resps;
  }
  // Same per-item validation as BatchSubmitTags, with (request, slot)
  // routing so backend statuses scatter back to the right response.
  std::vector<core::TagSubmission> submissions;
  std::vector<std::pair<size_t, size_t>> routed;
  for (size_t r = 0; r < reqs.size(); ++r) {
    resps[r].outcome.statuses.resize(reqs[r].items.size());
    for (size_t i = 0; i < reqs[r].items.size(); ++i) {
      const SubmitTagsItem& item = reqs[r].items[i];
      if (item.handle == 0) {
        resps[r].outcome.statuses[i] =
            Status::InvalidArgument("handle must be non-zero");
      } else if (item.tags.empty()) {
        resps[r].outcome.statuses[i] =
            Status::InvalidArgument("submission must carry tags");
      } else {
        submissions.push_back({item.tagger, item.handle, item.tags});
        routed.emplace_back(r, i);
      }
    }
  }
  std::visit(
      [&](auto* sys) {
        std::vector<Status> statuses = sys->SubmitTagsBatch(submissions);
        for (size_t j = 0; j < statuses.size(); ++j) {
          resps[routed[j].first].outcome.statuses[routed[j].second] =
              std::move(statuses[j]);
        }
      },
      backend_);
  for (BatchSubmitTagsResponse& resp : resps) {
    for (const Status& s : resp.outcome.statuses) {
      if (s.ok()) ++resp.outcome.ok_count;
    }
  }
  uint64_t elapsed_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  for (size_t r = 0; r < reqs.size(); ++r) em.latency->Observe(elapsed_us);
  return resps;
}

BatchDecideResponse Service::BatchDecide(const BatchDecideRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<BatchDecideRequest>);
  BatchDecideResponse resp;
  resp.outcome.statuses.resize(req.items.size());
  if (replica_mode()) {
    for (Status& s : resp.outcome.statuses) s = ReplicaRejected();
    return resp;
  }
  // Pre-validate, then let the backend group all approvals of a project into
  // one CompletePostBatch pass (per-shard-parallel on the sharded core).
  std::vector<std::pair<core::TaskHandle, bool>> decisions;
  std::vector<size_t> routed;
  for (size_t i = 0; i < req.items.size(); ++i) {
    if (req.items[i].handle == 0) {
      resp.outcome.statuses[i] =
          Status::InvalidArgument("handle must be non-zero");
    } else {
      decisions.emplace_back(req.items[i].handle, req.items[i].approve);
      routed.push_back(i);
    }
  }
  std::visit(
      [&](auto* sys) {
        std::vector<Status> statuses =
            sys->DecideBatch(req.provider, decisions);
        for (size_t j = 0; j < statuses.size(); ++j) {
          resp.outcome.statuses[routed[j]] = std::move(statuses[j]);
        }
      },
      backend_);
  for (const Status& s : resp.outcome.statuses) {
    if (s.ok()) ++resp.outcome.ok_count;
  }
  return resp;
}

StepResponse Service::Step(const StepRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<StepRequest>);
  StepResponse resp;
  if (replica_mode()) {
    resp.status = ReplicaRejected();
    std::visit([&](auto* sys) { resp.now = NowOf(sys); }, backend_);
    return resp;
  }
  std::visit(
      [&](auto* sys) {
        if (req.ticks < 0) {
          resp.status = Status::InvalidArgument("ticks must be non-negative");
        } else {
          resp.status = req.ticks == 0 ? Status::OK() : sys->Step(req.ticks);
        }
        resp.now = NowOf(sys);
      },
      backend_);
  return resp;
}

CheckpointResponse Service::Checkpoint(const CheckpointRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<CheckpointRequest>);
  (void)req;
  CheckpointResponse resp;
  std::visit(
      [&](auto* sys) {
        Result<core::CheckpointInfo> r = sys->Checkpoint();
        resp.status = r.status();
        if (r.ok()) {
          resp.durable = r.value().durable;
          resp.tables = r.value().tables;
          resp.rows = r.value().rows;
        }
      },
      backend_);
  return resp;
}

MetricsQueryResponse Service::MetricsQuery(const MetricsQueryRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<MetricsQueryRequest>);
  MetricsQueryResponse resp;
  resp.status = Status::OK();
  resp.metrics = obs::MetricsRegistry::Default().Snapshot(req.prefix);
  return resp;
}

TraceQueryResponse Service::TraceQuery(const TraceQueryRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<TraceQueryRequest>);
  TraceQueryResponse resp;
  resp.status = Status::OK();
  resp.traces = obs::Tracer::Default().Query(req.min_duration_us, req.endpoint,
                                             req.max_traces);
  return resp;
}

PromoteResponse Service::Promote(const PromoteRequest& req) {
  ApiCallScope obs_scope(kRequestTypeIndex<PromoteRequest>);
  (void)req;
  PromoteResponse resp;
  std::lock_guard<std::mutex> lock(promote_mu_);
  if (!replica_mode()) {
    resp.status =
        Status::FailedPrecondition("already writable: not a replica");
    return resp;
  }
  if (!promote_handler_) {
    resp.status =
        Status::FailedPrecondition("replica has no promote handler installed");
    return resp;
  }
  resp.status = promote_handler_();
  if (resp.status.ok()) {
    resp.was_replica = true;
    replica_.store(false, std::memory_order_release);
  }
  return resp;
}

AnyResponse Service::Dispatch(const AnyRequest& req) {
  return std::visit(
      [this](const auto& r) -> AnyResponse {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, RegisterProviderRequest>) {
          return RegisterProvider(r);
        } else if constexpr (std::is_same_v<T, RegisterTaggerRequest>) {
          return RegisterTagger(r);
        } else if constexpr (std::is_same_v<T, CreateProjectRequest>) {
          return CreateProject(r);
        } else if constexpr (std::is_same_v<T, BatchUploadResourcesRequest>) {
          return BatchUploadResources(r);
        } else if constexpr (std::is_same_v<T, BatchControlRequest>) {
          return BatchControl(r);
        } else if constexpr (std::is_same_v<T, ProjectQueryRequest>) {
          return ProjectQuery(r);
        } else if constexpr (std::is_same_v<T, BatchAcceptTasksRequest>) {
          return BatchAcceptTasks(r);
        } else if constexpr (std::is_same_v<T, BatchSubmitTagsRequest>) {
          return BatchSubmitTags(r);
        } else if constexpr (std::is_same_v<T, BatchDecideRequest>) {
          return BatchDecide(r);
        } else if constexpr (std::is_same_v<T, StepRequest>) {
          return Step(r);
        } else if constexpr (std::is_same_v<T, CheckpointRequest>) {
          return Checkpoint(r);
        } else if constexpr (std::is_same_v<T, MetricsQueryRequest>) {
          return MetricsQuery(r);
        } else if constexpr (std::is_same_v<T, TraceQueryRequest>) {
          return TraceQuery(r);
        } else {
          static_assert(std::is_same_v<T, PromoteRequest>);
          return Promote(r);
        }
      },
      req);
}

}  // namespace itag::api
