#include "api/service.h"

#include <utility>

namespace itag::api {

namespace {

/// Appends `status` to the outcome, counting successes.
void Record(BatchOutcome* outcome, Status status) {
  if (status.ok()) ++outcome->ok_count;
  outcome->statuses.push_back(std::move(status));
}

}  // namespace

Service::Service(core::ITagSystemOptions options)
    : owned_(std::make_unique<core::ITagSystem>(std::move(options))),
      system_(owned_.get()) {}

Service::Service(core::ITagSystem* system) : system_(system) {}

Status Service::Init() {
  return owned_ != nullptr ? owned_->Init() : Status::OK();
}

RegisterProviderResponse Service::RegisterProvider(
    const RegisterProviderRequest& req) {
  RegisterProviderResponse resp;
  if (req.name.empty()) {
    resp.status = Status::InvalidArgument("provider name must be non-empty");
    return resp;
  }
  Result<core::ProviderId> r = system_->RegisterProvider(req.name);
  resp.status = r.status();
  if (r.ok()) resp.provider = r.value();
  return resp;
}

RegisterTaggerResponse Service::RegisterTagger(
    const RegisterTaggerRequest& req) {
  RegisterTaggerResponse resp;
  if (req.name.empty()) {
    resp.status = Status::InvalidArgument("tagger name must be non-empty");
    return resp;
  }
  Result<core::UserTaggerId> r = system_->RegisterTagger(req.name);
  resp.status = r.status();
  if (r.ok()) resp.tagger = r.value();
  return resp;
}

CreateProjectResponse Service::CreateProject(const CreateProjectRequest& req) {
  CreateProjectResponse resp;
  if (req.spec.name.empty()) {
    resp.status = Status::InvalidArgument("project name must be non-empty");
    return resp;
  }
  Result<core::ProjectId> r = system_->CreateProject(req.provider, req.spec);
  resp.status = r.status();
  if (r.ok()) resp.project = r.value();
  return resp;
}

BatchUploadResourcesResponse Service::BatchUploadResources(
    const BatchUploadResourcesRequest& req) {
  BatchUploadResourcesResponse resp;
  resp.outcome.statuses.reserve(req.items.size());
  resp.resources.reserve(req.items.size());
  for (const UploadResourceItem& item : req.items) {
    tagging::ResourceId id = tagging::kInvalidResource;
    Status s;
    if (item.uri.empty()) {
      s = Status::InvalidArgument("resource uri must be non-empty");
    } else {
      Result<tagging::ResourceId> r = system_->UploadResource(
          req.project, item.kind, item.uri, item.description);
      s = r.status();
      if (r.ok()) {
        id = r.value();
        if (!item.initial_tags.empty()) {
          s = system_->ImportPost(req.project, id, item.initial_tags);
        }
      }
    }
    resp.resources.push_back(id);
    Record(&resp.outcome, std::move(s));
  }
  return resp;
}

BatchControlResponse Service::BatchControl(const BatchControlRequest& req) {
  BatchControlResponse resp;
  resp.outcome.statuses.reserve(req.items.size());
  for (const ControlItem& item : req.items) {
    Status s;
    switch (item.action) {
      case ControlAction::kStart:
        s = system_->StartProject(req.project);
        break;
      case ControlAction::kPause:
        s = system_->PauseProject(req.project);
        break;
      case ControlAction::kStop:
        s = system_->StopProject(req.project);
        break;
      case ControlAction::kPromoteResource:
        s = system_->PromoteResource(req.project, item.resource);
        break;
      case ControlAction::kStopResource:
        s = system_->StopResource(req.project, item.resource);
        break;
      case ControlAction::kResumeResource:
        s = system_->ResumeResource(req.project, item.resource);
        break;
      case ControlAction::kAddBudget:
        s = item.budget_tasks == 0
                ? Status::InvalidArgument("budget_tasks must be positive")
                : system_->AddBudget(req.project, item.budget_tasks);
        break;
      case ControlAction::kSwitchStrategy:
        s = system_->SwitchStrategy(req.project, item.strategy);
        break;
    }
    Record(&resp.outcome, std::move(s));
  }
  return resp;
}

ProjectQueryResponse Service::ProjectQuery(const ProjectQueryRequest& req) {
  ProjectQueryResponse resp;
  Result<core::ProjectInfo> info = system_->GetProjectInfo(req.project);
  resp.status = info.status();
  if (!info.ok()) return resp;
  resp.info = info.value();
  if (req.include_feed) resp.feed = system_->QualityFeed(req.project);
  resp.detail_outcome.statuses.reserve(req.detail_resources.size());
  for (tagging::ResourceId r : req.detail_resources) {
    Result<core::QualityManager::ResourceDetail> d =
        system_->GetResourceDetail(req.project, r);
    if (d.ok()) resp.details.push_back(d.value());
    Record(&resp.detail_outcome, d.status());
  }
  return resp;
}

BatchAcceptTasksResponse Service::BatchAcceptTasks(
    const BatchAcceptTasksRequest& req) {
  BatchAcceptTasksResponse resp;
  if (req.count == 0) {
    resp.status = Status::InvalidArgument("count must be positive");
    return resp;
  }
  Result<std::vector<core::AcceptedTask>> r =
      system_->AcceptTasks(req.tagger, req.project, req.count);
  resp.status = r.status();
  if (r.ok()) resp.tasks = std::move(r).value();
  return resp;
}

BatchSubmitTagsResponse Service::BatchSubmitTags(
    const BatchSubmitTagsRequest& req) {
  BatchSubmitTagsResponse resp;
  resp.outcome.statuses.reserve(req.items.size());
  for (const SubmitTagsItem& item : req.items) {
    Status s;
    if (item.handle == 0) {
      s = Status::InvalidArgument("handle must be non-zero");
    } else if (item.tags.empty()) {
      s = Status::InvalidArgument("submission must carry tags");
    } else {
      s = system_->SubmitTags(item.tagger, item.handle, item.tags);
    }
    Record(&resp.outcome, std::move(s));
  }
  return resp;
}

BatchDecideResponse Service::BatchDecide(const BatchDecideRequest& req) {
  BatchDecideResponse resp;
  resp.outcome.statuses.reserve(req.items.size());
  // Pre-validate, then let the facade group all approvals of a project into
  // one CompletePostBatch pass. `routed` maps facade results back to the
  // request slots that passed validation.
  std::vector<std::pair<core::TaskHandle, bool>> decisions;
  std::vector<size_t> routed;
  for (size_t i = 0; i < req.items.size(); ++i) {
    resp.outcome.statuses.emplace_back();
    if (req.items[i].handle == 0) {
      resp.outcome.statuses.back() =
          Status::InvalidArgument("handle must be non-zero");
    } else {
      decisions.emplace_back(req.items[i].handle, req.items[i].approve);
      routed.push_back(i);
    }
  }
  std::vector<Status> statuses = system_->DecideBatch(req.provider, decisions);
  for (size_t j = 0; j < statuses.size(); ++j) {
    resp.outcome.statuses[routed[j]] = std::move(statuses[j]);
  }
  for (const Status& s : resp.outcome.statuses) {
    if (s.ok()) ++resp.outcome.ok_count;
  }
  return resp;
}

StepResponse Service::Step(const StepRequest& req) {
  StepResponse resp;
  if (req.ticks < 0) {
    resp.status = Status::InvalidArgument("ticks must be non-negative");
    resp.now = system_->clock().Now();
    return resp;
  }
  resp.status = req.ticks == 0 ? Status::OK() : system_->Step(req.ticks);
  resp.now = system_->clock().Now();
  return resp;
}

AnyResponse Service::Dispatch(const AnyRequest& req) {
  return std::visit(
      [this](const auto& r) -> AnyResponse {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, RegisterProviderRequest>) {
          return RegisterProvider(r);
        } else if constexpr (std::is_same_v<T, RegisterTaggerRequest>) {
          return RegisterTagger(r);
        } else if constexpr (std::is_same_v<T, CreateProjectRequest>) {
          return CreateProject(r);
        } else if constexpr (std::is_same_v<T, BatchUploadResourcesRequest>) {
          return BatchUploadResources(r);
        } else if constexpr (std::is_same_v<T, BatchControlRequest>) {
          return BatchControl(r);
        } else if constexpr (std::is_same_v<T, ProjectQueryRequest>) {
          return ProjectQuery(r);
        } else if constexpr (std::is_same_v<T, BatchAcceptTasksRequest>) {
          return BatchAcceptTasks(r);
        } else if constexpr (std::is_same_v<T, BatchSubmitTagsRequest>) {
          return BatchSubmitTags(r);
        } else if constexpr (std::is_same_v<T, BatchDecideRequest>) {
          return BatchDecide(r);
        } else {
          static_assert(std::is_same_v<T, StepRequest>);
          return Step(r);
        }
      },
      req);
}

}  // namespace itag::api
