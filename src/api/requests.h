#ifndef ITAG_API_REQUESTS_H_
#define ITAG_API_REQUESTS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "itag/ids.h"
#include "itag/itag_system.h"
#include "itag/project.h"
#include "itag/quality_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "strategy/strategy.h"
#include "tagging/resource.h"

namespace itag::api {

/// Version of the request/response surface in this header. Bumped on any
/// incompatible change to a request or response struct; Service::version()
/// reports it so callers built against older headers can bail out early.
///
/// History: v1 — the original ten-endpoint batch surface; v2 — added the
/// Checkpoint admin endpoint (new AnyRequest/AnyResponse alternative, which
/// shifts the wire's closed type-tag space and is therefore incompatible);
/// v3 — added the MetricsQuery observability endpoint (same reason);
/// v4 — added the TraceQuery tracing endpoint (same reason);
/// v5 — added the Promote admin endpoint and the replication frame kinds
/// (ReplSubscribe/ReplBatch/ReplAck — see docs/wire-protocol.md).
inline constexpr uint32_t kApiVersion = 5;

/// True iff a peer speaking `version` can be served by this binary. The rule
/// is exact match while the surface still evolves; when a compatibility
/// window opens (serving version N and N-1), only this predicate changes.
/// Wire frontends must answer a frame that fails this check with a *typed*
/// FailedPrecondition reply — never by dropping the connection — so old
/// clients learn why they were refused (see docs/wire-protocol.md).
inline constexpr bool IsCompatibleApiVersion(uint32_t version) {
  return version == kApiVersion;
}

/// Common header to every batch response: one Status per request item, in
/// request order, plus the count that succeeded. A bad item never aborts the
/// rest of the batch.
struct BatchOutcome {
  std::vector<Status> statuses;
  size_t ok_count = 0;

  /// True iff every item succeeded.
  bool all_ok() const { return ok_count == statuses.size(); }
};

// ----------------------------------------------------------------- users

/// Registers a content provider. `name` must be non-empty
/// (InvalidArgument) but need not be unique.
struct RegisterProviderRequest {
  std::string name;
};
struct RegisterProviderResponse {
  Status status;
  /// Valid only when status is OK. On the sharded backend this id is
  /// broadcast to every shard and usable with any project.
  core::ProviderId provider = 0;
};

/// Registers a human tagger; same contract as RegisterProviderRequest.
struct RegisterTaggerRequest {
  std::string name;
};
struct RegisterTaggerResponse {
  Status status;
  core::UserTaggerId tagger = 0;
};

// -------------------------------------------------------------- projects

/// Creates a project in Draft state. `spec.name` must be non-empty
/// (InvalidArgument); unknown `provider` yields NotFound.
struct CreateProjectRequest {
  core::ProviderId provider = 0;
  core::ProjectSpec spec;
};
struct CreateProjectResponse {
  Status status;
  /// Valid only when status is OK. On the sharded backend this is a global
  /// id encoding the owning shard; pass it back verbatim everywhere.
  core::ProjectId project = 0;
};

/// One resource of a batch upload, with whatever tags it already has (the
/// Fig. 4 upload joins both steps).
struct UploadResourceItem {
  tagging::ResourceKind kind = tagging::ResourceKind::kWebUrl;
  std::string uri;
  std::string description;
  /// Imported as a provider-era post when non-empty.
  std::vector<std::string> initial_tags;
};
/// Uploads resources into one project (all items share the project, so the
/// whole request routes to a single shard). Per-item failures: empty uri →
/// InvalidArgument; unknown project → NotFound; unusable initial_tags →
/// InvalidArgument (the resource itself is still created).
struct BatchUploadResourcesRequest {
  core::ProjectId project = 0;
  std::vector<UploadResourceItem> items;
};
struct BatchUploadResourcesResponse {
  BatchOutcome outcome;
  /// Aligned with the request items; kInvalidResource where the item failed.
  std::vector<tagging::ResourceId> resources;
};

/// Project lifecycle and provider controls, one verb per item so a whole
/// console session can ship as one request.
enum class ControlAction : uint8_t {
  kStart,
  kPause,
  kStop,
  kPromoteResource,
  kStopResource,
  kResumeResource,
  kAddBudget,
  kSwitchStrategy,
};
struct ControlItem {
  ControlAction action = ControlAction::kStart;
  /// For the per-resource verbs.
  tagging::ResourceId resource = tagging::kInvalidResource;
  /// For kAddBudget.
  uint32_t budget_tasks = 0;
  /// For kSwitchStrategy.
  strategy::StrategyKind strategy = strategy::StrategyKind::kHybridFpMu;
};
/// Applies the control verbs to one project, in order, one Status per
/// item. Per-item failures: NotFound for unknown project/resource,
/// FailedPrecondition for illegal lifecycle transitions, InvalidArgument
/// for a zero kAddBudget top-up.
struct BatchControlRequest {
  core::ProjectId project = 0;
  std::vector<ControlItem> items;
};
struct BatchControlResponse {
  BatchOutcome outcome;
};

/// Reads one project's snapshot, optionally with its live quality feed and
/// per-resource details. NotFound (top-level status) for unknown projects;
/// bad detail_resources fail item-wise in detail_outcome.
struct ProjectQueryRequest {
  core::ProjectId project = 0;
  /// Appends the live quality feed (Fig. 5) to the response.
  bool include_feed = false;
  /// Appends per-resource details (Fig. 6) for these resources.
  std::vector<tagging::ResourceId> detail_resources;
};
struct ProjectQueryResponse {
  Status status;
  core::ProjectInfo info;
  std::vector<core::QualityPoint> feed;
  std::vector<core::QualityManager::ResourceDetail> details;
  /// Aligned with detail_resources.
  BatchOutcome detail_outcome;
};

// ---------------------------------------------------------- tagger traffic

/// Draws up to `count` strategy-assigned tasks for one tagger in a single
/// allocation pass (AllocationEngine::ChooseBatch under the hood). `count`
/// must be positive (InvalidArgument). May return fewer than `count` tasks
/// when the budget runs out mid-batch; fails whole (NotFound /
/// FailedPrecondition / ResourceExhausted, like AcceptTask) only when
/// nothing can be drawn at all.
struct BatchAcceptTasksRequest {
  core::UserTaggerId tagger = 0;
  core::ProjectId project = 0;
  size_t count = 1;
};
struct BatchAcceptTasksResponse {
  Status status;
  /// Task handles are opaque; on the sharded backend they are global ids
  /// that route the later submit/decide to the owning shard.
  std::vector<core::AcceptedTask> tasks;
};

/// One tag submission against an accepted task handle.
struct SubmitTagsItem {
  core::UserTaggerId tagger = 0;
  core::TaskHandle handle = 0;
  std::vector<std::string> tags;  ///< raw texts; normalized server-side
};
/// Items may target different projects (and shards); the sharded backend
/// groups them per shard and submits shard-parallel, merging statuses back
/// in request order. Per-item failures: zero handle / empty tags →
/// InvalidArgument; unknown or already-submitted handle → NotFound; a
/// handle accepted by a different tagger → FailedPrecondition.
struct BatchSubmitTagsRequest {
  std::vector<SubmitTagsItem> items;
};
struct BatchSubmitTagsResponse {
  BatchOutcome outcome;
};

// ------------------------------------------------------------- moderation

/// One Approve/Disapprove decision on a pending submission.
struct DecideItem {
  core::TaskHandle handle = 0;
  bool approve = true;
};
/// Batched moderation. Approvals of the same project are flushed through
/// one CompletePostBatch pass (one quality-feed point per project per
/// request); the sharded backend additionally fans groups out per shard.
/// Per-item failures: zero/unknown handle → NotFound; a submission in a
/// project not owned by `provider` → FailedPrecondition. A rejection is a
/// *successful* decision (OK) that refunds the task.
struct BatchDecideRequest {
  core::ProviderId provider = 0;
  std::vector<DecideItem> items;
};
struct BatchDecideResponse {
  BatchOutcome outcome;
};

// ------------------------------------------------------------- simulation

/// Advances simulated time, pumping every running platform-backed project
/// (all shards in parallel on the sharded backend). `ticks` must be >= 0
/// (InvalidArgument); 0 is a no-op that just reads the clock.
struct StepRequest {
  Tick ticks = 1;
};
struct StepResponse {
  Status status;
  Tick now = 0;  ///< clock after the step (set even on error)
};

// ------------------------------------------------------------------ admin

/// Forces a durability checkpoint: every backend database serializes its
/// tables to the snapshot file and truncates its WAL (all shards, pool-
/// parallel, on the sharded backend). Mutations are already written through
/// as they happen, so a checkpoint bounds *recovery time*, not durability;
/// operators (and the daemon's SIGTERM handler) call this before planned
/// restarts. A no-op success with durable=false on in-memory backends.
struct CheckpointRequest {};
struct CheckpointResponse {
  Status status;
  /// False when the backend is in-memory (nothing was written).
  bool durable = false;
  /// Tables and total rows covered by the snapshot, summed across shards.
  uint64_t tables = 0;
  uint64_t rows = 0;
};

/// Promotes a read replica to writable primary (replication failover). The
/// follower finishes draining whatever stream tail it has, detaches from the
/// dead primary, resolves any in-flight migration intents, and starts
/// accepting writes. On an already-writable server the call fails with
/// FailedPrecondition and changes nothing, so firing it at the wrong address
/// is harmless. See docs/replication.md for the promote procedure.
struct PromoteRequest {};
struct PromoteResponse {
  Status status;
  /// True when this call performed the flip (false on the error paths).
  bool was_replica = false;
};

// ----------------------------------------------------------- observability

/// Reads a point-in-time snapshot of the process metrics registry
/// (obs::MetricsRegistry::Default()) — the uniform monitoring surface over
/// every layer: api.* per-request-type counts and latency histograms,
/// core.* shard/step/routing stats, net.* connection and byte counters,
/// storage.* WAL and checkpoint stats. See docs/observability.md for the
/// full catalogue. Read-only and always OK; never touches a shard mutex
/// (metrics are relaxed atomics).
struct MetricsQueryRequest {
  /// Only metrics whose dotted name starts with this prefix are returned
  /// (e.g. "api." or "storage.wal."); empty returns everything.
  std::string prefix;
};
struct MetricsQueryResponse {
  Status status;
  /// Samples sorted by name (a deterministic order, so two back-to-back
  /// queries of an idle server encode byte-identically).
  std::vector<obs::MetricSample> metrics;
};

/// Reads retained request traces out of the process trace ring
/// (obs::Tracer::Default()): per-request span trees from frame decode to
/// WAL append, captured by 1-in-N head sampling plus the unconditional
/// slow-trace net (see docs/observability.md). Read-only and always OK;
/// like MetricsQuery it never touches a shard mutex.
struct TraceQueryRequest {
  /// Only traces whose root span lasted at least this long are returned
  /// (0 = all).
  uint64_t min_duration_us = 0;
  /// Exact endpoint-name filter ("BatchSubmitTags", ...); empty = any.
  std::string endpoint;
  /// Cap on returned traces; 0 means the full ring (server-side clamped to
  /// the ring capacity either way).
  uint32_t max_traces = 32;
};
struct TraceQueryResponse {
  Status status;
  /// Newest first. Within each trace the root span comes first, the rest
  /// sorted by start time.
  std::vector<obs::TraceRecord> traces;
};

// ------------------------------------------------------------- dispatcher

/// The closed set of requests Service::Dispatch routes. Kept in lock-step
/// with kApiVersion: adding a request alternative is compatible, changing
/// one is not.
using AnyRequest =
    std::variant<RegisterProviderRequest, RegisterTaggerRequest,
                 CreateProjectRequest, BatchUploadResourcesRequest,
                 BatchControlRequest, ProjectQueryRequest,
                 BatchAcceptTasksRequest, BatchSubmitTagsRequest,
                 BatchDecideRequest, StepRequest, CheckpointRequest,
                 MetricsQueryRequest, TraceQueryRequest, PromoteRequest>;

using AnyResponse =
    std::variant<RegisterProviderResponse, RegisterTaggerResponse,
                 CreateProjectResponse, BatchUploadResourcesResponse,
                 BatchControlResponse, ProjectQueryResponse,
                 BatchAcceptTasksResponse, BatchSubmitTagsResponse,
                 BatchDecideResponse, StepResponse, CheckpointResponse,
                 MetricsQueryResponse, TraceQueryResponse, PromoteResponse>;

/// Number of request alternatives. The wire protocol uses the variant index
/// as its request/response type tag, so alternative order is part of the
/// compatibility contract guarded by kApiVersion.
inline constexpr size_t kRequestTypeCount = std::variant_size_v<AnyRequest>;

/// Stable endpoint name of the AnyRequest alternative at `index`
/// ("RegisterProvider", ...), for wire-level logs and error messages.
inline const char* RequestTypeName(size_t index) {
  static constexpr const char* kNames[] = {
      "RegisterProvider", "RegisterTagger",  "CreateProject",
      "BatchUploadResources", "BatchControl", "ProjectQuery",
      "BatchAcceptTasks", "BatchSubmitTags", "BatchDecide",
      "Step", "Checkpoint", "MetricsQuery", "TraceQuery", "Promote",
  };
  static_assert(sizeof(kNames) / sizeof(kNames[0]) == kRequestTypeCount,
                "RequestTypeName out of sync with AnyRequest");
  return index < kRequestTypeCount ? kNames[index] : "?";
}

namespace detail {
/// Index of alternative T inside a std::variant (compile-time).
template <typename T, typename Variant>
struct VariantIndexOf;
template <typename T, typename... Alts>
struct VariantIndexOf<T, std::variant<Alts...>> {
  static constexpr size_t value = [] {
    constexpr bool matches[] = {std::is_same_v<T, Alts>...};
    for (size_t i = 0; i < sizeof...(Alts); ++i) {
      if (matches[i]) return i;
    }
    return sizeof...(Alts);
  }();
};
}  // namespace detail

/// Compile-time variant index (== wire type tag) of a request struct, e.g.
/// `kRequestTypeIndex<StepRequest>`. Used by the service instrumentation
/// to key per-request-type metrics without hardcoding tag numbers.
template <typename T>
inline constexpr size_t kRequestTypeIndex =
    detail::VariantIndexOf<T, AnyRequest>::value;

static_assert(kRequestTypeIndex<PromoteRequest> == kRequestTypeCount - 1,
              "kRequestTypeIndex out of sync with AnyRequest");

}  // namespace itag::api

#endif  // ITAG_API_REQUESTS_H_
