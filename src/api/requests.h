#ifndef ITAG_API_REQUESTS_H_
#define ITAG_API_REQUESTS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "itag/ids.h"
#include "itag/itag_system.h"
#include "itag/project.h"
#include "itag/quality_manager.h"
#include "strategy/strategy.h"
#include "tagging/resource.h"

namespace itag::api {

/// Version of the request/response surface in this header. Bumped on any
/// incompatible change to a request or response struct; Service::version()
/// reports it so callers built against older headers can bail out early.
inline constexpr uint32_t kApiVersion = 1;

/// Common header to every batch response: one Status per request item, in
/// request order, plus the count that succeeded. A bad item never aborts the
/// rest of the batch.
struct BatchOutcome {
  std::vector<Status> statuses;
  size_t ok_count = 0;

  /// True iff every item succeeded.
  bool all_ok() const { return ok_count == statuses.size(); }
};

// ----------------------------------------------------------------- users

struct RegisterProviderRequest {
  std::string name;
};
struct RegisterProviderResponse {
  Status status;
  core::ProviderId provider = 0;
};

struct RegisterTaggerRequest {
  std::string name;
};
struct RegisterTaggerResponse {
  Status status;
  core::UserTaggerId tagger = 0;
};

// -------------------------------------------------------------- projects

struct CreateProjectRequest {
  core::ProviderId provider = 0;
  core::ProjectSpec spec;
};
struct CreateProjectResponse {
  Status status;
  core::ProjectId project = 0;
};

/// One resource of a batch upload, with whatever tags it already has (the
/// Fig. 4 upload joins both steps).
struct UploadResourceItem {
  tagging::ResourceKind kind = tagging::ResourceKind::kWebUrl;
  std::string uri;
  std::string description;
  /// Imported as a provider-era post when non-empty.
  std::vector<std::string> initial_tags;
};
struct BatchUploadResourcesRequest {
  core::ProjectId project = 0;
  std::vector<UploadResourceItem> items;
};
struct BatchUploadResourcesResponse {
  BatchOutcome outcome;
  /// Aligned with the request items; kInvalidResource where the item failed.
  std::vector<tagging::ResourceId> resources;
};

/// Project lifecycle and provider controls, one verb per item so a whole
/// console session can ship as one request.
enum class ControlAction : uint8_t {
  kStart,
  kPause,
  kStop,
  kPromoteResource,
  kStopResource,
  kResumeResource,
  kAddBudget,
  kSwitchStrategy,
};
struct ControlItem {
  ControlAction action = ControlAction::kStart;
  /// For the per-resource verbs.
  tagging::ResourceId resource = tagging::kInvalidResource;
  /// For kAddBudget.
  uint32_t budget_tasks = 0;
  /// For kSwitchStrategy.
  strategy::StrategyKind strategy = strategy::StrategyKind::kHybridFpMu;
};
struct BatchControlRequest {
  core::ProjectId project = 0;
  std::vector<ControlItem> items;
};
struct BatchControlResponse {
  BatchOutcome outcome;
};

struct ProjectQueryRequest {
  core::ProjectId project = 0;
  /// Appends the live quality feed (Fig. 5) to the response.
  bool include_feed = false;
  /// Appends per-resource details (Fig. 6) for these resources.
  std::vector<tagging::ResourceId> detail_resources;
};
struct ProjectQueryResponse {
  Status status;
  core::ProjectInfo info;
  std::vector<core::QualityPoint> feed;
  std::vector<core::QualityManager::ResourceDetail> details;
  /// Aligned with detail_resources.
  BatchOutcome detail_outcome;
};

// ---------------------------------------------------------- tagger traffic

/// Draws up to `count` strategy-assigned tasks for one tagger in a single
/// allocation pass (AllocationEngine::ChooseBatch under the hood).
struct BatchAcceptTasksRequest {
  core::UserTaggerId tagger = 0;
  core::ProjectId project = 0;
  size_t count = 1;
};
struct BatchAcceptTasksResponse {
  Status status;
  std::vector<core::AcceptedTask> tasks;
};

struct SubmitTagsItem {
  core::UserTaggerId tagger = 0;
  core::TaskHandle handle = 0;
  std::vector<std::string> tags;
};
struct BatchSubmitTagsRequest {
  std::vector<SubmitTagsItem> items;
};
struct BatchSubmitTagsResponse {
  BatchOutcome outcome;
};

// ------------------------------------------------------------- moderation

struct DecideItem {
  core::TaskHandle handle = 0;
  bool approve = true;
};
struct BatchDecideRequest {
  core::ProviderId provider = 0;
  std::vector<DecideItem> items;
};
struct BatchDecideResponse {
  BatchOutcome outcome;
};

// ------------------------------------------------------------- simulation

struct StepRequest {
  Tick ticks = 1;
};
struct StepResponse {
  Status status;
  Tick now = 0;
};

// ------------------------------------------------------------- dispatcher

/// The closed set of requests Service::Dispatch routes. Kept in lock-step
/// with kApiVersion: adding a request alternative is compatible, changing
/// one is not.
using AnyRequest =
    std::variant<RegisterProviderRequest, RegisterTaggerRequest,
                 CreateProjectRequest, BatchUploadResourcesRequest,
                 BatchControlRequest, ProjectQueryRequest,
                 BatchAcceptTasksRequest, BatchSubmitTagsRequest,
                 BatchDecideRequest, StepRequest>;

using AnyResponse =
    std::variant<RegisterProviderResponse, RegisterTaggerResponse,
                 CreateProjectResponse, BatchUploadResourcesResponse,
                 BatchControlResponse, ProjectQueryResponse,
                 BatchAcceptTasksResponse, BatchSubmitTagsResponse,
                 BatchDecideResponse, StepResponse>;

}  // namespace itag::api

#endif  // ITAG_API_REQUESTS_H_
