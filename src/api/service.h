#ifndef ITAG_API_SERVICE_H_
#define ITAG_API_SERVICE_H_

#include <memory>

#include "api/requests.h"
#include "itag/itag_system.h"

namespace itag::api {

/// The batch-first service surface over the iTag facade: every call takes a
/// typed request, validates it, routes it to ITagSystem, and returns a typed
/// response whose per-item Status vector isolates bad items instead of
/// aborting the whole ingest. This is the layer a network frontend would
/// serialize; the facade underneath stays the single-threaded Fig. 2 core.
///
/// Construction: either own a fresh system (`Service(options)` + Init()) or
/// wrap an existing one non-owningly (`Service(&system)`), e.g. in tests
/// that also poke the facade directly.
class Service {
 public:
  explicit Service(core::ITagSystemOptions options = {});
  explicit Service(core::ITagSystem* system);

  /// Initializes an owned system; no-op (OK) when wrapping, so callers can
  /// Init() unconditionally.
  Status Init();

  /// The request/response schema version this binary serves.
  static constexpr uint32_t version() { return kApiVersion; }

  // -------------------------------------------------------------- endpoints
  RegisterProviderResponse RegisterProvider(
      const RegisterProviderRequest& req);
  RegisterTaggerResponse RegisterTagger(const RegisterTaggerRequest& req);
  CreateProjectResponse CreateProject(const CreateProjectRequest& req);
  BatchUploadResourcesResponse BatchUploadResources(
      const BatchUploadResourcesRequest& req);
  BatchControlResponse BatchControl(const BatchControlRequest& req);
  ProjectQueryResponse ProjectQuery(const ProjectQueryRequest& req);
  BatchAcceptTasksResponse BatchAcceptTasks(
      const BatchAcceptTasksRequest& req);
  BatchSubmitTagsResponse BatchSubmitTags(const BatchSubmitTagsRequest& req);
  BatchDecideResponse BatchDecide(const BatchDecideRequest& req);
  StepResponse Step(const StepRequest& req);

  /// Routes a type-erased request to its endpoint — the single entry point a
  /// wire frontend needs.
  AnyResponse Dispatch(const AnyRequest& req);

  /// The wrapped facade, for flows the typed surface does not cover yet
  /// (export, notifications, recommendations).
  core::ITagSystem& system() { return *system_; }

 private:
  std::unique_ptr<core::ITagSystem> owned_;
  core::ITagSystem* system_;
};

}  // namespace itag::api

#endif  // ITAG_API_SERVICE_H_
