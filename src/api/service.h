#ifndef ITAG_API_SERVICE_H_
#define ITAG_API_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <variant>

#include "api/requests.h"
#include "itag/itag_system.h"
#include "itag/sharded_system.h"
#include "obs/metrics.h"

namespace itag::api {

/// Per-project token buckets for request admission. Each project may spend
/// `rps` request units per steady-clock second (bucket capacity == refill
/// rate, so a cold project can burst one second's worth). Denied units bump
/// `api.admission.rejected`. Thread-safe; one mutex — admission is two
/// arithmetic ops per request, far off any contention cliff.
class AdmissionController {
 public:
  explicit AdmissionController(uint64_t rps);

  /// Consumes up to `want` units, returning how many were granted — the
  /// prefix contract for per-item batch endpoints (items beyond the grant
  /// get ResourceExhausted without reaching the backend).
  uint64_t AdmitUpTo(uint64_t project, uint64_t want);

  /// All-or-nothing variant for whole-call endpoints: consumes `want` units
  /// iff all are available.
  bool AdmitExactly(uint64_t project, uint64_t want);

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last;
  };

  Bucket& BucketFor(uint64_t project);  // mu_ held
  void RefillLocked(Bucket* bucket);    // mu_ held

  const double rps_;
  obs::Counter* rejected_;  ///< api.admission.rejected
  std::mutex mu_;
  std::unordered_map<uint64_t, Bucket> buckets_;
};

/// The batch-first service surface: every call takes a typed request,
/// validates it, routes it to the backend, and returns a typed response
/// whose per-item Status vector isolates bad items instead of aborting the
/// whole ingest. This is the layer a network frontend would serialize.
///
/// Two interchangeable backends:
///  - `core::ITagSystem` — the single-threaded Fig. 2 facade. The service
///    adds no locking; callers must serialize.
///  - `core::ShardedSystem` — the sharded, thread-safe core. Every endpoint
///    (and Dispatch) may then be called from any number of threads
///    concurrently; cross-shard batches (BatchSubmitTags, BatchDecide) are
///    grouped per shard and fanned out on the sharded system's worker
///    pool, and Step() pumps all shards in parallel. Ids in requests and
///    responses are the sharded layer's global ids.
///
/// Construction: own a fresh backend (`Service(ITagSystemOptions)` /
/// `Service(ShardedSystemOptions)` + Init()) or wrap an existing one
/// non-owningly (`Service(&system)` / `Service(&sharded)`), e.g. in tests
/// that also poke the backend directly.
///
/// Observability: every endpoint bumps `api.<Endpoint>.requests` and
/// observes its wall time into `api.<Endpoint>.latency_us` in the process
/// metrics registry (obs::MetricsRegistry::Default()); MetricsQuery reads
/// the whole registry back. See docs/observability.md.
class Service {
 public:
  /// Owns a fresh single-threaded ITagSystem.
  explicit Service(core::ITagSystemOptions options = {});
  /// Wraps an existing ITagSystem non-owningly.
  explicit Service(core::ITagSystem* system);
  /// Owns a fresh sharded, thread-safe core (see ShardedSystemOptions for
  /// the shard-count and worker-pool knobs).
  explicit Service(core::ShardedSystemOptions options);
  /// Wraps an existing ShardedSystem non-owningly.
  explicit Service(core::ShardedSystem* sharded);

  /// Initializes an owned backend; no-op (OK) when wrapping, so callers can
  /// Init() unconditionally.
  Status Init();

  /// Enables per-project admission control: each project may spend at most
  /// `rps` request units per second (0 disables — the default). Charged
  /// endpoints: BatchAcceptTasks (`count` units, all-or-nothing),
  /// BatchUploadResources and BatchControl (one unit per item; items past
  /// the grant fail with per-item ResourceExhausted), ProjectQuery (one
  /// unit). BatchSubmitTags and BatchDecide are exempt by design: they are
  /// handle-keyed — the work was admitted when the task was accepted, and
  /// throttling them would strand accepted tasks. Call before serving
  /// traffic; not synchronized against in-flight requests.
  void SetAdmissionLimit(uint64_t rps);

  /// The request/response schema version this binary serves.
  static constexpr uint32_t version() { return kApiVersion; }

  // ----------------------------------------------------------- replication
  /// Enters replica mode: every write endpoint answers a typed
  /// FailedPrecondition whose message carries "leader=<leader_addr>" so
  /// clients can redirect. Reads (ProjectQuery, MetricsQuery, TraceQuery)
  /// and Checkpoint (local durability) keep working. Call before serving
  /// traffic; `leader_addr` is immutable afterwards.
  void SetReplicaMode(const std::string& leader_addr);

  /// True while writes are rejected.
  bool replica_mode() const {
    return replica_.load(std::memory_order_acquire);
  }

  /// What Promote() runs to perform the actual flip — stop the follower
  /// stream, replay the tail, ShardedSystem::Promote(). Installed by the
  /// embedder (itag_server, tests) before serving.
  using PromoteHandler = std::function<Status()>;
  void SetPromoteHandler(PromoteHandler handler) {
    promote_handler_ = std::move(handler);
  }

  // -------------------------------------------------------------- endpoints
  // Each endpoint documents only what it adds on top of the backend call it
  // routes to; per-item semantics live on the request structs in requests.h.

  /// Validates the name (InvalidArgument when empty) and registers.
  RegisterProviderResponse RegisterProvider(
      const RegisterProviderRequest& req);
  RegisterTaggerResponse RegisterTagger(const RegisterTaggerRequest& req);
  /// Validates spec.name; on the sharded backend the project lands on a
  /// round-robin-chosen shard and the returned id is global.
  CreateProjectResponse CreateProject(const CreateProjectRequest& req);
  /// Uploads item-by-item; an empty uri yields InvalidArgument for that
  /// item only. `resources[i]` is kInvalidResource where item i failed.
  BatchUploadResourcesResponse BatchUploadResources(
      const BatchUploadResourcesRequest& req);
  /// Applies lifecycle/budget/strategy verbs in order, one Status each.
  BatchControlResponse BatchControl(const BatchControlRequest& req);
  /// Project snapshot + optional feed + optional per-resource details.
  ProjectQueryResponse ProjectQuery(const ProjectQueryRequest& req);
  /// Draws up to `count` tasks in one allocation pass (count must be > 0).
  BatchAcceptTasksResponse BatchAcceptTasks(
      const BatchAcceptTasksRequest& req);
  /// Validates items (non-zero handle, non-empty tags), then submits the
  /// rest as one backend batch — per-shard-parallel on the sharded core.
  BatchSubmitTagsResponse BatchSubmitTags(const BatchSubmitTagsRequest& req);
  /// Batch-dispatch entry point for a wire frontend: serves `reqs.size()`
  /// independent BatchSubmitTags requests through ONE backend batch (their
  /// valid items concatenated in request order), so one routed, locked
  /// per-shard pass amortizes over every request in the group. Responses
  /// are bit-identical to dispatching each request sequentially — item
  /// semantics depend only on per-handle state and in-order processing,
  /// both of which concatenation preserves. Each constituent request is
  /// still counted (and its wall time observed) in the api.BatchSubmitTags
  /// metrics, so client-vs-server reconciliation stays exact.
  std::vector<BatchSubmitTagsResponse> BatchSubmitTagsMulti(
      const std::vector<BatchSubmitTagsRequest>& reqs);
  /// Validates handles, then moderates as one backend batch (one quality
  /// pass per project; per-shard-parallel on the sharded core).
  BatchDecideResponse BatchDecide(const BatchDecideRequest& req);
  /// Advances simulated time (ticks must be >= 0); pumps every shard in
  /// parallel on the sharded core.
  StepResponse Step(const StepRequest& req);
  /// Durability checkpoint (snapshot + WAL truncate; all shards on the
  /// sharded core). durable=false when the backend is in-memory.
  CheckpointResponse Checkpoint(const CheckpointRequest& req);
  /// Point-in-time snapshot of the process metrics registry, filtered by
  /// the request's name prefix. Read-only, always OK, lock-free against
  /// the backend (metrics are relaxed atomics; no shard mutex is taken).
  MetricsQueryResponse MetricsQuery(const MetricsQueryRequest& req);
  /// Retained request traces from the process trace ring
  /// (obs::Tracer::Default()), newest first, filtered by minimum root
  /// duration and endpoint name. Read-only, always OK; never touches a
  /// shard mutex. See docs/observability.md for sampling semantics.
  TraceQueryResponse TraceQuery(const TraceQueryRequest& req);
  /// Failover: runs the installed promote handler and, on success, leaves
  /// replica mode. FailedPrecondition when the server is already writable
  /// or no handler is installed; serialized so concurrent Promote calls
  /// cannot double-run the flip.
  PromoteResponse Promote(const PromoteRequest& req);

  /// Routes a type-erased request to its endpoint — the single entry point a
  /// wire frontend needs. Thread-safe iff the backend is sharded.
  AnyResponse Dispatch(const AnyRequest& req);

  /// The wrapped single-threaded facade, for flows the typed surface does
  /// not cover yet (export, notifications, recommendations). Only valid on
  /// an ITagSystem backend (throws std::bad_variant_access otherwise).
  core::ITagSystem& system() {
    return *std::get<core::ITagSystem*>(backend_);
  }

  /// The wrapped sharded core, or nullptr when the backend is the
  /// single-threaded facade.
  core::ShardedSystem* sharded() {
    auto* p = std::get_if<core::ShardedSystem*>(&backend_);
    return p == nullptr ? nullptr : *p;
  }

 private:
  /// The typed write rejection of replica mode; message carries the
  /// "leader=<addr>" token clients redirect on.
  Status ReplicaRejected() const;

  std::unique_ptr<core::ITagSystem> owned_;
  std::unique_ptr<core::ShardedSystem> owned_sharded_;
  std::variant<core::ITagSystem*, core::ShardedSystem*> backend_;
  std::unique_ptr<AdmissionController> admission_;
  /// Replica mode (see SetReplicaMode). leader_addr_ is written once,
  /// before traffic; the flag alone flips at promote time.
  std::atomic<bool> replica_{false};
  std::string leader_addr_;
  PromoteHandler promote_handler_;
  std::mutex promote_mu_;  ///< serializes Promote()
};

}  // namespace itag::api

#endif  // ITAG_API_SERVICE_H_
