#include "strategy/allocator.h"

#include <cassert>
#include <queue>
#include <tuple>

namespace itag::strategy {

std::vector<uint32_t> GreedyAllocate(size_t num_resources, uint32_t budget,
                                     const QualityCurve& curve) {
  std::vector<uint32_t> x(num_resources, 0);
  if (num_resources == 0) return x;
  // Max-heap of (marginal gain, resource); ties by lower id for determinism.
  using Item = std::tuple<double, uint32_t>;
  auto cmp = [](const Item& a, const Item& b) {
    if (std::get<0>(a) != std::get<0>(b)) {
      return std::get<0>(a) < std::get<0>(b);
    }
    return std::get<1>(a) > std::get<1>(b);
  };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
  for (uint32_t i = 0; i < num_resources; ++i) {
    heap.emplace(curve(i, 1) - curve(i, 0), i);
  }
  for (uint32_t b = 0; b < budget; ++b) {
    auto [gain, i] = heap.top();
    heap.pop();
    (void)gain;
    ++x[i];
    heap.emplace(curve(i, x[i] + 1) - curve(i, x[i]), i);
  }
  return x;
}

std::vector<uint32_t> ExactDpAllocate(size_t num_resources, uint32_t budget,
                                      const QualityCurve& curve) {
  std::vector<uint32_t> x(num_resources, 0);
  if (num_resources == 0 || budget == 0) return x;
  size_t n = num_resources;
  uint32_t B = budget;
  // dp[i][b]: best value using resources [0, i) and exactly b tasks
  // (monotone curves make "exactly" equivalent to "at most" at the optimum).
  std::vector<std::vector<double>> dp(n + 1,
                                      std::vector<double>(B + 1, 0.0));
  std::vector<std::vector<uint32_t>> pick(
      n, std::vector<uint32_t>(B + 1, 0));
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t b = 0; b <= B; ++b) {
      double best = -1.0;
      uint32_t best_x = 0;
      for (uint32_t xi = 0; xi <= b; ++xi) {
        double v = dp[i][b - xi] + curve(static_cast<uint32_t>(i), xi);
        if (v > best + 1e-15) {
          best = v;
          best_x = xi;
        }
      }
      dp[i + 1][b] = best;
      pick[i][b] = best_x;
    }
  }
  uint32_t b = B;
  for (size_t i = n; i > 0; --i) {
    x[i - 1] = pick[i - 1][b];
    b -= x[i - 1];
  }
  assert(b == 0);
  return x;
}

double AllocationValue(const std::vector<uint32_t>& x,
                       const QualityCurve& curve) {
  double v = 0.0;
  for (uint32_t i = 0; i < x.size(); ++i) {
    v += curve(i, x[i]);
  }
  return v;
}

}  // namespace itag::strategy
