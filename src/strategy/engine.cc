#include "strategy/engine.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace itag::strategy {

using tagging::kInvalidResource;
using tagging::ResourceId;

AllocationEngine::AllocationEngine(tagging::Corpus* corpus,
                                   std::unique_ptr<Strategy> strategy,
                                   EngineOptions options)
    : corpus_(corpus),
      strategy_(std::move(strategy)),
      rng_(options.seed),
      ctx_(corpus, &rng_),
      budget_remaining_(options.budget),
      assignment_(corpus->size(), 0) {
  assert(corpus_ != nullptr);
  assert(strategy_ != nullptr);
  strategy_->Initialize(ctx_);
}

ResourceId AllocationEngine::PopPromotion() {
  // FIFO drain, skipping any resource stopped since its promotion.
  while (!promoted_.empty()) {
    ResourceId cand = promoted_.front();
    promoted_.pop_front();
    if (!ctx_.stopped(cand)) return cand;
  }
  return kInvalidResource;
}

void AllocationEngine::Account(ResourceId id) {
  --budget_remaining_;
  ++tasks_assigned_;
  ++assignment_[id];
}

Result<ResourceId> AllocationEngine::ChooseNext() {
  if (budget_remaining_ == 0) {
    return Status::ResourceExhausted("budget spent");
  }
  ResourceId id = PopPromotion();
  if (id == kInvalidResource) {
    id = strategy_->Choose(ctx_);
  }
  if (id == kInvalidResource) {
    return Status::FailedPrecondition("no eligible resource");
  }
  Account(id);
  return id;
}

Result<std::vector<ResourceId>> AllocationEngine::ChooseBatch(size_t k) {
  // Zero repeated ChooseNext() calls succeed vacuously; so does a 0-batch.
  if (k == 0) return std::vector<ResourceId>{};
  if (budget_remaining_ == 0) {
    return Status::ResourceExhausted("budget spent");
  }
  size_t want = std::min<size_t>(k, budget_remaining_);
  std::vector<ResourceId> chosen;
  chosen.reserve(want);
  // Promotions keep their guaranteed-next position within the batch.
  while (chosen.size() < want) {
    ResourceId id = PopPromotion();
    if (id == kInvalidResource) break;
    chosen.push_back(id);
  }
  if (chosen.size() < want) {
    strategy_->ChooseResources(ctx_, want - chosen.size(), &chosen);
  }
  if (chosen.empty()) {
    return Status::FailedPrecondition("no eligible resource");
  }
  for (ResourceId id : chosen) Account(id);
  return chosen;
}

uint32_t AllocationEngine::AddBudget(uint32_t amount) {
  // Saturate instead of wrapping: a provider topping an (effectively
  // unbounded) budget up must never see it collapse to a small number.
  uint64_t total = static_cast<uint64_t>(budget_remaining_) + amount;
  budget_remaining_ = total > UINT32_MAX ? UINT32_MAX
                                         : static_cast<uint32_t>(total);
  return budget_remaining_;
}

void AllocationEngine::NotifyPost(ResourceId id) {
  strategy_->OnPost(ctx_, id);
}

Status AllocationEngine::Promote(ResourceId id) {
  if (!corpus_->IsValid(id)) {
    return Status::NotFound("resource " + std::to_string(id));
  }
  if (ctx_.stopped(id)) {
    return Status::FailedPrecondition("resource is stopped");
  }
  promoted_.push_back(id);
  return Status::OK();
}

Status AllocationEngine::SetStopped(ResourceId id, bool stopped) {
  if (!corpus_->IsValid(id)) {
    return Status::NotFound("resource " + std::to_string(id));
  }
  ctx_.set_stopped(id, stopped);
  // Re-seed strategy state so its priority structures drop/readmit the
  // resource. Strategies treat Initialize as idempotent w.r.t. the corpus.
  strategy_->Initialize(ctx_);
  return Status::OK();
}

void AllocationEngine::SwitchStrategy(std::unique_ptr<Strategy> strategy) {
  assert(strategy != nullptr);
  strategy_ = std::move(strategy);
  strategy_->Initialize(ctx_);
}

EngineState AllocationEngine::SaveState() const {
  EngineState s;
  s.budget_remaining = budget_remaining_;
  s.tasks_assigned = tasks_assigned_;
  s.assignment = assignment_;
  s.promoted.assign(promoted_.begin(), promoted_.end());
  s.stopped.resize(corpus_->size(), 0);
  for (ResourceId r = 0; r < corpus_->size(); ++r) {
    s.stopped[r] = ctx_.stopped(r) ? 1 : 0;
  }
  s.rng = rng_.SaveState();
  return s;
}

void AllocationEngine::RestoreState(const EngineState& state) {
  budget_remaining_ = state.budget_remaining;
  tasks_assigned_ = state.tasks_assigned;
  assignment_ = state.assignment;
  assignment_.resize(corpus_->size(), 0);
  promoted_.assign(state.promoted.begin(), state.promoted.end());
  for (ResourceId r = 0; r < corpus_->size() && r < state.stopped.size();
       ++r) {
    ctx_.set_stopped(r, state.stopped[r] != 0);
  }
  strategy_->Initialize(ctx_);
  // Last, so a strategy whose Initialize consumes randomness cannot move
  // the restored stream off its saved position.
  rng_.RestoreState(state.rng);
}

}  // namespace itag::strategy
