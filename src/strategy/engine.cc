#include "strategy/engine.h"

#include <cassert>

namespace itag::strategy {

using tagging::kInvalidResource;
using tagging::ResourceId;

AllocationEngine::AllocationEngine(tagging::Corpus* corpus,
                                   std::unique_ptr<Strategy> strategy,
                                   EngineOptions options)
    : corpus_(corpus),
      strategy_(std::move(strategy)),
      rng_(options.seed),
      ctx_(corpus, &rng_),
      budget_remaining_(options.budget),
      assignment_(corpus->size(), 0) {
  assert(corpus_ != nullptr);
  assert(strategy_ != nullptr);
  strategy_->Initialize(ctx_);
}

Result<ResourceId> AllocationEngine::ChooseNext() {
  if (budget_remaining_ == 0) {
    return Status::ResourceExhausted("budget spent");
  }
  ResourceId id = kInvalidResource;
  // Drain promotions first (skipping any stopped since their promotion).
  while (!promoted_.empty()) {
    ResourceId cand = promoted_.front();
    promoted_.pop_front();
    if (!ctx_.stopped(cand)) {
      id = cand;
      break;
    }
  }
  if (id == kInvalidResource) {
    id = strategy_->Choose(ctx_);
  }
  if (id == kInvalidResource) {
    return Status::FailedPrecondition("no eligible resource");
  }
  --budget_remaining_;
  ++tasks_assigned_;
  ++assignment_[id];
  return id;
}

void AllocationEngine::NotifyPost(ResourceId id) {
  strategy_->OnPost(ctx_, id);
}

Status AllocationEngine::Promote(ResourceId id) {
  if (!corpus_->IsValid(id)) {
    return Status::NotFound("resource " + std::to_string(id));
  }
  if (ctx_.stopped(id)) {
    return Status::FailedPrecondition("resource is stopped");
  }
  promoted_.push_back(id);
  return Status::OK();
}

Status AllocationEngine::SetStopped(ResourceId id, bool stopped) {
  if (!corpus_->IsValid(id)) {
    return Status::NotFound("resource " + std::to_string(id));
  }
  ctx_.set_stopped(id, stopped);
  // Re-seed strategy state so its priority structures drop/readmit the
  // resource. Strategies treat Initialize as idempotent w.r.t. the corpus.
  strategy_->Initialize(ctx_);
  return Status::OK();
}

void AllocationEngine::SwitchStrategy(std::unique_ptr<Strategy> strategy) {
  assert(strategy != nullptr);
  strategy_ = std::move(strategy);
  strategy_->Initialize(ctx_);
}

}  // namespace itag::strategy
