#ifndef ITAG_STRATEGY_ENGINE_H_
#define ITAG_STRATEGY_ENGINE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "strategy/strategy.h"
#include "tagging/corpus.h"

namespace itag::strategy {

/// Configuration of an allocation run.
struct EngineOptions {
  /// Budget B: total number of tagging tasks the provider pays for.
  uint32_t budget = 0;

  /// Seed for the engine's own randomness (FC sampling, RAND baseline).
  uint64_t seed = 42;
};

/// The complete mutable state of a running AllocationEngine, for
/// persistence. Everything else the engine holds (strategy priority
/// structures) is a pure function of (corpus, stopped flags) rebuilt via
/// Strategy::Initialize on restore, so restoring this struct into a freshly
/// constructed engine over the same corpus resumes the run bit-exactly.
struct EngineState {
  uint32_t budget_remaining = 0;
  uint32_t tasks_assigned = 0;
  std::vector<uint32_t> assignment;
  /// Pending §III-A promotions, FIFO order.
  std::vector<tagging::ResourceId> promoted;
  /// Per-resource provider Stop flags (the StrategyContext view).
  std::vector<uint8_t> stopped;
  RngState rng;
};

/// The Algorithm-1 framework: as long as budget remains, CHOOSERESOURCES()
/// picks the next resource(s), tasks are assigned, and UPDATE() refreshes the
/// statistics after each completed task.
///
/// The engine owns the strategy, the per-resource assignment counters x_i,
/// and the provider's live controls from §III-A:
///  * Promote(r): r jumps the queue — guaranteed to be chosen by the next
///    CHOOSERESOURCES() step(s) before the strategy is consulted again;
///  * StopResource(r): r stops receiving tasks (its remaining budget flows
///    to other resources);
///  * SwitchStrategy(s): replaces the strategy mid-run, preserving budget
///    and statistics (the monitoring workflow of Fig. 5);
///  * AddBudget(b): tops the project up.
///
/// The engine deliberately does not talk to the crowdsourcing platform: the
/// caller (simulation driver or QualityManager) takes each chosen resource,
/// gets it tagged, appends the post to the corpus, and calls NotifyPost().
class AllocationEngine {
 public:
  /// `corpus` must outlive the engine.
  AllocationEngine(tagging::Corpus* corpus, std::unique_ptr<Strategy> strategy,
                   EngineOptions options);

  /// Chooses the resource for the next tagging task and debits one unit of
  /// budget. Order of precedence: pending promotions first, then the
  /// strategy. Fails with ResourceExhausted when the budget is spent and
  /// FailedPrecondition when no resource is eligible.
  Result<tagging::ResourceId> ChooseNext();

  /// Batched CHOOSERESOURCES(): chooses up to `k` resources in one pass,
  /// debiting one budget unit per pick. Promotions drain first (FIFO,
  /// skipping stopped resources), then the strategy's ChooseResources()
  /// fills the remainder. The result may be shorter than `k` when budget or
  /// eligibility runs out; it is sequence-equivalent to `k` repeated
  /// ChooseNext() calls under the same engine state. Fails with
  /// ResourceExhausted when the budget is already spent and
  /// FailedPrecondition when budget remains but nothing could be chosen.
  Result<std::vector<tagging::ResourceId>> ChooseBatch(size_t k);

  /// UPDATE() — the task on `id` completed and its post is already in the
  /// corpus; refreshes strategy state.
  void NotifyPost(tagging::ResourceId id);

  /// §III-A Promote button. The resource is enqueued for guaranteed
  /// selection (FIFO across repeated promotions). No-op on stopped
  /// resources.
  Status Promote(tagging::ResourceId id);

  /// §III-A Stop button; `stopped=false` re-enables the resource.
  Status SetStopped(tagging::ResourceId id, bool stopped);

  /// Replaces the allocation strategy mid-run.
  void SwitchStrategy(std::unique_ptr<Strategy> strategy);

  /// Adds `amount` tasks to the remaining budget, saturating at UINT32_MAX
  /// instead of wrapping. Returns the new remaining budget.
  uint32_t AddBudget(uint32_t amount);

  /// Remaining budget.
  uint32_t budget_remaining() const { return budget_remaining_; }

  /// Tasks assigned so far, total and per resource (the assignment vector x).
  uint32_t tasks_assigned() const { return tasks_assigned_; }
  const std::vector<uint32_t>& assignment() const { return assignment_; }

  /// Current strategy name.
  std::string strategy_name() const { return strategy_->name(); }

  /// The context (for tests and monitoring).
  const StrategyContext& context() const { return ctx_; }

  /// Snapshots the engine's mutable state for persistence.
  EngineState SaveState() const;

  /// Resumes a saved run: restores counters, promotions and stop flags,
  /// re-initializes the strategy against the (already recovered) corpus,
  /// then rewinds the RNG to the saved stream position so the next pick
  /// matches what the uninterrupted run would have drawn.
  void RestoreState(const EngineState& state);

 private:
  /// Pops the first non-stopped promoted resource, or kInvalidResource.
  tagging::ResourceId PopPromotion();
  /// Records one debited pick.
  void Account(tagging::ResourceId id);

  tagging::Corpus* corpus_;
  std::unique_ptr<Strategy> strategy_;
  Rng rng_;
  StrategyContext ctx_;
  uint32_t budget_remaining_;
  uint32_t tasks_assigned_ = 0;
  std::vector<uint32_t> assignment_;
  std::deque<tagging::ResourceId> promoted_;
};

}  // namespace itag::strategy

#endif  // ITAG_STRATEGY_ENGINE_H_
