#include "strategy/strategy.h"

#include "strategy/basic_strategies.h"
#include "strategy/greedy_strategies.h"

namespace itag::strategy {

void Strategy::ChooseResources(const StrategyContext& ctx, size_t k,
                               std::vector<tagging::ResourceId>* out) {
  for (size_t i = 0; i < k; ++i) {
    tagging::ResourceId id = Choose(ctx);
    if (id == tagging::kInvalidResource) break;
    out->push_back(id);
  }
}

size_t StrategyContext::EligibleCount() const {
  size_t n = 0;
  for (size_t i = 0; i < stopped_.size(); ++i) {
    if (stopped_[i] == 0) ++n;
  }
  return n;
}

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFreeChoice:
      return "FC";
    case StrategyKind::kFewestPostsFirst:
      return "FP";
    case StrategyKind::kMostUnstableFirst:
      return "MU";
    case StrategyKind::kHybridFpMu:
      return "FP-MU";
    case StrategyKind::kRandom:
      return "RAND";
    case StrategyKind::kRoundRobin:
      return "RR";
    case StrategyKind::kEstimatedGain:
      return "EG";
  }
  return "?";
}

std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFreeChoice:
      return std::make_unique<FreeChoiceStrategy>();
    case StrategyKind::kFewestPostsFirst:
      return std::make_unique<FewestPostsFirstStrategy>();
    case StrategyKind::kMostUnstableFirst:
      return std::make_unique<MostUnstableFirstStrategy>();
    case StrategyKind::kHybridFpMu:
      return std::make_unique<HybridFpMuStrategy>();
    case StrategyKind::kRandom:
      return std::make_unique<RandomStrategy>();
    case StrategyKind::kRoundRobin:
      return std::make_unique<RoundRobinStrategy>();
    case StrategyKind::kEstimatedGain:
      return std::make_unique<EstimatedGainGreedyStrategy>();
  }
  return nullptr;
}

}  // namespace itag::strategy
