#ifndef ITAG_STRATEGY_BASIC_STRATEGIES_H_
#define ITAG_STRATEGY_BASIC_STRATEGIES_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/distribution.h"
#include "common/fenwick.h"
#include "strategy/strategy.h"

namespace itag::strategy {

/// FC — Free Choice (Table I). Taggers pick resources themselves; empirically
/// they flock to popular resources (Golder & Huberman), which we model as
/// preferential attachment: resource i is chosen with probability
/// proportional to (post_count_i + smoothing). A Fenwick tree gives O(log n)
/// weighted sampling with O(log n) weight updates per completed post.
class FreeChoiceStrategy : public Strategy {
 public:
  /// `smoothing` is the additive weight that keeps unseen resources
  /// reachable (the paper's FC still exposes every resource to taggers).
  explicit FreeChoiceStrategy(double smoothing = 1.0);

  std::string name() const override { return "FC"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

 private:
  double smoothing_;
  std::unique_ptr<FenwickTree> weights_;
};

/// FP — Fewest Posts first (Table I): always picks the eligible resource
/// with the fewest posts, ties broken by smallest id (deterministic).
/// Maintains an ordered set keyed by (post_count, id) for O(log n) choice
/// and update.
class FewestPostsFirstStrategy : public Strategy {
 public:
  std::string name() const override { return "FP"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

  /// Bulk override: post counts only move on OnPost, so k picks without an
  /// UPDATE in between are k copies of the current minimum — one lookup.
  void ChooseResources(const StrategyContext& ctx, size_t k,
                       std::vector<tagging::ResourceId>* out) override;

 private:
  std::set<std::pair<uint32_t, tagging::ResourceId>> order_;
  std::vector<uint32_t> key_;  // current post count per resource
};

/// MU — Most Unstable first (Table I): always picks the eligible resource
/// whose rfd moved the most over the recent window (largest stability
/// distance). Resources with fewer than 2 posts are maximally unstable by
/// definition. Ordered set keyed by (-instability, id).
class MostUnstableFirstStrategy : public Strategy {
 public:
  struct Options {
    DistanceKind distance = DistanceKind::kTotalVariation;
    size_t window = 8;  ///< lag used for the instability score
  };

  MostUnstableFirstStrategy();
  explicit MostUnstableFirstStrategy(Options options);

  std::string name() const override { return "MU"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

  /// Bulk override: instability scores only move on OnPost, so k picks are
  /// k copies of the current most-unstable resource — one lookup.
  void ChooseResources(const StrategyContext& ctx, size_t k,
                       std::vector<tagging::ResourceId>* out) override;

  /// The instability score the strategy currently holds for `id`.
  double score(tagging::ResourceId id) const { return score_[id]; }

 private:
  double ComputeScore(const StrategyContext& ctx,
                      tagging::ResourceId id) const;

  Options options_;
  std::set<std::pair<double, tagging::ResourceId>,
           std::greater<std::pair<double, tagging::ResourceId>>>
      order_;
  std::vector<double> score_;
};

/// FP-MU — the hybrid of Table I ("use FP first, then use MU"; the paper
/// calls it the most effective at improving overall quality). Runs FP until
/// every eligible resource has at least `switch_min_posts` posts, then
/// switches to MU permanently.
class HybridFpMuStrategy : public Strategy {
 public:
  struct Options {
    /// FP phase ends once every eligible resource has this many posts.
    uint32_t switch_min_posts = 5;
    MostUnstableFirstStrategy::Options mu;
  };

  HybridFpMuStrategy();
  explicit HybridFpMuStrategy(Options options);

  std::string name() const override { return "FP-MU"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

  /// True once the strategy has moved to its MU phase.
  bool in_mu_phase() const { return in_mu_phase_; }

 private:
  bool FpPhaseDone(const StrategyContext& ctx) const;

  Options options_;
  FewestPostsFirstStrategy fp_;
  MostUnstableFirstStrategy mu_;
  bool in_mu_phase_ = false;
};

/// Uniform-random baseline: every eligible resource is equally likely.
class RandomStrategy : public Strategy {
 public:
  std::string name() const override { return "RAND"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

  /// Bulk override: one O(n) pass builds the eligible list, then each pick
  /// is O(1). Draws one Uniform(eligible) per pick exactly like Choose(), so
  /// the id sequence matches k repeated single calls bit-for-bit.
  void ChooseResources(const StrategyContext& ctx, size_t k,
                       std::vector<tagging::ResourceId>* out) override;
};

/// Cyclic baseline: resources in id order, skipping ineligible ones.
class RoundRobinStrategy : public Strategy {
 public:
  std::string name() const override { return "RR"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

  // No ChooseResources override: the per-pick cursor walk is already O(1)
  // when few resources are stopped, so the default fallback is the fastest
  // batched form too.

 private:
  tagging::ResourceId next_ = 0;
};

}  // namespace itag::strategy

#endif  // ITAG_STRATEGY_BASIC_STRATEGIES_H_
