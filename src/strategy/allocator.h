#ifndef ITAG_STRATEGY_ALLOCATOR_H_
#define ITAG_STRATEGY_ALLOCATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace itag::strategy {

/// Expected-quality curve: value(resource, extra_posts) -> E[q_i(c_i+extra)].
/// Curves must be nondecreasing in `extra`; the greedy solver is provably
/// optimal when they are additionally concave (diminishing returns), which
/// holds for every estimator in this library.
using QualityCurve = std::function<double(uint32_t resource, uint32_t extra)>;

/// Offline solution of the incentive-based tagging problem of §II:
/// choose x with Σx_i = B maximizing Σ_i E[q_i(c_i + x_i)].
///
/// GreedyAllocate assigns the B tasks one at a time, each to the resource
/// with the largest marginal gain E(i, x_i+1) - E(i, x_i). O(B log n).
std::vector<uint32_t> GreedyAllocate(size_t num_resources, uint32_t budget,
                                     const QualityCurve& curve);

/// Exact dynamic program over (resource, budget) for cross-checking greedy
/// optimality on small instances. O(n * B^2) time, O(B) space per layer —
/// use only for n*B^2 within test budgets.
std::vector<uint32_t> ExactDpAllocate(size_t num_resources, uint32_t budget,
                                      const QualityCurve& curve);

/// Objective value Σ_i curve(i, x_i) of an assignment.
double AllocationValue(const std::vector<uint32_t>& x,
                       const QualityCurve& curve);

}  // namespace itag::strategy

#endif  // ITAG_STRATEGY_ALLOCATOR_H_
