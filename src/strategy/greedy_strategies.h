#ifndef ITAG_STRATEGY_GREEDY_STRATEGIES_H_
#define ITAG_STRATEGY_GREEDY_STRATEGIES_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "quality/gain_estimator.h"
#include "strategy/strategy.h"

namespace itag::strategy {

/// Greedy on *estimated* marginal gains: at every step, pick the eligible
/// resource whose next post has the largest projected quality gain according
/// to the data-driven EmpiricalGainEstimator (Dirichlet-smoothed θ̂ + CLT
/// closed form). This is what a live deployment can run without ground
/// truth; it is iTag's "simple but close to optimal" automatic mode.
class EstimatedGainGreedyStrategy : public Strategy {
 public:
  explicit EstimatedGainGreedyStrategy(
      quality::EmpiricalGainEstimator estimator =
          quality::EmpiricalGainEstimator());

  std::string name() const override { return "EG"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

 private:
  quality::EmpiricalGainEstimator estimator_;
  std::set<std::pair<double, tagging::ResourceId>,
           std::greater<std::pair<double, tagging::ResourceId>>>
      order_;
  std::vector<double> gain_;
};

/// Greedy on *true* expected marginal gains — the optimal allocation the
/// demo compares strategies against. Only constructible inside the
/// simulator, where every resource's true distribution θ_i is known. Because
/// the expected-quality curves are concave in the post count, greedy on
/// marginal gains attains the optimal budget split (validated against the
/// exact DP in tests).
class OracleGreedyStrategy : public Strategy {
 public:
  explicit OracleGreedyStrategy(
      std::shared_ptr<const quality::OracleGainEstimator> oracle);

  std::string name() const override { return "OPT"; }
  void Initialize(const StrategyContext& ctx) override;
  tagging::ResourceId Choose(const StrategyContext& ctx) override;
  void OnPost(const StrategyContext& ctx, tagging::ResourceId id) override;

 private:
  std::shared_ptr<const quality::OracleGainEstimator> oracle_;
  std::set<std::pair<double, tagging::ResourceId>,
           std::greater<std::pair<double, tagging::ResourceId>>>
      order_;
  std::vector<double> gain_;
  std::vector<uint32_t> extra_;  // tasks granted so far per resource
};

}  // namespace itag::strategy

#endif  // ITAG_STRATEGY_GREEDY_STRATEGIES_H_
