#include "strategy/basic_strategies.h"

#include <algorithm>
#include <cassert>

namespace itag::strategy {

using tagging::kInvalidResource;
using tagging::ResourceId;

// ---------------------------------------------------------------- FC

FreeChoiceStrategy::FreeChoiceStrategy(double smoothing)
    : smoothing_(smoothing) {
  assert(smoothing_ > 0.0);
}

void FreeChoiceStrategy::Initialize(const StrategyContext& ctx) {
  weights_ = std::make_unique<FenwickTree>(ctx.size());
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    double w = ctx.stopped(id)
                   ? 0.0
                   : static_cast<double>(ctx.corpus().PostCount(id)) +
                         smoothing_;
    weights_->Set(id, w);
  }
}

ResourceId FreeChoiceStrategy::Choose(const StrategyContext& ctx) {
  double total = weights_->Total();
  if (total <= 0.0) return kInvalidResource;
  // Stopped resources keep weight zero, so inverse-CDF sampling never lands
  // on them while any eligible weight remains.
  double target = ctx.rng()->NextDouble() * total;
  ResourceId id = static_cast<ResourceId>(weights_->FindByPrefix(target));
  if (ctx.stopped(id)) {
    // Numeric edge (target at the very end of the CDF); fall back to the
    // first eligible resource.
    for (ResourceId r = 0; r < ctx.size(); ++r) {
      if (!ctx.stopped(r)) return r;
    }
    return kInvalidResource;
  }
  return id;
}

void FreeChoiceStrategy::OnPost(const StrategyContext& ctx, ResourceId id) {
  if (weights_ == nullptr || id >= weights_->size()) return;
  if (ctx.stopped(id)) {
    weights_->Set(id, 0.0);
    return;
  }
  // Preferential attachment: one more post, one more unit of attraction.
  weights_->Add(id, 1.0);
}

// ---------------------------------------------------------------- FP

void FewestPostsFirstStrategy::Initialize(const StrategyContext& ctx) {
  order_.clear();
  key_.assign(ctx.size(), 0);
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    key_[id] = ctx.corpus().PostCount(id);
    if (!ctx.stopped(id)) order_.emplace(key_[id], id);
  }
}

ResourceId FewestPostsFirstStrategy::Choose(const StrategyContext& ctx) {
  while (!order_.empty()) {
    auto [count, id] = *order_.begin();
    if (ctx.stopped(id)) {
      order_.erase(order_.begin());
      continue;
    }
    (void)count;
    return id;
  }
  return kInvalidResource;
}

void FewestPostsFirstStrategy::ChooseResources(const StrategyContext& ctx,
                                               size_t k,
                                               std::vector<ResourceId>* out) {
  ResourceId id = Choose(ctx);
  if (id == kInvalidResource) return;
  out->insert(out->end(), k, id);
}

void FewestPostsFirstStrategy::OnPost(const StrategyContext& ctx,
                                      ResourceId id) {
  if (id >= key_.size()) return;
  order_.erase({key_[id], id});
  key_[id] = ctx.corpus().PostCount(id);
  if (!ctx.stopped(id)) order_.emplace(key_[id], id);
}

// ---------------------------------------------------------------- MU

MostUnstableFirstStrategy::MostUnstableFirstStrategy()
    : MostUnstableFirstStrategy(Options()) {}

MostUnstableFirstStrategy::MostUnstableFirstStrategy(Options options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
}

double MostUnstableFirstStrategy::ComputeScore(const StrategyContext& ctx,
                                               ResourceId id) const {
  return ctx.corpus().stats(id).StabilityDistance(options_.distance,
                                                  options_.window);
}

void MostUnstableFirstStrategy::Initialize(const StrategyContext& ctx) {
  order_.clear();
  score_.assign(ctx.size(), 1.0);
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    score_[id] = ComputeScore(ctx, id);
    if (!ctx.stopped(id)) order_.emplace(score_[id], id);
  }
}

ResourceId MostUnstableFirstStrategy::Choose(const StrategyContext& ctx) {
  while (!order_.empty()) {
    auto [score, id] = *order_.begin();
    if (ctx.stopped(id)) {
      order_.erase(order_.begin());
      continue;
    }
    (void)score;
    return id;
  }
  return kInvalidResource;
}

void MostUnstableFirstStrategy::ChooseResources(const StrategyContext& ctx,
                                                size_t k,
                                                std::vector<ResourceId>* out) {
  ResourceId id = Choose(ctx);
  if (id == kInvalidResource) return;
  out->insert(out->end(), k, id);
}

void MostUnstableFirstStrategy::OnPost(const StrategyContext& ctx,
                                       ResourceId id) {
  if (id >= score_.size()) return;
  order_.erase({score_[id], id});
  score_[id] = ComputeScore(ctx, id);
  if (!ctx.stopped(id)) order_.emplace(score_[id], id);
}

// ---------------------------------------------------------------- FP-MU

HybridFpMuStrategy::HybridFpMuStrategy()
    : HybridFpMuStrategy(Options()) {}

HybridFpMuStrategy::HybridFpMuStrategy(Options options)
    : options_(options), mu_(options.mu) {
  if (options_.switch_min_posts == 0) options_.switch_min_posts = 1;
}

bool HybridFpMuStrategy::FpPhaseDone(const StrategyContext& ctx) const {
  // The FP phase is complete once the *least-posted* eligible resource has
  // reached the switch threshold; FP's own ordered set gives that in O(1)
  // via Choose (but without mutating state we recheck from the corpus).
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    if (ctx.stopped(id)) continue;
    if (ctx.corpus().PostCount(id) < options_.switch_min_posts) return false;
  }
  return true;
}

void HybridFpMuStrategy::Initialize(const StrategyContext& ctx) {
  fp_.Initialize(ctx);
  mu_.Initialize(ctx);
  in_mu_phase_ = FpPhaseDone(ctx);
}

ResourceId HybridFpMuStrategy::Choose(const StrategyContext& ctx) {
  if (!in_mu_phase_) {
    ResourceId id = fp_.Choose(ctx);
    if (id == kInvalidResource) return id;
    if (ctx.corpus().PostCount(id) < options_.switch_min_posts) return id;
    // The least-posted resource already satisfies the threshold: the FP
    // phase is over, permanently.
    in_mu_phase_ = true;
  }
  return mu_.Choose(ctx);
}

void HybridFpMuStrategy::OnPost(const StrategyContext& ctx, ResourceId id) {
  fp_.OnPost(ctx, id);
  mu_.OnPost(ctx, id);
}

// ---------------------------------------------------------------- RAND

void RandomStrategy::Initialize(const StrategyContext& /*ctx*/) {}

ResourceId RandomStrategy::Choose(const StrategyContext& ctx) {
  size_t eligible = ctx.EligibleCount();
  if (eligible == 0) return kInvalidResource;
  uint32_t target = ctx.rng()->Uniform(static_cast<uint32_t>(eligible));
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    if (ctx.stopped(id)) continue;
    if (target == 0) return id;
    --target;
  }
  return kInvalidResource;
}

void RandomStrategy::OnPost(const StrategyContext& /*ctx*/,
                            ResourceId /*id*/) {}

void RandomStrategy::ChooseResources(const StrategyContext& ctx, size_t k,
                                     std::vector<ResourceId>* out) {
  std::vector<ResourceId> eligible;
  eligible.reserve(ctx.size());
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    if (!ctx.stopped(id)) eligible.push_back(id);
  }
  if (eligible.empty()) return;
  out->reserve(out->size() + k);
  for (size_t i = 0; i < k; ++i) {
    uint32_t target =
        ctx.rng()->Uniform(static_cast<uint32_t>(eligible.size()));
    out->push_back(eligible[target]);
  }
}

// ---------------------------------------------------------------- RR

void RoundRobinStrategy::Initialize(const StrategyContext& /*ctx*/) {
  next_ = 0;
}

ResourceId RoundRobinStrategy::Choose(const StrategyContext& ctx) {
  if (ctx.size() == 0) return kInvalidResource;
  for (size_t probe = 0; probe < ctx.size(); ++probe) {
    ResourceId id = static_cast<ResourceId>((next_ + probe) % ctx.size());
    if (!ctx.stopped(id)) {
      next_ = static_cast<ResourceId>((id + 1) % ctx.size());
      return id;
    }
  }
  return kInvalidResource;
}

void RoundRobinStrategy::OnPost(const StrategyContext& /*ctx*/,
                                ResourceId /*id*/) {}

}  // namespace itag::strategy
