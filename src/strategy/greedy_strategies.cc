#include "strategy/greedy_strategies.h"

#include <cassert>

namespace itag::strategy {

using tagging::kInvalidResource;
using tagging::ResourceId;

EstimatedGainGreedyStrategy::EstimatedGainGreedyStrategy(
    quality::EmpiricalGainEstimator estimator)
    : estimator_(estimator) {}

void EstimatedGainGreedyStrategy::Initialize(const StrategyContext& ctx) {
  order_.clear();
  gain_.assign(ctx.size(), 0.0);
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    gain_[id] = estimator_.MarginalGain(ctx.corpus().stats(id));
    if (!ctx.stopped(id)) order_.emplace(gain_[id], id);
  }
}

ResourceId EstimatedGainGreedyStrategy::Choose(const StrategyContext& ctx) {
  while (!order_.empty()) {
    auto [gain, id] = *order_.begin();
    if (ctx.stopped(id)) {
      order_.erase(order_.begin());
      continue;
    }
    (void)gain;
    return id;
  }
  return kInvalidResource;
}

void EstimatedGainGreedyStrategy::OnPost(const StrategyContext& ctx,
                                         ResourceId id) {
  if (id >= gain_.size()) return;
  order_.erase({gain_[id], id});
  gain_[id] = estimator_.MarginalGain(ctx.corpus().stats(id));
  if (!ctx.stopped(id)) order_.emplace(gain_[id], id);
}

OracleGreedyStrategy::OracleGreedyStrategy(
    std::shared_ptr<const quality::OracleGainEstimator> oracle)
    : oracle_(std::move(oracle)) {
  assert(oracle_ != nullptr);
}

void OracleGreedyStrategy::Initialize(const StrategyContext& ctx) {
  assert(oracle_->num_resources() == ctx.size());
  order_.clear();
  gain_.assign(ctx.size(), 0.0);
  extra_.assign(ctx.size(), 0);
  for (ResourceId id = 0; id < ctx.size(); ++id) {
    gain_[id] = oracle_->MarginalGain(id, 0);
    if (!ctx.stopped(id)) order_.emplace(gain_[id], id);
  }
}

ResourceId OracleGreedyStrategy::Choose(const StrategyContext& ctx) {
  while (!order_.empty()) {
    auto [gain, id] = *order_.begin();
    if (ctx.stopped(id)) {
      order_.erase(order_.begin());
      continue;
    }
    (void)gain;
    return id;
  }
  return kInvalidResource;
}

void OracleGreedyStrategy::OnPost(const StrategyContext& ctx, ResourceId id) {
  if (id >= gain_.size()) return;
  order_.erase({gain_[id], id});
  ++extra_[id];
  gain_[id] = oracle_->MarginalGain(id, extra_[id]);
  if (!ctx.stopped(id)) order_.emplace(gain_[id], id);
}

}  // namespace itag::strategy
