#ifndef ITAG_STRATEGY_STRATEGY_H_
#define ITAG_STRATEGY_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "tagging/corpus.h"

namespace itag::strategy {

/// Read-only view the allocation engine exposes to strategies when asking
/// them to choose the next resource (the CHOOSERESOURCES() hook of
/// Algorithm 1). Eligibility already folds in the provider's per-resource
/// Stop switches; Promote is handled by the engine before the strategy is
/// consulted.
class StrategyContext {
 public:
  StrategyContext(const tagging::Corpus* corpus, Rng* rng)
      : corpus_(corpus), rng_(rng), stopped_(corpus->size(), 0) {}

  const tagging::Corpus& corpus() const { return *corpus_; }
  Rng* rng() const { return rng_; }

  /// Number of resources n.
  size_t size() const { return corpus_->size(); }

  /// True when the provider stopped investment in `id` (§III-A Stop button).
  bool stopped(tagging::ResourceId id) const { return stopped_[id] != 0; }
  void set_stopped(tagging::ResourceId id, bool v) { stopped_[id] = v ? 1 : 0; }

  /// Count of resources still eligible for tasks.
  size_t EligibleCount() const;

  /// True if at least one resource is eligible.
  bool AnyEligible() const { return EligibleCount() > 0; }

 private:
  const tagging::Corpus* corpus_;
  Rng* rng_;
  std::vector<uint8_t> stopped_;
};

/// A task-allocation strategy: the pluggable CHOOSERESOURCES()/UPDATE() pair
/// of Algorithm 1. Strategies are stateful (they may maintain priority
/// structures) and are re-Initialized when attached to an engine or when the
/// provider switches strategies mid-run.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Short name used in reports ("FC", "FP", "MU", "FP-MU", ...).
  virtual std::string name() const = 0;

  /// (Re)builds internal state from the context's current corpus.
  virtual void Initialize(const StrategyContext& ctx) = 0;

  /// Chooses the next resource to assign a tagging task to, among eligible
  /// (non-stopped) resources. Returns kInvalidResource when nothing is
  /// eligible.
  virtual tagging::ResourceId Choose(const StrategyContext& ctx) = 0;

  /// UPDATE() hook: a completed task added one post to `id`; the strategy
  /// refreshes whatever priority state depends on it.
  virtual void OnPost(const StrategyContext& ctx, tagging::ResourceId id) = 0;

  /// Batched CHOOSERESOURCES(): appends up to `k` picks to `out` (Algorithm 1
  /// is explicitly plural — it may pick several resources per step). The
  /// default implementation calls Choose() k times and stops at the first
  /// kInvalidResource, so every strategy keeps its single-pick semantics.
  /// Overrides must stay sequence-equivalent to the default under the same
  /// RNG state (batched and repeated single calls are interchangeable); they
  /// exist purely to amortize per-pick work.
  virtual void ChooseResources(const StrategyContext& ctx, size_t k,
                               std::vector<tagging::ResourceId>* out);
};

/// Identifiers for the built-in strategies (Table I plus the baselines and
/// oracle used in the demo's comparison).
enum class StrategyKind {
  kFreeChoice,         ///< FC
  kFewestPostsFirst,   ///< FP
  kMostUnstableFirst,  ///< MU
  kHybridFpMu,         ///< FP-MU
  kRandom,             ///< uniform baseline
  kRoundRobin,         ///< cyclic baseline
  kEstimatedGain,      ///< greedy on data-driven projected gains
};

/// Canonical display name ("FC", "FP", ...).
const char* StrategyKindName(StrategyKind kind);

/// Factory covering every built-in strategy (oracle strategies have their
/// own constructors since they need ground-truth inputs).
std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind);

}  // namespace itag::strategy

#endif  // ITAG_STRATEGY_STRATEGY_H_
