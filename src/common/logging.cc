#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "obs/trace.h"

namespace itag {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

/// Process-local logical thread id: small, stable, and allocation-free —
/// the native id would be as unique but is long and non-deterministic,
/// which the format test cares about.
uint64_t LocalThreadId() {
  static std::atomic<uint64_t> next{0};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::string Logger::FormatLine(LogLevel level, const std::string& message) {
  // ISO-8601 UTC with millisecond precision: 2026-08-08T12:34:56.789Z
  auto now = std::chrono::system_clock::now();
  std::time_t secs = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ [%s] tid=%llu ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis),
                LogLevelName(level),
                static_cast<unsigned long long>(LocalThreadId()));
  std::string line = prefix + message;
  // Join the log stream to the span tree: a sampled trace on this thread
  // stamps its id onto every line emitted while it is active.
  obs::TraceContext trace = obs::CurrentTrace();
  if (trace.active() && trace.sampled) {
    line += " trace=" + std::to_string(trace.trace_id);
  }
  return line;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = FormatLine(level, message);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace itag
