#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace itag {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace itag
