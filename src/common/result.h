#ifndef ITAG_COMMON_RESULT_H_
#define ITAG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace itag {

/// Value-or-Status, the library's substitute for exceptions on fallible
/// functions that produce a value. A Result is either OK and holds a T, or
/// non-OK and holds only the Status.
///
/// Typical usage:
///   Result<TableId> r = db.CreateTable(schema);
///   if (!r.ok()) return r.status();
///   TableId id = r.value();
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding a copy/move of `value`.
  Result(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT: implicit by design
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The held value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when the result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
/// Usage: ITAG_ASSIGN_OR_RETURN(auto id, db.CreateTable(schema));
#define ITAG_ASSIGN_OR_RETURN(lhs, expr)              \
  ITAG_ASSIGN_OR_RETURN_IMPL_(                        \
      ITAG_RESULT_CONCAT_(_itag_result_, __LINE__), lhs, expr)

#define ITAG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)   \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define ITAG_RESULT_CONCAT_(a, b) ITAG_RESULT_CONCAT_IMPL_(a, b)
#define ITAG_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace itag

#endif  // ITAG_COMMON_RESULT_H_
