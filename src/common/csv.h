#ifndef ITAG_COMMON_CSV_H_
#define ITAG_COMMON_CSV_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace itag {

/// Row-oriented table builder that renders either CSV (for downstream
/// plotting) or an aligned ASCII table (for terminal output). Benchmarks use
/// this to print the paper-style series; examples use it for monitoring
/// views.
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  TableWriter& BeginRow();

  /// Appends a cell to the current row.
  TableWriter& Add(const std::string& cell);
  TableWriter& Add(const char* cell);
  TableWriter& Add(int64_t v);
  TableWriter& Add(uint64_t v);
  TableWriter& Add(int v);
  /// Doubles are rendered with `precision` decimal places.
  TableWriter& Add(double v, int precision = 4);

  /// Number of completed + in-progress rows.
  size_t row_count() const { return rows_.size(); }

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void WriteCsv(std::ostream& os) const;

  /// Writes an aligned, boxed ASCII table.
  void WriteAscii(std::ostream& os) const;

  /// Saves CSV to a file path, creating/truncating it.
  Status SaveCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace itag

#endif  // ITAG_COMMON_CSV_H_
