#ifndef ITAG_COMMON_SEQLOCK_H_
#define ITAG_COMMON_SEQLOCK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace itag {

/// Single-writer seqlock over a trivially-copyable value: readers never
/// block and never take a lock; a torn read is detected by the sequence
/// counter and retried. Writers must already be serialized externally (in
/// the sharded system, the owning shard's mutex plays that role).
///
/// The value is stored as relaxed atomic words (not a raw struct), so the
/// implementation is free of data races by the letter of the C++ memory
/// model — ThreadSanitizer-clean — following the classic fence-based seqlock
/// construction (Boehm, "Can seqlocks get along with programming language
/// memory models?", MSPC'12).
template <typename T>
class SeqLock {
  static_assert(std::is_trivially_copyable_v<T>,
                "SeqLock requires a trivially copyable payload");

 public:
  SeqLock() {
    T zero{};
    Write(zero);
  }

  /// Publishes a new value. Callers must serialize writers externally.
  void Write(const T& value) {
    uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t i = 0; i < kWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
    seq_.store(s + 2, std::memory_order_release);
  }

  /// Returns a consistent snapshot, retrying while a write is in flight.
  T Read() const {
    uint64_t words[kWords];
    for (;;) {
      uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) continue;  // writer mid-flight
      for (size_t i = 0; i < kWords; ++i) {
        words[i] = words_[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        T out;
        std::memcpy(&out, words, sizeof(T));
        return out;
      }
    }
  }

  /// The number of completed writes so far (monotonic; readers may use it
  /// as a cheap change detector).
  uint64_t version() const {
    return seq_.load(std::memory_order_acquire) / 2;
  }

 private:
  static constexpr size_t kWords = (sizeof(T) + 7) / 8;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> words_[kWords];
};

}  // namespace itag

#endif  // ITAG_COMMON_SEQLOCK_H_
