#include "common/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace itag {

namespace {

/// Iterates the union support of two sorted sparse vectors, invoking
/// fn(p_i, q_i) for every id present in either.
template <typename Fn>
void ForEachUnion(const SparseDist& p, const SparseDist& q, Fn fn) {
  const auto& a = p.entries();
  const auto& b = q.entries();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      fn(a[i].second, 0.0);
      ++i;
    } else if (a[i].first > b[j].first) {
      fn(0.0, b[j].second);
      ++j;
    } else {
      fn(a[i].second, b[j].second);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) fn(a[i].second, 0.0);
  for (; j < b.size(); ++j) fn(0.0, b[j].second);
}

}  // namespace

SparseDist SparseDist::FromWeights(std::vector<Entry> weights) {
  std::sort(weights.begin(), weights.end());
  SparseDist d;
  d.entries_.reserve(weights.size());
  double total = 0.0;
  for (const auto& [id, w] : weights) {
    if (w <= 0.0) continue;
    if (!d.entries_.empty() && d.entries_.back().first == id) {
      d.entries_.back().second += w;
    } else {
      d.entries_.emplace_back(id, w);
    }
    total += w;
  }
  if (total > 0.0) {
    for (auto& e : d.entries_) e.second /= total;
  } else {
    d.entries_.clear();
  }
  return d;
}

SparseDist SparseDist::FromDense(const std::vector<double>& weights) {
  std::vector<Entry> entries;
  entries.reserve(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      entries.emplace_back(static_cast<uint32_t>(i), weights[i]);
    }
  }
  return FromWeights(std::move(entries));
}

double SparseDist::Prob(uint32_t id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, uint32_t v) { return e.first < v; });
  if (it != entries_.end() && it->first == id) return it->second;
  return 0.0;
}

double SparseDist::Sum() const {
  double s = 0.0;
  for (const auto& e : entries_) s += e.second;
  return s;
}

double SparseDist::Entropy() const {
  double h = 0.0;
  for (const auto& e : entries_) {
    if (e.second > 0.0) h -= e.second * std::log(e.second);
  }
  return h;
}

uint32_t SparseDist::Mode() const {
  assert(!entries_.empty());
  const Entry* best = &entries_[0];
  for (const auto& e : entries_) {
    if (e.second > best->second) best = &e;
  }
  return best->first;
}

const char* DistanceKindName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kTotalVariation:
      return "tv";
    case DistanceKind::kJensenShannon:
      return "js";
    case DistanceKind::kCosine:
      return "cos";
    case DistanceKind::kHellinger:
      return "hel";
  }
  return "?";
}

double TotalVariation(const SparseDist& p, const SparseDist& q) {
  double l1 = 0.0;
  ForEachUnion(p, q, [&](double a, double b) { l1 += std::fabs(a - b); });
  return 0.5 * l1;
}

double JensenShannonDistance(const SparseDist& p, const SparseDist& q) {
  double jsd = 0.0;
  ForEachUnion(p, q, [&](double a, double b) {
    double m = 0.5 * (a + b);
    if (a > 0.0) jsd += 0.5 * a * std::log(a / m);
    if (b > 0.0) jsd += 0.5 * b * std::log(b / m);
  });
  if (jsd < 0.0) jsd = 0.0;  // numeric guard
  double d = std::sqrt(jsd / std::log(2.0));
  return d > 1.0 ? 1.0 : d;
}

double CosineDistance(const SparseDist& p, const SparseDist& q) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  ForEachUnion(p, q, [&](double a, double b) {
    dot += a * b;
    na += a * a;
    nb += b * b;
  });
  if (na == 0.0 || nb == 0.0) return p.empty() && q.empty() ? 0.0 : 1.0;
  double sim = dot / (std::sqrt(na) * std::sqrt(nb));
  if (sim > 1.0) sim = 1.0;
  if (sim < 0.0) sim = 0.0;
  return 1.0 - sim;
}

double HellingerDistance(const SparseDist& p, const SparseDist& q) {
  double acc = 0.0;
  ForEachUnion(p, q, [&](double a, double b) {
    double d = std::sqrt(a) - std::sqrt(b);
    acc += d * d;
  });
  double h = std::sqrt(0.5 * acc);
  return h > 1.0 ? 1.0 : h;
}

double KlDivergence(const SparseDist& p, const SparseDist& q, double epsilon) {
  // Smoothed over the union support so that q-zeros do not yield infinity.
  double kl = 0.0;
  ForEachUnion(p, q, [&](double a, double b) {
    double pa = a + epsilon;
    double qb = b + epsilon;
    kl += pa * std::log(pa / qb);
  });
  return kl < 0.0 ? 0.0 : kl;
}

double Distance(DistanceKind kind, const SparseDist& p, const SparseDist& q) {
  switch (kind) {
    case DistanceKind::kTotalVariation:
      return TotalVariation(p, q);
    case DistanceKind::kJensenShannon:
      return JensenShannonDistance(p, q);
    case DistanceKind::kCosine:
      return CosineDistance(p, q);
    case DistanceKind::kHellinger:
      return HellingerDistance(p, q);
  }
  return 0.0;
}

}  // namespace itag
