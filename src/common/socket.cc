#include "common/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace itag {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> ParseAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Listen(const std::string& host, uint16_t port,
                              int backlog) {
  ITAG_ASSIGN_OR_RETURN(sockaddr_in addr, ParseAddr(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) != 0) return Errno("listen");
  return sock;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  ITAG_ASSIGN_OR_RETURN(sockaddr_in addr, ParseAddr(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect " + host + ":" + std::to_string(port));
  return sock;
}

Result<Socket> Socket::Accept() const {
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  return Socket(fd);
}

Result<uint16_t> Socket::LocalPort() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Status Socket::SetNonBlocking(bool on) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status Socket::SetNoDelay(bool on) {
  int v = on ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<size_t> Socket::ReadSome(void* buf, size_t n) const {
  for (;;) {
    ssize_t got = ::recv(fd_, buf, n, 0);
    if (got > 0) return static_cast<size_t>(got);
    if (got == 0) return Status::IOError("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("recv");
  }
}

Result<size_t> Socket::WritevSome(const iovec* iov, size_t iovcnt) const {
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = iovcnt;
  for (;;) {
    ssize_t sent = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (sent >= 0) return static_cast<size_t>(sent);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("sendmsg");
  }
}

Status Socket::WriteAll(const void* buf, size_t n, int timeout_ms) const {
  const char* p = static_cast<const char*>(buf);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (n > 0) {
    ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      n -= static_cast<size_t>(sent);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
        if (left <= 0) {
          return Status::IOError("send timed out: peer not draining");
        }
        wait_ms = static_cast<int>(left);
      }
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, wait_ms) < 0 && errno != EINTR) {
        return Errno("poll");
      }
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

}  // namespace itag
