#ifndef ITAG_COMMON_THREAD_POOL_H_
#define ITAG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace itag {

/// Fixed-size worker pool for shard fan-out. Tasks are plain
/// `std::function<void()>`; error propagation is the submitter's business
/// (capture a Status slot in the closure).
///
/// Usage contract:
///  - Submit() never blocks (the queue is unbounded).
///  - RunAll() submits a batch and blocks until every task in the batch has
///    finished; the calling thread also drains tasks of its *own batch* while
///    waiting, so fan-out works even on a single-core host and a pool of
///    size 1 cannot deadlock on nested waits.
///  - Tasks must not submit new work to the same pool and wait for it
///    (no nested RunAll from inside a task).
///  - The destructor lets the workers drain the queue, then joins them.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks `hardware_concurrency()` (at least 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one fire-and-forget task.
  void Submit(std::function<void()> fn);

  /// Runs every task of `tasks`, returning once all have completed. The
  /// caller participates in executing its own batch.
  void RunAll(std::vector<std::function<void()>> tasks);

  size_t size() const { return workers_.size(); }

 private:
  /// One submitted unit: the task plus the batch it belongs to (null for
  /// fire-and-forget Submit()s).
  struct Batch;
  struct Item {
    std::function<void()> fn;
    Batch* batch = nullptr;
  };

  void WorkerLoop();
  /// Runs `item` and signals its batch, if any.
  static void RunItem(Item& item);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace itag

#endif  // ITAG_COMMON_THREAD_POOL_H_
