#include "common/thread_pool.h"

#include <utility>

namespace itag {

/// Completion state shared by the tasks of one RunAll call.
struct ThreadPool::Batch {
  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = 0;
};

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // Workers only exit once they observe an empty queue (the wait predicate
  // keeps them draining while work remains), so pending Submits are
  // honored and nothing is left queued after the joins.
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunItem(Item& item) {
  item.fn();
  if (item.batch != nullptr) {
    std::lock_guard<std::mutex> lock(item.batch->mu);
    if (--item.batch->remaining == 0) item.batch->done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    RunItem(item);
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Item{std::move(fn), nullptr});
  }
  work_cv_.notify_one();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::function<void()>& fn : tasks) {
      queue_.push_back(Item{std::move(fn), &batch});
    }
  }
  work_cv_.notify_all();
  // Help drain our own batch instead of just blocking: keeps single-core
  // hosts and size-1 pools making progress, and cuts fan-out latency.
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty() || queue_.front().batch != &batch) break;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    RunItem(item);
  }
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done_cv.wait(lock, [&batch] { return batch.remaining == 0; });
}

}  // namespace itag
