#ifndef ITAG_COMMON_SOCKET_H_
#define ITAG_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

struct iovec;  // <sys/uio.h>

namespace itag {

/// Thin RAII wrapper over a POSIX TCP socket, shared by the net server
/// (nonblocking fds in an epoll loop) and the blocking client. Only IPv4 is
/// supported — the system binds loopback or a concrete interface address;
/// name resolution is the deployment layer's business.
///
/// IO helpers retry on EINTR and never raise SIGPIPE (writes use
/// MSG_NOSIGNAL); on a nonblocking fd, WriteAll falls back to poll(POLLOUT)
/// so callers can treat it as a blocking full write either way.
class Socket {
 public:
  /// An empty (invalid) socket.
  Socket() = default;
  /// Adopts an already-open fd.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Creates a listening socket bound to `host:port` (SO_REUSEADDR set).
  /// Port 0 binds an ephemeral port; read it back with LocalPort().
  /// `backlog` sizes the kernel accept queue — a server expecting connection
  /// storms (the 10k-connection soak) wants this well above the default.
  static Result<Socket> Listen(const std::string& host, uint16_t port,
                               int backlog = 128);

  /// Opens a blocking TCP connection to `host:port`.
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// Accepts one pending connection on a listening socket.
  Result<Socket> Accept() const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// The locally bound port (useful after Listen with port 0).
  Result<uint16_t> LocalPort() const;

  Status SetNonBlocking(bool on);
  /// Disables Nagle's algorithm — a request/response protocol wants its
  /// small frames on the wire immediately.
  Status SetNoDelay(bool on);

  /// Reads at most `n` bytes. Returns the byte count (>= 1), 0 when the fd
  /// is nonblocking and no data is available, or a Status error — an orderly
  /// peer close surfaces as IOError("connection closed by peer").
  Result<size_t> ReadSome(void* buf, size_t n) const;

  /// Writes all `n` bytes, polling for writability on a nonblocking fd.
  /// `timeout_ms` bounds the total time spent waiting for the peer to
  /// drain its receive buffer (-1 = wait forever); on expiry the write
  /// fails with IOError and the stream should be considered broken (an
  /// unknown prefix of the data may have been sent).
  Status WriteAll(const void* buf, size_t n, int timeout_ms = -1) const;

  /// Gathering write: sends as much of `iov[0..iovcnt)` as the socket
  /// accepts in ONE syscall (the reactor's frame-coalescing flush — many
  /// queued response frames leave in a single sendmsg). Returns the byte
  /// count actually sent (which may split an iov entry), 0 when the fd is
  /// nonblocking and the send buffer is full, or a Status error. Never
  /// raises SIGPIPE.
  Result<size_t> WritevSome(const iovec* iov, size_t iovcnt) const;

 private:
  int fd_ = -1;
};

}  // namespace itag

#endif  // ITAG_COMMON_SOCKET_H_
