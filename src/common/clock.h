#ifndef ITAG_COMMON_CLOCK_H_
#define ITAG_COMMON_CLOCK_H_

#include <cstdint>

namespace itag {

/// Simulation timestamps are integer "ticks". One tick is the scheduling
/// granularity of the discrete-event crowd platform (nominally one second of
/// wall time in the simulated marketplace).
using Tick = int64_t;

/// Time source abstraction so that the iTag managers run identically under
/// the discrete-event simulator (SimClock) and under wall time (RealClock).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in ticks.
  virtual Tick Now() const = 0;
};

/// Manually-advanced clock owned by the discrete-event simulator.
class SimClock : public Clock {
 public:
  explicit SimClock(Tick start = 0) : now_(start) {}

  Tick Now() const override { return now_; }

  /// Advances to `t`; time never moves backwards.
  void AdvanceTo(Tick t) {
    if (t > now_) now_ = t;
  }

  /// Advances by `delta >= 0` ticks.
  void Advance(Tick delta) {
    if (delta > 0) now_ += delta;
  }

 private:
  Tick now_;
};

/// Wall-clock seconds since the unix epoch (coarse; used only by examples
/// that want real timestamps in exports).
class RealClock : public Clock {
 public:
  Tick Now() const override;
};

}  // namespace itag

#endif  // ITAG_COMMON_CLOCK_H_
