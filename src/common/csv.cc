#include "common/csv.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace itag {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TableWriter& TableWriter::BeginRow() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TableWriter& TableWriter::Add(const std::string& cell) {
  if (rows_.empty()) BeginRow();
  rows_.back().push_back(cell);
  return *this;
}

TableWriter& TableWriter::Add(const char* cell) {
  return Add(std::string(cell));
}

TableWriter& TableWriter::Add(int64_t v) { return Add(std::to_string(v)); }
TableWriter& TableWriter::Add(uint64_t v) { return Add(std::to_string(v)); }
TableWriter& TableWriter::Add(int v) { return Add(std::to_string(v)); }

TableWriter& TableWriter::Add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return Add(os.str());
}

namespace {

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TableWriter::WriteCsv(std::ostream& os) const {
  for (size_t i = 0; i < headers_.size(); ++i) {
    if (i) os << ',';
    os << CsvEscape(headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << CsvEscape(row[i]);
    }
    os << '\n';
  }
}

void TableWriter::WriteAscii(std::ostream& os) const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto rule = [&]() {
    os << '+';
    for (size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << ' ' << c << std::string(width[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

Status TableWriter::SaveCsv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path);
  WriteCsv(f);
  f.flush();
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace itag
