#ifndef ITAG_COMMON_DISTRIBUTION_H_
#define ITAG_COMMON_DISTRIBUTION_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace itag {

/// A sparse discrete probability distribution over uint32 ids (tag ids in the
/// tagging model). Entries are (id, probability) pairs kept sorted by id with
/// strictly positive probabilities. This is the shared currency between the
/// tagging statistics, the quality metrics and the gain estimators.
class SparseDist {
 public:
  using Entry = std::pair<uint32_t, double>;

  SparseDist() = default;

  /// Builds from unsorted (id, weight) pairs; duplicate ids are merged,
  /// non-positive weights dropped, and the result normalized to sum 1
  /// (an all-zero input yields an empty distribution).
  static SparseDist FromWeights(std::vector<Entry> weights);

  /// Builds from a dense weight vector indexed by id.
  static SparseDist FromDense(const std::vector<double>& weights);

  /// Number of support points.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Probability of `id` (0 if outside the support). O(log n).
  double Prob(uint32_t id) const;

  /// Sorted (id, prob) entries.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Sum of probabilities (1 for a well-formed non-empty distribution;
  /// exposed for test assertions).
  double Sum() const;

  /// Shannon entropy in nats.
  double Entropy() const;

  /// The id with the largest probability; requires non-empty.
  uint32_t Mode() const;

 private:
  std::vector<Entry> entries_;
};

/// Bounded distances between distributions. All return values lie in [0, 1]
/// so that quality `q = 1 - d` is itself in [0, 1].
enum class DistanceKind {
  kTotalVariation,    ///< 0.5 * L1; the ICDE'13 default in this reproduction
  kJensenShannon,     ///< sqrt(JS divergence / ln 2), a metric in [0,1]
  kCosine,            ///< 1 - cosine similarity
  kHellinger,         ///< Hellinger distance
};

/// Canonical short name ("tv", "js", "cos", "hel").
const char* DistanceKindName(DistanceKind kind);

/// Total variation distance, 0.5 * Σ|p_i - q_i|, in [0,1].
double TotalVariation(const SparseDist& p, const SparseDist& q);

/// Jensen-Shannon distance: sqrt(JSD(p,q)/ln2), a bounded metric in [0,1].
double JensenShannonDistance(const SparseDist& p, const SparseDist& q);

/// Cosine distance 1 - (p.q)/(|p||q|), in [0,1] for nonnegative vectors.
double CosineDistance(const SparseDist& p, const SparseDist& q);

/// Hellinger distance sqrt(0.5 * Σ(sqrt p - sqrt q)^2), in [0,1].
double HellingerDistance(const SparseDist& p, const SparseDist& q);

/// Smoothed KL divergence KL(p || q) with additive epsilon smoothing over the
/// union support. Unbounded; informational only (not used for quality).
double KlDivergence(const SparseDist& p, const SparseDist& q,
                    double epsilon = 1e-9);

/// Dispatches to the distance selected by `kind`.
double Distance(DistanceKind kind, const SparseDist& p, const SparseDist& q);

}  // namespace itag

#endif  // ITAG_COMMON_DISTRIBUTION_H_
