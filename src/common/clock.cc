#include "common/clock.h"

#include <chrono>

namespace itag {

Tick RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace itag
