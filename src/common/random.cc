#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace itag {

Rng::Rng(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint32_t Rng::Uniform(uint32_t bound) {
  assert(bound > 0);
  // Lemire-style unbiased bounded generation via rejection.
  uint32_t threshold = -bound % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  uint64_t r = NextU64() % span;
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0,1).
  return (NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; one draw per call (the partner draw is discarded, keeping the
  // generator stateless w.r.t. caching).
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / lambda;
}

int Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth's multiplicative method.
    double limit = std::exp(-lambda);
    double prod = NextDouble();
    int n = 0;
    while (prod > limit) {
      ++n;
      prod *= NextDouble();
    }
    return n;
  }
  // Normal approximation with continuity correction for large lambda.
  double x = Normal(lambda, std::sqrt(lambda));
  return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

double Rng::Gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1, then scale down (Marsaglia-Tsang trick).
    double u = NextDouble();
    while (u <= 1e-300) u = NextDouble();
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

ZipfSampler::ZipfSampler(uint32_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint32_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint32_t k) const {
  assert(k < n_);
  double lo = k == 0 ? 0.0 : cdf_[k - 1];
  return cdf_[k] - lo;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  pmf_.resize(n);
  for (size_t i = 0; i < n; ++i) pmf_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = pmf_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint32_t AliasSampler::Sample(Rng* rng) const {
  uint32_t i = rng->Uniform(static_cast<uint32_t>(prob_.size()));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

void SampleDirichlet(const std::vector<double>& alpha, Rng* rng,
                     std::vector<double>* out) {
  out->resize(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    double g = rng->Gamma(alpha[i], 1.0);
    (*out)[i] = g;
    total += g;
  }
  if (total <= 0.0) {
    // Degenerate draw (all-zero gammas can occur only with tiny alphas);
    // fall back to uniform.
    double u = 1.0 / static_cast<double>(alpha.size());
    for (double& v : *out) v = u;
    return;
  }
  for (double& v : *out) v /= total;
}

}  // namespace itag
