#ifndef ITAG_COMMON_BINIO_H_
#define ITAG_COMMON_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace itag {

/// Append-only little-endian byte writer for compact state blobs (engine
/// state, RNG streams, platform-simulator snapshots) persisted through the
/// storage engine. Deliberately mirrors the wire primitives in net/wire.h:
/// same framing conventions (u32-length-prefixed strings, IEEE-754 bit
/// patterns for doubles), but kept dependency-free so the lower layers
/// (crowd, strategy, itag) can use it without pulling in the api/net tier.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  /// u32 byte count + raw bytes (embedded NULs survive).
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void U32Vec(const std::vector<uint32_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (uint32_t e : v) U32(e);
  }
  void U8Vec(const std::vector<uint8_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (uint8_t e : v) U8(e);
  }
  void StrVec(const std::vector<std::string>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (const std::string& e : v) Str(e);
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>(v & 0xFF);
      v = static_cast<T>(v >> 8);
    }
    buf_.append(bytes, sizeof(T));
  }

  std::string buf_;
};

/// Bounds-checked reader over a ByteWriter blob. Every getter returns false
/// (and poisons the reader) once the input is exhausted; decoders should
/// check AtEnd() so truncated or oversized blobs are rejected.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (!ok_ || data_.size() - pos_ < 1) return Poison();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(uint32_t* v) { return TakeLe(v); }
  bool U64(uint64_t* v) { return TakeLe(v); }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Str(std::string* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (data_.size() - pos_ < n) return Poison();
    v->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool U32Vec(std::vector<uint32_t>* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    v->clear();
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t e;
      if (!U32(&e)) return false;
      v->push_back(e);
    }
    return true;
  }
  bool U8Vec(std::vector<uint8_t>* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    v->clear();
    for (uint32_t i = 0; i < n; ++i) {
      uint8_t e;
      if (!U8(&e)) return false;
      v->push_back(e);
    }
    return true;
  }
  bool StrVec(std::vector<std::string>* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    v->clear();
    for (uint32_t i = 0; i < n; ++i) {
      std::string e;
      if (!Str(&e)) return false;
      v->push_back(std::move(e));
    }
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Poison() {
    ok_ = false;
    return false;
  }
  template <typename T>
  bool TakeLe(T* v) {
    *v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      uint8_t b;
      if (!U8(&b)) return false;
      *v = static_cast<T>(*v | (static_cast<T>(b) << (8 * i)));
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace itag

#endif  // ITAG_COMMON_BINIO_H_
