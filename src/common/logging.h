#ifndef ITAG_COMMON_LOGGING_H_
#define ITAG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace itag {

/// Log severities, in increasing order of importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Stable display name ("DEBUG", "INFO", "WARN", "ERROR").
const char* LogLevelName(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" (case-sensitive, the spelling
/// the --log-level flags document). False on anything else; *out untouched.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// Minimal leveled logger writing to stderr. The global threshold defaults to
/// kWarn so that tests and benchmarks stay quiet; the daemon binaries expose
/// it as --log-level.
///
/// Every emitted line is prefixed with an ISO-8601 UTC timestamp
/// (millisecond precision), the severity, and a process-local logical
/// thread id, and suffixed with `trace=<id>` when the calling thread has a
/// sampled obs::TraceContext installed — so a grep for one trace id joins
/// the log stream to the span tree `itag_client --traces` shows:
///
///   2026-08-08T12:34:56.789Z [WARN] tid=3 wal append stalled trace=4711
class Logger {
 public:
  /// Sets the global minimum level that will be emitted.
  static void SetLevel(LogLevel level);

  /// Current global minimum level.
  static LogLevel GetLevel();

  /// Emits one line at `level` (no-op below the threshold).
  static void Log(LogLevel level, const std::string& message);

  /// The fully-prefixed line Log() would write (without the trailing
  /// newline), exposed so tests can golden the format.
  static std::string FormatLine(LogLevel level, const std::string& message);
};

/// Stream-style logging statement: ITAG_LOG(kInfo) << "budget=" << b;
#define ITAG_LOG(level_suffix)                                     \
  for (bool _itag_once =                                           \
           ::itag::Logger::GetLevel() <=                           \
           ::itag::LogLevel::level_suffix;                         \
       _itag_once; _itag_once = false)                             \
  ::itag::LogStatement(::itag::LogLevel::level_suffix)

/// Helper that buffers a message and emits it on destruction.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace itag

#endif  // ITAG_COMMON_LOGGING_H_
