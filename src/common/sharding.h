#ifndef ITAG_COMMON_SHARDING_H_
#define ITAG_COMMON_SHARDING_H_

#include <cstddef>
#include <cstdint>

namespace itag {

/// splitmix64 finalizer: a cheap, well-mixed 64→64 bit hash. Used to spread
/// arbitrary keys (names, external ids) across shards without clustering.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shard index for an arbitrary (possibly clustered) key. ShardedSystem
/// itself routes by the id codec below (ids already carry their shard);
/// this is for callers partitioning by *external* keys — e.g. a frontend
/// spreading session or account keys over service replicas.
inline size_t HashShard(uint64_t key, size_t num_shards) {
  return static_cast<size_t>(Mix64(key) % num_shards);
}

// ---------------------------------------------------------------------------
// Sharded id codec.
//
// Shard-local ids (projects, task handles) are small sequential integers
// starting at 1. The sharded layer hands out *global* ids that encode the
// owning shard in the low bits:
//
//     global = local * num_shards + shard        (shard in [0, num_shards))
//
// so routing is stateless (`global % num_shards`), no cross-shard id table
// is needed, and 0 is never a valid global id (callers use 0 as "unset").
// The codec is only valid for a fixed num_shards — persisting global ids
// across a resharding would need a migration.
// ---------------------------------------------------------------------------

/// Encodes a shard-local id as a global id.
inline uint64_t EncodeShardedId(uint64_t local, size_t shard,
                                size_t num_shards) {
  return local * num_shards + shard;
}

/// The shard that owns a global id.
inline size_t ShardOfId(uint64_t global, size_t num_shards) {
  return static_cast<size_t>(global % num_shards);
}

/// Recovers the shard-local id from a global id.
inline uint64_t LocalId(uint64_t global, size_t num_shards) {
  return global / num_shards;
}

}  // namespace itag

#endif  // ITAG_COMMON_SHARDING_H_
