#ifndef ITAG_COMMON_SHARDING_H_
#define ITAG_COMMON_SHARDING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace itag {

/// splitmix64 finalizer: a cheap, well-mixed 64→64 bit hash. Used to spread
/// arbitrary keys (names, external ids) across shards without clustering.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shard index for an arbitrary (possibly clustered) key. ShardedSystem
/// itself routes by the id codec below (ids already carry their shard);
/// this is for callers partitioning by *external* keys — e.g. a frontend
/// spreading session or account keys over service replicas.
inline size_t HashShard(uint64_t key, size_t num_shards) {
  return static_cast<size_t>(Mix64(key) % num_shards);
}

// ---------------------------------------------------------------------------
// Sharded id codec.
//
// Shard-local ids (projects, task handles) are small sequential integers
// starting at 1. The sharded layer hands out *global* ids that encode the
// owning shard in the low bits:
//
//     global = local * num_shards + shard        (shard in [0, num_shards))
//
// so routing is stateless (`global % num_shards`), no cross-shard id table
// is needed, and 0 is never a valid global id (callers use 0 as "unset").
// The codec is only valid for a fixed num_shards — persisting global ids
// across a resharding would need a migration.
// ---------------------------------------------------------------------------

/// Encodes a shard-local id as a global id.
inline uint64_t EncodeShardedId(uint64_t local, size_t shard,
                                size_t num_shards) {
  return local * num_shards + shard;
}

/// The shard that owns a global id.
inline size_t ShardOfId(uint64_t global, size_t num_shards) {
  return static_cast<size_t>(global % num_shards);
}

/// Recovers the shard-local id from a global id.
inline uint64_t LocalId(uint64_t global, size_t num_shards) {
  return global / num_shards;
}

// ---------------------------------------------------------------------------
// Movable placement.
//
// The codec above fixes a project to the shard its id encodes. PlacementMap
// is the versioned overlay that makes placement *movable*: a migrated
// project keeps its original global id, and the map records where its state
// actually lives now — plus enough history to keep two derived mappings
// sound forever:
//
//   * slot history: every (shard, local) slot a migration ever filled maps
//     back to the owning global id, so stale rows left behind on a source
//     shard (e.g. notification entries) still globalize correctly, and a
//     guessed global id that codec-decodes into a migrated slot is rejected
//     instead of aliasing a foreign project. Slots are never reused (local
//     ids are monotonic per shard), so history never invalidates.
//   * handle translation: task handles are renumbered on arrival at the
//     destination shard; clients keep using the handles they were issued,
//     and the map forwards old → current. Chains collapse on re-migration
//     (every stale alias is re-pointed at the newest handle), so lookup is
//     one hop.
//
// The map is a plain data structure with no internal locking; ShardedSystem
// guards it with a shared_mutex and persists it through the storage tier
// (see docs/rebalancing.md for the table formats and the crash protocol).
// ---------------------------------------------------------------------------

class PlacementMap {
 public:
  struct Location {
    size_t shard = 0;
    uint64_t local = 0;
  };

  explicit PlacementMap(size_t num_shards) : num_shards_(num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// Monotone placement version; bumped once per Move(). Batch routers
  /// capture it before routing and retry NotFound items when it moved.
  uint64_t version() const { return version_; }

  /// Resolves a global project id to its current location. Returns false
  /// when `global` is the codec alias of a slot a migration assigned to a
  /// *different* project (the id was never issued — rejecting it here keeps
  /// "unknown id" errors from reading a foreign project's state).
  bool Resolve(uint64_t global, Location* out) const {
    auto it = overrides_.find(global);
    if (it != overrides_.end()) {
      *out = it->second;
      return true;
    }
    auto slot = slots_.find(global);
    if (slot != slots_.end() && slot->second != global) return false;
    out->shard = ShardOfId(global, num_shards_);
    out->local = LocalId(global, num_shards_);
    return true;
  }

  /// The global id owning slot (shard, local): slot history if a migration
  /// filled it, the codec otherwise (home slots need no entry — a project
  /// that never moved owns its codec slot by construction).
  uint64_t GlobalOf(size_t shard, uint64_t local) const {
    uint64_t key = EncodeShardedId(local, shard, num_shards_);
    auto it = slots_.find(key);
    return it != slots_.end() ? it->second : key;
  }

  /// Current global form of a task handle (identity for never-migrated
  /// handles).
  uint64_t TranslateHandle(uint64_t handle) const {
    auto it = handles_.find(handle);
    return it != handles_.end() ? it->second : handle;
  }

  /// Pre-claims a destination slot for `global` before the move commits, so
  /// globalization of the arriving copy (snapshots) is correct while the
  /// routing override still points at the source. Idempotent; Move() calls
  /// it too.
  void RecordSlot(uint64_t global, Location at) {
    slots_[EncodeShardedId(at.local, at.shard, num_shards_)] = global;
  }

  /// Commits a move: routing override, slot history, version bump.
  void Move(uint64_t global, Location to) {
    RecordSlot(global, to);
    overrides_[global] = to;
    ++version_;
  }

  /// Records a handle renumbering and re-points every alias of
  /// `old_handle` at `new_handle`, keeping translation one hop deep.
  /// Returns every key now mapping to `new_handle` (the re-pointed aliases
  /// plus `old_handle` itself) so the caller can persist the changed rows.
  std::vector<uint64_t> MapHandle(uint64_t old_handle, uint64_t new_handle) {
    std::vector<uint64_t> changed;
    for (auto& [from, to] : handles_) {
      if (to == old_handle) {
        to = new_handle;
        changed.push_back(from);
      }
    }
    handles_[old_handle] = new_handle;
    changed.push_back(old_handle);
    return changed;
  }

  /// Restore entry points (recovery replays persisted state verbatim).
  void RestoreOverride(uint64_t global, Location at, uint64_t version) {
    overrides_[global] = at;
    if (version > version_) version_ = version;
  }
  void RestoreSlot(uint64_t slot_key, uint64_t global) {
    slots_[slot_key] = global;
  }
  void RestoreHandle(uint64_t old_handle, uint64_t new_handle) {
    handles_[old_handle] = new_handle;
  }

  const std::unordered_map<uint64_t, Location>& overrides() const {
    return overrides_;
  }
  const std::unordered_map<uint64_t, uint64_t>& handles() const {
    return handles_;
  }

 private:
  size_t num_shards_;
  uint64_t version_ = 0;
  std::unordered_map<uint64_t, Location> overrides_;  ///< global → location
  std::unordered_map<uint64_t, uint64_t> slots_;  ///< slot codec-key → owner
  std::unordered_map<uint64_t, uint64_t> handles_;  ///< old → current handle
};

}  // namespace itag

#endif  // ITAG_COMMON_SHARDING_H_
