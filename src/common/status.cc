#include "common/status.h"

namespace itag {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace itag
