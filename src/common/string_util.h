#ifndef ITAG_COMMON_STRING_UTIL_H_
#define ITAG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace itag {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (tags are normalized to lower case before interning,
/// matching how Delicious folds case).
std::string ToLower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Normalizes a raw tag string the way the Tag Manager does before
/// interning: lower-case, trimmed, inner whitespace collapsed to '-'.
/// Returns an empty string for tags that normalize to nothing.
std::string NormalizeTag(std::string_view raw);

}  // namespace itag

#endif  // ITAG_COMMON_STRING_UTIL_H_
