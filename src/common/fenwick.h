#ifndef ITAG_COMMON_FENWICK_H_
#define ITAG_COMMON_FENWICK_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace itag {

/// Fenwick (binary-indexed) tree over nonnegative double weights, supporting
/// O(log n) point updates, prefix sums, and inverse-CDF lookup. The Free
/// Choice strategy uses it to sample resources proportionally to popularity
/// with preferential-attachment updates after every post.
class FenwickTree {
 public:
  /// Creates a tree of `n` zero weights.
  explicit FenwickTree(size_t n) : n_(n), tree_(n + 1, 0.0), leaf_(n, 0.0) {}

  /// Number of positions.
  size_t size() const { return n_; }

  /// Current weight at `i`.
  double Get(size_t i) const {
    assert(i < n_);
    return leaf_[i];
  }

  /// Sets position `i` to `w` (w >= 0).
  void Set(size_t i, double w) {
    assert(i < n_);
    assert(w >= 0.0);
    Add(i, w - leaf_[i]);
  }

  /// Adds `delta` to position `i` (resulting weight must stay >= 0 up to
  /// rounding).
  void Add(size_t i, double delta) {
    assert(i < n_);
    leaf_[i] += delta;
    for (size_t j = i + 1; j <= n_; j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of weights in [0, i).
  double PrefixSum(size_t i) const {
    assert(i <= n_);
    double s = 0.0;
    for (size_t j = i; j > 0; j -= j & (~j + 1)) {
      s += tree_[j];
    }
    return s;
  }

  /// Total weight.
  double Total() const { return PrefixSum(n_); }

  /// Returns the smallest index i such that PrefixSum(i+1) > target, i.e.
  /// the position selected by inverse-CDF sampling with `target` in
  /// [0, Total()). Positions with zero weight are never returned (assuming
  /// target < Total()).
  size_t FindByPrefix(double target) const {
    size_t pos = 0;
    size_t bit = 1;
    while ((bit << 1) <= n_) bit <<= 1;
    for (; bit > 0; bit >>= 1) {
      size_t next = pos + bit;
      if (next <= n_ && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    return pos < n_ ? pos : n_ - 1;
  }

 private:
  size_t n_;
  std::vector<double> tree_;
  std::vector<double> leaf_;
};

}  // namespace itag

#endif  // ITAG_COMMON_FENWICK_H_
