#ifndef ITAG_COMMON_CRC32_H_
#define ITAG_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace itag {

/// CRC-32 (IEEE 802.3 polynomial, reflected) used to frame write-ahead-log
/// records so that torn or corrupted tails are detected during recovery.
/// `Crc32(data, n)` computes the checksum of a buffer; `Crc32Extend` continues
/// a running checksum (pass the previous return value as `crc`).
uint32_t Crc32(const void* data, size_t n);
uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n);

}  // namespace itag

#endif  // ITAG_COMMON_CRC32_H_
