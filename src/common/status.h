#ifndef ITAG_COMMON_STATUS_H_
#define ITAG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace itag {

/// Error category carried by a Status. Mirrors the RocksDB/Abseil convention:
/// a small closed set of codes, with a free-form message for humans.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kResourceExhausted = 6,
  kIOError = 7,
  kCorruption = 8,
  kUnimplemented = 9,
  kAborted = 10,
  kInternal = 11,
};

/// Returns the canonical lower-case name of a code ("ok", "not_found", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Library code never throws across
/// module boundaries; every fallible public entry point returns a Status or a
/// Result<T>. Statuses are cheap to copy (code + shared message string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per non-OK code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error code.
  StatusCode code() const { return code_; }

  /// The human-readable message (empty for OK).
  const std::string& message() const { return message_; }

  /// Per-code predicates, used in tests and retry logic.
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Usage:
///   ITAG_RETURN_IF_ERROR(table->Insert(row));
#define ITAG_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::itag::Status _s = (expr);              \
    if (!_s.ok()) return _s;                 \
  } while (0)

}  // namespace itag

#endif  // ITAG_COMMON_STATUS_H_
