#include "common/string_util.h"

#include <cctype>

namespace itag {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string NormalizeTag(std::string_view raw) {
  std::string trimmed = Trim(raw);
  std::string out;
  out.reserve(trimmed.size());
  bool pending_sep = false;
  for (char ch : trimmed) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isspace(c)) {
      pending_sep = !out.empty();
      continue;
    }
    if (pending_sep) {
      out += '-';
      pending_sep = false;
    }
    out += static_cast<char>(std::tolower(c));
  }
  return out;
}

}  // namespace itag
