#ifndef ITAG_COMMON_RANDOM_H_
#define ITAG_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace itag {

/// Opaque serializable position of an Rng stream: exactly the generator's
/// two 64-bit words. Saving and later restoring the state resumes the
/// sequence at the same draw — the persistence layer uses this so recovered
/// systems produce the same randomness an uninterrupted run would.
struct RngState {
  uint64_t state = 0;
  uint64_t inc = 0;
};

/// Deterministic PCG32 pseudo-random generator (O'Neill, PCG-XSH-RR 64/32).
/// Every stochastic component in the library takes an explicit Rng (or seed)
/// so that whole simulation runs are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator. Two Rngs with the same (seed, stream) produce the
  /// same sequence; distinct streams are independent.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Next raw 32-bit draw.
  uint32_t NextU32();

  /// Next raw 64-bit draw (two 32-bit draws).
  uint64_t NextU64();

  /// Uniform integer in [0, bound), bound > 0. Uses unbiased rejection.
  uint32_t Uniform(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);

  /// Poisson with mean lambda >= 0 (Knuth for small lambda, normal
  /// approximation above 64).
  int Poisson(double lambda);

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  double Gamma(double shape, double scale = 1.0);

  /// Current stream position, for persistence.
  RngState SaveState() const { return {state_, inc_}; }

  /// Resumes a previously saved stream position.
  void RestoreState(const RngState& s) {
    state_ = s.state;
    inc_ = s.inc;
  }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(static_cast<uint32_t>(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipf(s, n) sampler over {0, 1, ..., n-1}: P(k) ∝ 1/(k+1)^s.
/// Precomputes the CDF once (O(n)) and samples by binary search (O(log n)).
/// Used for resource popularity and tag-rank skew, the regimes Golder &
/// Huberman report for collaborative tagging.
class ZipfSampler {
 public:
  /// Builds the sampler. Requires n >= 1 and s >= 0 (s == 0 is uniform).
  ZipfSampler(uint32_t n, double s);

  /// Draws one rank in [0, n).
  uint32_t Sample(Rng* rng) const;

  /// Probability of rank k.
  double Pmf(uint32_t k) const;

  uint32_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint32_t n_;
  double s_;
  std::vector<double> cdf_;
};

/// Walker alias method: O(1) sampling from an arbitrary discrete
/// distribution after O(n) setup. Used for per-resource "true" tag
/// distributions, where posts draw many tags from the same distribution.
class AliasSampler {
 public:
  /// Builds the table from (possibly unnormalized, nonnegative) weights.
  /// Requires at least one strictly positive weight.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index in [0, size()).
  uint32_t Sample(Rng* rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Normalized probability of index i (reconstructed from the table inputs).
  double Pmf(uint32_t i) const { return pmf_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  std::vector<double> pmf_;
};

/// Samples a Dirichlet(alpha) vector of dimension `alpha.size()` into `out`.
/// Each component uses Gamma draws; the result sums to 1.
void SampleDirichlet(const std::vector<double>& alpha, Rng* rng,
                     std::vector<double>* out);

}  // namespace itag

#endif  // ITAG_COMMON_RANDOM_H_
