#include "common/crc32.h"

namespace itag {

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32Table kTable;

}  // namespace

uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable.t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t n) {
  return Crc32Extend(0, data, n);
}

}  // namespace itag
