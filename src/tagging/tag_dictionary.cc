#include "tagging/tag_dictionary.h"

#include <cassert>

#include "common/string_util.h"

namespace itag::tagging {

TagId TagDictionary::Intern(std::string_view raw) {
  std::string norm = NormalizeTag(raw);
  if (norm.empty()) return kInvalidTag;
  auto it = ids_.find(norm);
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(texts_.size());
  texts_.push_back(norm);
  ids_.emplace(std::move(norm), id);
  if (on_new_tag_) on_new_tag_(id, texts_[id]);
  return id;
}

TagId TagDictionary::Find(std::string_view raw) const {
  std::string norm = NormalizeTag(raw);
  auto it = ids_.find(norm);
  return it == ids_.end() ? kInvalidTag : it->second;
}

const std::string& TagDictionary::Text(TagId id) const {
  assert(IsValid(id));
  return texts_[id];
}

}  // namespace itag::tagging
