#ifndef ITAG_TAGGING_CORPUS_H_
#define ITAG_TAGGING_CORPUS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "tagging/post.h"
#include "tagging/resource.h"
#include "tagging/tag_dictionary.h"
#include "tagging/tag_stats.h"

namespace itag::tagging {

/// The set R of resources under one provider's management, together with the
/// full post sequence and incremental statistics of each resource. This is
/// the in-memory working set the quality metrics and allocation strategies
/// operate on; the iTag layer persists the same information through the
/// storage engine.
class Corpus {
 public:
  /// `history_window` is forwarded to every resource's TagStats.
  explicit Corpus(size_t history_window = 16);

  /// Registers a resource and returns its id.
  ResourceId AddResource(ResourceKind kind, std::string uri,
                         std::string description = "");

  /// Number of resources n.
  size_t size() const { return resources_.size(); }

  /// True when `id` names a registered resource.
  bool IsValid(ResourceId id) const { return id < resources_.size(); }

  /// Metadata accessors.
  const Resource& resource(ResourceId id) const { return resources_[id]; }
  const TagStats& stats(ResourceId id) const { return stats_[id]; }
  const PostSequence& posts(ResourceId id) const { return posts_[id]; }

  /// Appends a post to resource `id`. Fails on unknown resource or an empty
  /// post (posts are nonempty tag sets by definition).
  Status AddPost(ResourceId id, Post post);

  /// Post count of resource `id` (k_i).
  uint32_t PostCount(ResourceId id) const { return stats_[id].post_count(); }

  /// Sum of post counts over all resources.
  uint64_t TotalPosts() const;

  /// The shared tag dictionary.
  TagDictionary& dict() { return dict_; }
  const TagDictionary& dict() const { return dict_; }

  size_t history_window() const { return history_window_; }

 private:
  size_t history_window_;
  TagDictionary dict_;
  std::vector<Resource> resources_;
  std::vector<TagStats> stats_;
  std::vector<PostSequence> posts_;
};

}  // namespace itag::tagging

#endif  // ITAG_TAGGING_CORPUS_H_
