#ifndef ITAG_TAGGING_TAG_STATS_H_
#define ITAG_TAGGING_TAG_STATS_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/distribution.h"
#include "tagging/post.h"

namespace itag::tagging {

/// Incremental per-resource tag statistics: tag counts, the current relative
/// frequency distribution (rfd), and a bounded ring of recent rfd snapshots
/// used by the stability-based quality metric (q compares rfd after k posts
/// with the rfd w posts earlier).
///
/// All updates are O(|post| + rfd materialization is deferred): counts update
/// in O(tags per post); the sparse rfd is materialized lazily and cached
/// until the next post.
class TagStats {
 public:
  /// `history_window` is the maximum number of past rfd snapshots retained
  /// (the stability window W). Snapshots are taken once per post.
  explicit TagStats(size_t history_window = 16);

  /// Applies one post (duplicate tags within the post are counted once; a
  /// well-formed Post has unique tags already).
  void AddPost(const Post& post);

  /// Number of posts applied.
  uint32_t post_count() const { return post_count_; }

  /// Total tag occurrences (sum over posts of tags per post).
  uint64_t tag_occurrences() const { return total_; }

  /// Number of distinct tags seen.
  size_t distinct_tags() const { return counts_.size(); }

  /// Count of one tag (0 if unseen).
  uint32_t TagCount(TagId id) const;

  /// Current rfd (empty when no posts yet). Cached between posts.
  const SparseDist& Rfd() const;

  /// Rfd as it was `back` posts ago (back=0 is the current rfd). Returns an
  /// empty distribution when the history does not reach that far (fewer than
  /// `back` posts, or beyond the retained window).
  SparseDist RfdBefore(size_t back) const;

  /// Distance between the current rfd and the rfd `back` posts earlier.
  /// Defined as 1 (maximally unstable) while fewer than 2 posts exist, since
  /// no stability evidence is available yet — this makes untouched resources
  /// look maximally attractive to the Most-Unstable-first strategy, matching
  /// the model's cold-start behaviour.
  double StabilityDistance(DistanceKind kind, size_t back) const;

  /// The `limit` most frequent (tag, count) pairs, by descending count then
  /// ascending id — the "tags and their frequencies" view of Fig. 6.
  std::vector<std::pair<TagId, uint32_t>> TopTags(size_t limit) const;

  size_t history_window() const { return history_window_; }

 private:
  void SnapshotRfd();

  size_t history_window_;
  std::unordered_map<TagId, uint32_t> counts_;
  uint64_t total_ = 0;
  uint32_t post_count_ = 0;

  mutable bool rfd_dirty_ = true;
  mutable SparseDist rfd_cache_;

  /// snapshots_[i] is the rfd after (post_count_ - snapshots_.size() + 1 + i)
  /// posts; the back() entry is the rfd after the latest post.
  std::deque<SparseDist> snapshots_;
};

}  // namespace itag::tagging

#endif  // ITAG_TAGGING_TAG_STATS_H_
