#include "tagging/corpus_stats.h"

#include <algorithm>
#include <unordered_set>

namespace itag::tagging {

CorpusStats::CorpusStats(const Corpus* corpus) : corpus_(corpus) {}

std::vector<uint32_t> CorpusStats::SortedCounts() const {
  std::vector<uint32_t> counts;
  counts.reserve(corpus_->size());
  for (ResourceId r = 0; r < corpus_->size(); ++r) {
    counts.push_back(corpus_->PostCount(r));
  }
  std::sort(counts.begin(), counts.end());
  return counts;
}

double CorpusStats::PostCountGini() const {
  std::vector<uint32_t> counts = SortedCounts();
  size_t n = counts.size();
  if (n == 0) return 0.0;
  // Gini = (2 Σ_i i*x_(i) / (n Σ x)) - (n+1)/n with 1-based ranks over the
  // ascending order statistics.
  double weighted = 0.0, total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weighted += static_cast<double>(i + 1) * counts[i];
    total += counts[i];
  }
  if (total <= 0.0) return 0.0;
  double g = 2.0 * weighted / (static_cast<double>(n) * total) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  return g < 0.0 ? 0.0 : g;
}

double CorpusStats::TopShare(double top_fraction) const {
  std::vector<uint32_t> counts = SortedCounts();
  size_t n = counts.size();
  if (n == 0) return 0.0;
  size_t top = static_cast<size_t>(top_fraction * static_cast<double>(n));
  if (top == 0) top = 1;
  double total = 0.0, head = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += counts[i];
    if (i + top >= n) head += counts[i];  // the top `top` entries
  }
  return total <= 0.0 ? 0.0 : head / total;
}

size_t CorpusStats::UnderTaggedCount(uint32_t bar) const {
  size_t n = 0;
  for (ResourceId r = 0; r < corpus_->size(); ++r) {
    n += corpus_->PostCount(r) < bar;
  }
  return n;
}

uint32_t CorpusStats::MedianPosts() const {
  std::vector<uint32_t> counts = SortedCounts();
  if (counts.empty()) return 0;
  return counts[counts.size() / 2];
}

uint32_t CorpusStats::MaxPosts() const {
  uint32_t mx = 0;
  for (ResourceId r = 0; r < corpus_->size(); ++r) {
    mx = std::max(mx, corpus_->PostCount(r));
  }
  return mx;
}

size_t CorpusStats::DistinctTagsInUse() const {
  std::unordered_set<TagId> seen;
  for (ResourceId r = 0; r < corpus_->size(); ++r) {
    for (const auto& [tag, p] : corpus_->stats(r).Rfd().entries()) {
      (void)p;
      seen.insert(tag);
    }
  }
  return seen.size();
}

double CorpusStats::MeanRfdEntropy() const {
  if (corpus_->size() == 0) return 0.0;
  double total = 0.0;
  for (ResourceId r = 0; r < corpus_->size(); ++r) {
    total += corpus_->stats(r).Rfd().Entropy();
  }
  return total / static_cast<double>(corpus_->size());
}

std::vector<size_t> CorpusStats::PostCountHistogram(
    const std::vector<uint32_t>& edges) const {
  std::vector<size_t> buckets(edges.size() + 1, 0);
  for (ResourceId r = 0; r < corpus_->size(); ++r) {
    uint32_t c = corpus_->PostCount(r);
    size_t b = 0;
    while (b < edges.size() && c >= edges[b]) ++b;
    ++buckets[b];
  }
  return buckets;
}

}  // namespace itag::tagging
