#ifndef ITAG_TAGGING_CORPUS_STATS_H_
#define ITAG_TAGGING_CORPUS_STATS_H_

#include <cstdint>
#include <vector>

#include "tagging/corpus.h"

namespace itag::tagging {

/// Descriptive statistics over a corpus — the numbers behind the paper's
/// motivation (§I: "most tags are added to the few highly-popular
/// resources, while most of the resources receive few tags") and behind the
/// monitoring views. All functions are read-only and O(n) or O(n log n).
class CorpusStats {
 public:
  explicit CorpusStats(const Corpus* corpus);

  /// Gini coefficient of per-resource post counts, in [0, 1): 0 = perfectly
  /// even tagging, →1 = all posts concentrated on one resource.
  double PostCountGini() const;

  /// Fraction of all posts held by the most-posted `top_fraction` of
  /// resources (e.g. 0.1 → the top decile's share).
  double TopShare(double top_fraction) const;

  /// Number of resources with fewer than `bar` posts.
  size_t UnderTaggedCount(uint32_t bar) const;

  /// Median per-resource post count.
  uint32_t MedianPosts() const;

  /// Maximum per-resource post count.
  uint32_t MaxPosts() const;

  /// Distinct tags used anywhere in the corpus (vocabulary actually in use,
  /// as opposed to dict().size() which counts every interned string).
  size_t DistinctTagsInUse() const;

  /// Mean per-resource rfd entropy (nats) — how spread resources' tag
  /// distributions are; rises with tag noise.
  double MeanRfdEntropy() const;

  /// Histogram of post counts over the bucket upper bounds in `edges`
  /// (right-open; a final bucket catches everything above the last edge).
  /// Example: edges {1,5,20,100} yields buckets [0,1), [1,5), [5,20),
  /// [20,100), [100,inf).
  std::vector<size_t> PostCountHistogram(
      const std::vector<uint32_t>& edges) const;

 private:
  std::vector<uint32_t> SortedCounts() const;

  const Corpus* corpus_;
};

}  // namespace itag::tagging

#endif  // ITAG_TAGGING_CORPUS_STATS_H_
