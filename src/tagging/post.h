#ifndef ITAG_TAGGING_POST_H_
#define ITAG_TAGGING_POST_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "tagging/tag_dictionary.h"

namespace itag::tagging {

/// Identifier of a tagger (worker) in the user model.
using TaggerId = uint32_t;

/// Sentinel tagger for posts imported from a provider's historical data.
inline constexpr TaggerId kProviderImport = 0xFFFFFFFFu;

/// A post: a nonempty set of tags assigned to one resource by one tagger in
/// one tagging operation (the paper's Definition in §II). Tags within a post
/// are unique (a tagger cannot repeat a tag in one operation).
struct Post {
  TaggerId tagger = kProviderImport;
  Tick time = 0;
  std::vector<TagId> tags;  ///< unique, nonempty for a well-formed post
};

/// The post sequence (p(1), p(2), ...) of one resource, in arrival order.
using PostSequence = std::vector<Post>;

}  // namespace itag::tagging

#endif  // ITAG_TAGGING_POST_H_
