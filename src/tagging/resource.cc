#include "tagging/resource.h"

namespace itag::tagging {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kWebUrl:
      return "web_url";
    case ResourceKind::kImage:
      return "image";
    case ResourceKind::kVideo:
      return "video";
    case ResourceKind::kSoundClip:
      return "sound_clip";
    case ResourceKind::kScientificPaper:
      return "scientific_paper";
  }
  return "?";
}

ResourceKind ParseResourceKind(const std::string& name) {
  for (ResourceKind kind :
       {ResourceKind::kWebUrl, ResourceKind::kImage, ResourceKind::kVideo,
        ResourceKind::kSoundClip, ResourceKind::kScientificPaper}) {
    if (name == ResourceKindName(kind)) return kind;
  }
  return ResourceKind::kWebUrl;
}

}  // namespace itag::tagging
