#include "tagging/resource.h"

namespace itag::tagging {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kWebUrl:
      return "web_url";
    case ResourceKind::kImage:
      return "image";
    case ResourceKind::kVideo:
      return "video";
    case ResourceKind::kSoundClip:
      return "sound_clip";
    case ResourceKind::kScientificPaper:
      return "scientific_paper";
  }
  return "?";
}

}  // namespace itag::tagging
