#ifndef ITAG_TAGGING_RESOURCE_H_
#define ITAG_TAGGING_RESOURCE_H_

#include <cstdint>
#include <string>

namespace itag::tagging {

/// Identifier of a resource r_i in R. Dense, assigned by the Corpus.
using ResourceId = uint32_t;

/// Sentinel for "no resource".
inline constexpr ResourceId kInvalidResource = 0xFFFFFFFFu;

/// The media kinds iTag accepts from providers (§III-A).
enum class ResourceKind : uint8_t {
  kWebUrl = 0,
  kImage = 1,
  kVideo = 2,
  kSoundClip = 3,
  kScientificPaper = 4,
};

/// Human-readable kind name ("web_url", "image", ...).
const char* ResourceKindName(ResourceKind kind);

/// Inverse of ResourceKindName; kWebUrl for unknown names (recovery treats
/// the kind as display metadata, never as routing state).
ResourceKind ParseResourceKind(const std::string& name);

/// Static metadata of one uploaded resource.
struct Resource {
  ResourceId id = kInvalidResource;
  ResourceKind kind = ResourceKind::kWebUrl;
  std::string uri;          ///< locator shown to taggers (URL, file name...)
  std::string description;  ///< provider-supplied description
};

}  // namespace itag::tagging

#endif  // ITAG_TAGGING_RESOURCE_H_
