#ifndef ITAG_TAGGING_TAG_DICTIONARY_H_
#define ITAG_TAGGING_TAG_DICTIONARY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace itag::tagging {

/// Dense integer id of an interned tag. Ids are assigned sequentially from 0
/// in interning order and never reused.
using TagId = uint32_t;

/// Sentinel for "no such tag".
inline constexpr TagId kInvalidTag = 0xFFFFFFFFu;

/// The global tag vocabulary T = {t_1 .. t_m} of the data model, implemented
/// as a string-interning dictionary. Raw tag strings are normalized
/// (lower-cased, trimmed, inner whitespace folded to '-') before interning,
/// so "Machine Learning" and "machine  learning" intern to the same id while
/// a typo like "machne-learning" becomes a distinct id — exactly the "noisy
/// tags" phenomenon the paper describes.
class TagDictionary {
 public:
  TagDictionary() = default;

  /// Interns `raw` (normalizing first). Returns kInvalidTag when the tag
  /// normalizes to an empty string.
  TagId Intern(std::string_view raw);

  /// Looks up without interning; kInvalidTag when absent.
  TagId Find(std::string_view raw) const;

  /// The normalized text of `id`; requires a valid id.
  const std::string& Text(TagId id) const;

  /// Number of distinct tags interned.
  size_t size() const { return texts_.size(); }

  /// True when `id` names an interned tag.
  bool IsValid(TagId id) const { return id < texts_.size(); }

  /// Observer invoked exactly once per *newly created* tag id, with the
  /// normalized text, at the moment Intern assigns it. Because id order is
  /// part of the corpus state (replaying posts must reproduce the same
  /// ids), the persistence layer hooks this to write the dictionary through
  /// to storage in assignment order. Pass nullptr to detach.
  using NewTagHook = std::function<void(TagId, const std::string&)>;
  void set_on_new_tag(NewTagHook hook) { on_new_tag_ = std::move(hook); }

 private:
  std::unordered_map<std::string, TagId> ids_;
  std::vector<std::string> texts_;
  NewTagHook on_new_tag_;
};

}  // namespace itag::tagging

#endif  // ITAG_TAGGING_TAG_DICTIONARY_H_
