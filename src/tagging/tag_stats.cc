#include "tagging/tag_stats.h"

#include <algorithm>

namespace itag::tagging {

TagStats::TagStats(size_t history_window)
    : history_window_(history_window == 0 ? 1 : history_window) {}

void TagStats::AddPost(const Post& post) {
  // Count each distinct tag in the post once.
  for (TagId t : post.tags) {
    ++counts_[t];
    ++total_;
  }
  ++post_count_;
  rfd_dirty_ = true;
  SnapshotRfd();
}

uint32_t TagStats::TagCount(TagId id) const {
  auto it = counts_.find(id);
  return it == counts_.end() ? 0u : it->second;
}

const SparseDist& TagStats::Rfd() const {
  if (rfd_dirty_) {
    std::vector<SparseDist::Entry> entries;
    entries.reserve(counts_.size());
    for (const auto& [tag, count] : counts_) {
      entries.emplace_back(tag, static_cast<double>(count));
    }
    rfd_cache_ = SparseDist::FromWeights(std::move(entries));
    rfd_dirty_ = false;
  }
  return rfd_cache_;
}

void TagStats::SnapshotRfd() {
  snapshots_.push_back(Rfd());
  while (snapshots_.size() > history_window_ + 1) snapshots_.pop_front();
}

SparseDist TagStats::RfdBefore(size_t back) const {
  if (back == 0) return Rfd();
  if (back >= snapshots_.size()) {
    // Beyond retained history. If the resource has had fewer than `back`
    // posts in total, the rfd back then was empty; otherwise the snapshot
    // was evicted and we conservatively return the oldest retained one.
    if (post_count_ <= back) return SparseDist();
    return snapshots_.empty() ? SparseDist() : snapshots_.front();
  }
  return snapshots_[snapshots_.size() - 1 - back];
}

double TagStats::StabilityDistance(DistanceKind kind, size_t back) const {
  if (post_count_ < 2) return 1.0;
  size_t effective = std::min<size_t>(back, post_count_ - 1);
  SparseDist past = RfdBefore(effective);
  if (past.empty()) return 1.0;
  return Distance(kind, Rfd(), past);
}

std::vector<std::pair<TagId, uint32_t>> TagStats::TopTags(size_t limit) const {
  std::vector<std::pair<TagId, uint32_t>> all(counts_.begin(), counts_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > limit) all.resize(limit);
  return all;
}

}  // namespace itag::tagging
