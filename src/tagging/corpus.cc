#include "tagging/corpus.h"

namespace itag::tagging {

Corpus::Corpus(size_t history_window) : history_window_(history_window) {}

ResourceId Corpus::AddResource(ResourceKind kind, std::string uri,
                               std::string description) {
  ResourceId id = static_cast<ResourceId>(resources_.size());
  Resource r;
  r.id = id;
  r.kind = kind;
  r.uri = std::move(uri);
  r.description = std::move(description);
  resources_.push_back(std::move(r));
  stats_.emplace_back(history_window_);
  posts_.emplace_back();
  return id;
}

Status Corpus::AddPost(ResourceId id, Post post) {
  if (!IsValid(id)) {
    return Status::NotFound("resource " + std::to_string(id));
  }
  if (post.tags.empty()) {
    return Status::InvalidArgument("a post must contain at least one tag");
  }
  stats_[id].AddPost(post);
  posts_[id].push_back(std::move(post));
  return Status::OK();
}

uint64_t Corpus::TotalPosts() const {
  uint64_t n = 0;
  for (const TagStats& s : stats_) n += s.post_count();
  return n;
}

}  // namespace itag::tagging
